/**
 * @file
 * Ablation A1: disable each isolation mechanism in turn.
 *
 * The paper's thesis is that *coordinated* management of all mechanisms
 * is necessary. This bench pairs each subcontroller with the antagonist
 * that stresses its resource and shows that removing just that
 * subcontroller reintroduces SLO violations (or forces BE throughput to
 * zero), while the full controller handles every pairing.
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "runner/sweep.h"

using namespace heracles;

namespace {

runner::SweepJob
Job(const workloads::LcParams& lc, const std::string& be_name,
    const ctl::HeraclesConfig& hcfg, double load)
{
    // (load chosen per case: the resource must actually be contended)
    const hw::MachineConfig machine;
    exp::ExperimentConfig cfg;
    cfg.machine = machine;
    cfg.lc = lc;
    cfg.be = workloads::BeProfileByName(machine, be_name);
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.heracles = hcfg;
    cfg.warmup = bench::Scaled(sim::Seconds(180), sim::Seconds(90));
    cfg.measure = bench::Scaled(sim::Seconds(150), sim::Seconds(60));
    return runner::SweepJob{cfg, load, ""};
}

}  // namespace

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    exp::PrintBanner("Ablation A1: one isolation mechanism disabled");

    struct Case {
        const char* label;
        workloads::LcParams lc;
        const char* be;
        double load;
        void (*mutate)(ctl::HeraclesConfig&);
    };
    const std::vector<Case> cases = {
        // DRAM saturation guard removed: the descent keeps feeding the
        // streamer until the channels saturate and the tail explodes.
        // DRAM saturation guard removed together with the redundant
        // stabilizers that otherwise catch the latency damage late.
        {"websearch+stream-dram @20%, no DRAM limit",
         workloads::Websearch(), "stream-dram", 0.2,
         [](ctl::HeraclesConfig& c) {
             c.dram_limit_frac = 2.0;
             c.use_fast_slack = false;
             c.fast_shrink = false;
             c.lc_util_grow_limit = 1.0;
             c.lc_util_shrink_limit = 1.0;
         }},
        // Power subcontroller removed at low load: the virus owns most
        // cores, RAPL throttles the whole socket below the LC task's
        // guaranteed frequency.
        {"ml_cluster+cpu_pwr @10%, no power ctl", workloads::MlCluster(),
         "cpu_pwr", 0.1,
         [](ctl::HeraclesConfig& c) { c.enable_power = false; }},
        // HTB shaping removed: the iperf mice swarm overruns the link.
        {"memkeyval+iperf, no network ctl", workloads::Memkeyval(),
         "iperf", 0.5,
         [](ctl::HeraclesConfig& c) { c.enable_net = false; }},
        // Cores & memory subcontroller removed entirely: safe but the
        // BE job never grows past its initial core (EMU collapse).
        {"websearch+brain, no core&mem ctl", workloads::Websearch(),
         "brain", 0.5,
         [](ctl::HeraclesConfig& c) { c.enable_core_mem = false; }},
    };

    exp::Table table({"configuration", "variant", "tail (% SLO)", "SLO ok",
                      "EMU", "BE disables"});

    // Full-controller and ablated runs for every case are independent
    // simulations: fan all of them across the pool at once.
    std::vector<runner::SweepJob> sweep;
    for (const auto& c : cases) {
        for (bool ablated : {false, true}) {
            ctl::HeraclesConfig hcfg;
            if (ablated) c.mutate(hcfg);
            sweep.push_back(Job(c.lc, c.be, hcfg, c.load));
        }
    }
    const auto results = runner::RunSweep(sweep, jobs);

    for (size_t i = 0; i < cases.size(); ++i) {
        const auto& c = cases[i];
        for (bool ablated : {false, true}) {
            const auto& r = results[2 * i + (ablated ? 1 : 0)];
            table.AddRow({ablated ? c.label : std::string(c.label) +
                                                  " (full ctl)",
                          ablated ? "ablated" : "full",
                          exp::FormatTailFrac(r.tail_frac_slo),
                          r.slo_violated ? "VIOLATED" : "yes",
                          exp::FormatPct(r.emu),
                          std::to_string(r.be_disables)});
        }
    }
    table.Print();
    std::printf(
        "\nEvery mechanism matters for the antagonist that stresses its\n"
        "resource: removing it yields an SLO violation, emergency BE\n"
        "disables (instability hidden behind 5-minute cooldowns), an\n"
        "EMU collapse, or visibly thinner latency slack. Where a row\n"
        "changes little, the latency-slack guards are covering for the\n"
        "removed mechanism (defense in depth) at the cost of reacting\n"
        "after the tail degrades instead of before saturation.\n");
    return 0;
}
