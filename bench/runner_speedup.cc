/**
 * @file
 * Serial-vs-parallel wall-clock of a fig4-style load sweep
 * (websearch+brain under Heracles, 9 load points), emitted as JSON so
 * the speedup trajectory can be tracked across PRs.
 *
 * Also asserts the runner's core guarantee: the parallel sweep must be
 * bit-identical to the serial one (exit 1 if not).
 *
 * Usage: runner_speedup [--jobs N] [--out FILE]
 *   --jobs  worker threads for the parallel run (default: hardware)
 *   --out   also write the JSON record to FILE
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/experiment.h"

using namespace heracles;

namespace {

bool
Identical(const exp::LoadPointResult& a, const exp::LoadPointResult& b)
{
    return a.load == b.load && a.worst_tail == b.worst_tail &&
           a.tail_frac_slo == b.tail_frac_slo &&
           a.slo_violated == b.slo_violated &&
           a.lc_throughput == b.lc_throughput &&
           a.be_throughput == b.be_throughput && a.emu == b.emu &&
           a.be_cores == b.be_cores && a.be_ways == b.be_ways &&
           a.be_freq_cap_ghz == b.be_freq_cap_ghz && a.slack == b.slack &&
           a.be_disables == b.be_disables;
}

double
WallSeconds(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    std::string out_path;
    for (int i = 1; i < argc - 1; ++i) {
        if (!std::strcmp(argv[i], "--out")) out_path = argv[i + 1];
    }

    exp::ExperimentConfig cfg;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = bench::Scaled(sim::Seconds(120), sim::Seconds(60));
    cfg.measure = bench::Scaled(sim::Seconds(120), sim::Seconds(40));
    const exp::Experiment e(cfg);

    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};

    std::vector<exp::LoadPointResult> serial, parallel;
    const double serial_s =
        WallSeconds([&] { serial = e.Sweep(loads, 1); });
    const double parallel_s =
        WallSeconds([&] { parallel = e.Sweep(loads, jobs); });

    bool identical = serial.size() == parallel.size();
    for (size_t i = 0; identical && i < serial.size(); ++i) {
        identical = Identical(serial[i], parallel[i]);
    }

    char json[512];
    std::snprintf(
        json, sizeof json,
        "{\"bench\":\"runner_speedup\",\"sweep\":\"websearch+brain\","
        "\"load_points\":%zu,\"jobs\":%d,\"hardware_threads\":%d,"
        "\"serial_s\":%.3f,\"parallel_s\":%.3f,\"speedup\":%.2f,"
        "\"identical\":%s}",
        loads.size(), jobs, runner::HardwareJobs(), serial_s, parallel_s,
        serial_s / (parallel_s > 0 ? parallel_s : 1e-9),
        identical ? "true" : "false");

    std::printf("%s\n", json);
    if (!out_path.empty()) {
        if (FILE* f = std::fopen(out_path.c_str(), "w")) {
            std::fprintf(f, "%s\n", json);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 2;
        }
    }
    return identical ? 0 : 1;
}
