/**
 * @file
 * Simulation-core microbenchmark: pooled vs. legacy event queue plus
 * streaming-tail stats, emitted as JSON so the core's throughput
 * trajectory is tracked across PRs (see docs/performance.md).
 *
 * Usage: sim_core_baseline [--events N] [--quick] [--out FILE]
 *   --events  total fires per queue implementation (default 2000000)
 *   --quick   smoke preset (200000 events) for CI and local sanity runs
 *   --out     also write the JSON record to FILE
 *
 * Exit code 1 when the pooled queue fails to beat the legacy queue —
 * the regression signal CI acts on.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "sim_core_bench.h"

HERACLES_BENCH_DEFINE_ALLOC_COUNTER()

using namespace heracles;

int
main(int argc, char** argv)
{
    uint64_t events = 2000000;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--events") && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--quick")) {
            events = 200000;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--events N] [--quick] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    // Warm both allocators/caches with a short throwaway round.
    bench::RunEventQueueChurn<sim::EventQueue>(events / 20);
    bench::RunEventQueueChurn<bench::LegacyEventQueue>(events / 20);

    const auto pooled =
        bench::RunEventQueueChurn<sim::EventQueue>(events);
    const auto legacy =
        bench::RunEventQueueChurn<bench::LegacyEventQueue>(events);
    const auto stats = bench::RunStatsStreaming(events);

    const std::string json =
        "{\n  \"bench\": \"sim_core_baseline\",\n" +
        bench::CoreBenchJson(pooled, legacy, stats) + "\n}\n";

    std::fputs(json.c_str(), stdout);
    if (!out_path.empty()) {
        if (FILE* f = std::fopen(out_path.c_str(), "w")) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
            return 2;
        }
    }
    return pooled.per_sec > legacy.per_sec ? 0 : 1;
}
