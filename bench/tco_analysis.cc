/**
 * @file
 * Section 5.3 TCO analysis: throughput/TCO gains from raising cluster
 * utilization with Heracles, versus energy-proportionality alone.
 *
 * Paper numbers: raising a 75%-utilized websearch cluster to 90% is a
 * ~15% throughput/TCO gain (energy-proportionality alone: ~3%); raising
 * a 20%-utilized LC cluster to 90% is a ~306% gain (proportionality:
 * <7%).
 */
#include <cstdio>

#include "exp/reporting.h"
#include "tco/tco.h"

using namespace heracles;

int
main()
{
    tco::TcoModel model;
    const auto& p = model.params();

    exp::PrintBanner("TCO model (Barroso et al. case study)");
    std::printf("servers: %d, server cost: $%.0f, PUE: %.1f, peak power: "
                "%.0f W, electricity: $%.2f/kWh\n\n",
                p.servers, p.server_cost_usd, p.pue, p.peak_power_w,
                p.electricity_usd_kwh);

    exp::Table costs({"utilization", "server power (W)",
                      "energy $/srv-mo", "TCO $/srv-mo",
                      "throughput/TCO (rel.)"});
    const double ref = model.ThroughputPerTco(0.90);
    for (double u : {0.10, 0.20, 0.50, 0.75, 0.90, 1.00}) {
        costs.AddRow({exp::FormatPct(u),
                      exp::FormatDouble(model.ServerPowerW(u), 0),
                      exp::FormatDouble(model.EnergyCostMonth(u), 1),
                      exp::FormatDouble(model.MonthlyTcoPerServer(u), 1),
                      exp::FormatDouble(model.ThroughputPerTco(u) / ref,
                                        3)});
    }
    costs.Print();

    exp::PrintBanner("Heracles throughput/TCO gains");
    exp::Table gains({"scenario", "gain", "paper"});
    gains.AddRow({"75% -> 90% util (busy websearch cluster)",
                  exp::FormatPct(model.GainFromUtilization(0.75, 0.90)),
                  "15%"});
    gains.AddRow({"20% -> 90% util (typical LC cluster)",
                  exp::FormatPct(model.GainFromUtilization(0.20, 0.90)),
                  "306%"});
    gains.AddRow({"energy proportionality only @75%",
                  exp::FormatPct(model.EnergyProportionalityGain(0.75)),
                  "~3%"});
    gains.AddRow({"energy proportionality only @20%",
                  exp::FormatPct(model.EnergyProportionalityGain(0.20)),
                  "<7%"});
    gains.Print();

    std::printf(
        "\nAs long as useful BE tasks exist, colocating them with LC jobs\n"
        "beats lowering server power: the extra energy is a small share\n"
        "of TCO while the extra throughput is nearly proportional.\n");
    return 0;
}
