/**
 * @file
 * Google-benchmark microbenchmarks for the simulation substrate and the
 * controller's decision path: event queue throughput, histogram
 * recording and percentile queries, RNG sampling, the per-epoch
 * contention resolvers, and the bandwidth-model lookup.
 */
#include <benchmark/benchmark.h>

#include "heracles/bw_model.h"
#include "hw/dram.h"
#include "hw/llc.h"
#include "hw/machine.h"
#include "hw/power.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "workloads/lc_configs.h"

using namespace heracles;

static void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    for (auto _ : state) {
        sim::EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1024; ++i) {
            q.ScheduleAt(i, [&sink] { ++sink; });
        }
        q.RunUntil(2048);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_HistogramRecord(benchmark::State& state)
{
    sim::LatencyHistogram h;
    sim::Rng rng(1);
    for (auto _ : state) {
        h.Record(static_cast<sim::Duration>(rng.Exponential(1e6)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void
BM_HistogramPercentile(benchmark::State& state)
{
    sim::LatencyHistogram h;
    sim::Rng rng(1);
    for (int i = 0; i < 100000; ++i) {
        h.Record(static_cast<sim::Duration>(rng.Exponential(1e6)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.Percentile(0.99));
    }
}
BENCHMARK(BM_HistogramPercentile);

static void
BM_RngLogNormal(benchmark::State& state)
{
    sim::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.LogNormalWithMean(4e6, 0.35));
    }
}
BENCHMARK(BM_RngLogNormal);

static void
BM_ResolveLlc(benchmark::State& state)
{
    hw::MachineConfig cfg;
    std::vector<hw::LlcRequest> reqs(4);
    reqs[0] = {18.0, 75.0, 0};
    reqs[1] = {24.0, 500.0, 0};
    reqs[2] = {22.5, 300.0, 4};
    reqs[3] = {4.0, 40.0, 0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(hw::ResolveLlc(cfg, reqs));
    }
}
BENCHMARK(BM_ResolveLlc);

static void
BM_ResolvePowerThrottled(benchmark::State& state)
{
    hw::MachineConfig cfg;
    std::vector<hw::CorePowerRequest> cores(cfg.cores_per_socket);
    for (auto& c : cores) {
        c.busy = 1.0;
        c.intensity = 2.1;  // power virus: forces the bisection path
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(hw::ResolvePower(cfg, cores));
    }
}
BENCHMARK(BM_ResolvePowerThrottled);

static void
BM_ResolveDram(benchmark::State& state)
{
    hw::MachineConfig cfg;
    std::vector<double> demand = {18.0, 22.0, 7.5, 3.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(hw::ResolveDram(cfg, demand));
    }
}
BENCHMARK(BM_ResolveDram);

static void
BM_MachineEpochResolve(benchmark::State& state)
{
    sim::EventQueue q;
    hw::MachineConfig cfg;
    hw::Machine machine(cfg, q);
    for (auto _ : state) {
        machine.ResolveNow();
    }
}
BENCHMARK(BM_MachineEpochResolve);

static void
BM_BwModelEvaluate(benchmark::State& state)
{
    hw::MachineConfig cfg;
    const ctl::LcBwModel model =
        ctl::LcBwModel::Profile(workloads::Websearch(), cfg);
    double load = 0.0;
    for (auto _ : state) {
        load += 0.001;
        if (load > 1.0) load = 0.0;
        benchmark::DoNotOptimize(model.Evaluate(load, 20, 16));
    }
}
BENCHMARK(BM_BwModelEvaluate);

BENCHMARK_MAIN();
