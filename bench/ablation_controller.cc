/**
 * @file
 * Ablation A2: sensitivity of Heracles to its controller parameters.
 *
 * Sweeps the DRAM saturation limit, the slack thresholds, the poll
 * period and the fast-slack stabilizer on websearch+brain at 50% load,
 * reporting tail latency and EMU. The defaults (paper constants) should
 * sit on the knee: safe yet close to maximal EMU.
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "runner/sweep.h"

using namespace heracles;

namespace {

runner::SweepJob
Job(const std::string& label, const ctl::HeraclesConfig& hcfg)
{
    const hw::MachineConfig machine;
    exp::ExperimentConfig cfg;
    cfg.machine = machine;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.heracles = hcfg;
    cfg.warmup = bench::Scaled(sim::Seconds(180), sim::Seconds(90));
    cfg.measure = bench::Scaled(sim::Seconds(150), sim::Seconds(60));
    return runner::SweepJob{cfg, 0.5, label};
}

void
AddRow(exp::Table& t, const std::string& label,
       const exp::LoadPointResult& r)
{
    t.AddRow({label, exp::FormatTailFrac(r.tail_frac_slo),
              r.slo_violated ? "VIOLATED" : "yes", exp::FormatPct(r.emu),
              std::to_string(r.be_cores)});
}

}  // namespace

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    exp::PrintBanner(
        "Ablation A2: controller parameters (websearch+brain @ 50%)");

    exp::Table table(
        {"variant", "tail (% SLO)", "SLO ok", "EMU", "BE cores"});

    // The variants are independent runs; fan them across the pool.
    std::vector<runner::SweepJob> sweep;
    sweep.push_back(Job("defaults (paper constants)", {}));
    for (double limit : {0.70, 0.80, 0.95}) {
        ctl::HeraclesConfig c;
        c.dram_limit_frac = limit;
        sweep.push_back(Job(
            "DRAM limit " + exp::FormatPct(limit) + " (default 90%)", c));
    }
    {
        ctl::HeraclesConfig c;
        c.slack_disallow_growth = 0.20;
        c.slack_shrink = 0.10;
        sweep.push_back(
            Job("conservative slack thresholds (20%/10%)", c));
    }
    {
        ctl::HeraclesConfig c;
        c.top_period = sim::Seconds(30);
        sweep.push_back(Job("slow top-level poll (30s)", c));
    }
    {
        ctl::HeraclesConfig c;
        c.use_fast_slack = false;
        c.fast_shrink = false;
        sweep.push_back(
            Job("no fast-slack stabilizer (pure 15s slack)", c));
    }
    {
        ctl::HeraclesConfig c;
        c.fast_growth_margin = 0.10;
        sweep.push_back(Job("narrow growth hysteresis (10%)", c));
    }
    {
        ctl::HeraclesConfig c;
        c.use_hw_bw_accounting = true;
        c.use_bw_model = false;
        sweep.push_back(Job(
            "hw per-task bw accounting, no offline model (Sec. 7)", c));
    }

    const auto results = runner::RunSweep(sweep, jobs);
    for (size_t i = 0; i < results.size(); ++i) {
        AddRow(table, sweep[i].tag, results[i]);
    }
    table.Print();
    std::printf(
        "\nLower DRAM limits trade EMU for safety margin; removing the\n"
        "fast-slack stabilizer makes the 2s gradient descent overshoot\n"
        "the 15s latency feedback (violation, then a 5-minute cooldown\n"
        "with zero colocation).\n");
    return 0;
}
