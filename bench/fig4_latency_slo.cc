/**
 * @file
 * Figure 4: latency of LC applications colocated with BE jobs under
 * Heracles.
 *
 * For each LC workload and each BE job, sweeps load 10%..90% and prints
 * the worst report-window tail as % of SLO. The paper's headline result:
 * no SLO violations at any load for any colocation, with the latency
 * slack reduced relative to the no-colocation baseline. As in the paper,
 * websearch and ml_cluster with iperf are omitted (they are insensitive
 * to network interference).
 *
 * Every (row, load) cell is an independent simulation; the whole figure
 * is flattened into one runner sweep (--jobs N threads).
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "runner/sweep.h"

using namespace heracles;

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    const hw::MachineConfig machine;
    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};
    const sim::Duration warmup =
        bench::Scaled(sim::Seconds(180), sim::Seconds(100));
    const sim::Duration measure =
        bench::Scaled(sim::Seconds(180), sim::Seconds(60));

    int violations = 0;
    for (const auto& lc : workloads::AllLcWorkloads()) {
        exp::PrintBanner("Figure 4: " + lc.name +
                         " latency with Heracles (% of SLO)");

        std::vector<std::string> headers = {"BE workload"};
        for (double l : loads) headers.push_back(exp::FormatPct(l));
        exp::Table table(headers);

        // Baseline (LC alone) plus one row per colocated BE job.
        std::vector<runner::SweepJob> sweep;
        {
            exp::ExperimentConfig cfg;
            cfg.machine = machine;
            cfg.lc = lc;
            cfg.policy = exp::PolicyKind::kNoColocation;
            cfg.warmup = warmup;
            cfg.measure = measure;
            runner::AppendLoadJobs(sweep, cfg, loads, "baseline");
        }
        for (const auto& be : workloads::EvaluationBeSet(machine)) {
            // The paper omits these network-insensitive combinations.
            if (be.name == "iperf" && lc.name != "memkeyval") continue;
            exp::ExperimentConfig cfg;
            cfg.machine = machine;
            cfg.lc = lc;
            cfg.be = be;
            cfg.policy = exp::PolicyKind::kHeracles;
            cfg.warmup = warmup;
            cfg.measure = measure;
            runner::AppendLoadJobs(sweep, cfg, loads, be.name);
        }

        const auto results = runner::RunSweep(sweep, jobs);

        for (size_t i = 0; i < results.size(); i += loads.size()) {
            std::vector<std::string> row = {sweep[i].tag};
            for (size_t j = 0; j < loads.size(); ++j) {
                const auto& r = results[i + j];
                if (sweep[i].tag != "baseline" && r.slo_violated) {
                    ++violations;
                }
                row.push_back(exp::FormatTailFrac(r.tail_frac_slo));
            }
            table.AddRow(std::move(row));
        }
        table.Print();
        std::fflush(stdout);
    }

    std::printf("\nSLO violations across all colocations and loads: %d\n",
                violations);
    std::printf("(the paper reports zero)\n");
    return violations == 0 ? 0 : 1;
}
