/**
 * @file
 * Figure 3: websearch's maximum load under SLO as a function of the
 * cores and LLC fraction granted to it.
 *
 * The surface must be a (monotone) convex function of both resources —
 * this property is what guarantees the core & memory subcontroller's
 * one-dimension-at-a-time gradient descent finds the global optimum.
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/reporting.h"
#include "hw/machine.h"
#include "runner/pool.h"
#include "workloads/lc_app.h"
#include "workloads/lc_configs.h"

using namespace heracles;

namespace {

/** Does websearch meet its SLO at @p load with this allocation? */
bool
MeetsSlo(const hw::MachineConfig& mcfg, const workloads::LcParams& lc,
         int cores, int ways, double load)
{
    sim::EventQueue queue;
    hw::MachineConfig cfg = mcfg;
    cfg.seed = 17 + cores * 1000 + ways * 100 +
               static_cast<uint64_t>(load * 1000);
    hw::Machine machine(cfg, queue);
    workloads::LcApp app(machine, lc, cfg.seed);
    app.SetCpus(machine.topology().SpreadCores(cores));
    if (ways < cfg.llc_ways) machine.SetCatWays(&app, ways);
    app.SetLoad(load);
    app.Start();
    machine.ResolveNow();
    queue.RunFor(bench::Scaled(sim::Seconds(15), sim::Seconds(8)));
    app.ResetStats();
    queue.RunFor(bench::Scaled(sim::Seconds(25), sim::Seconds(12)));
    return app.WorstReportTail() <= lc.slo_latency;
}

/** Binary-searches the maximum load meeting the SLO (fraction). */
double
MaxLoad(const hw::MachineConfig& cfg, const workloads::LcParams& lc,
        int cores, int ways)
{
    double lo = 0.0, hi = 1.0;
    if (MeetsSlo(cfg, lc, cores, ways, 1.0)) return 1.0;
    if (!MeetsSlo(cfg, lc, cores, ways, 0.05)) return 0.0;
    for (int iter = 0; iter < 5; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (MeetsSlo(cfg, lc, cores, ways, mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

}  // namespace

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    const hw::MachineConfig cfg;
    const workloads::LcParams lc = workloads::Websearch();

    exp::PrintBanner(
        "Figure 3: websearch max load under SLO vs (cores, LLC)");

    const std::vector<double> core_fracs = {0.17, 0.33, 0.50, 0.67,
                                            0.83, 1.00};
    const std::vector<double> llc_fracs = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};

    std::vector<std::string> headers = {"cores \\ LLC"};
    for (double lf : llc_fracs) headers.push_back(exp::FormatPct(lf));
    exp::Table table(headers);

    // Every (cores, ways) cell runs its own binary search over fresh
    // simulations; flatten the grid across the runner pool.
    const size_t cols = llc_fracs.size();
    const auto cells = runner::ParallelMap(
        jobs, core_fracs.size() * cols, [&](size_t i) {
            const int cores = std::max(
                1, static_cast<int>(core_fracs[i / cols] *
                                        cfg.TotalCores() + 0.5));
            const int ways = std::max(
                1,
                static_cast<int>(llc_fracs[i % cols] * cfg.llc_ways + 0.5));
            return MaxLoad(cfg, lc, cores, ways);
        });

    for (size_t r = 0; r < core_fracs.size(); ++r) {
        std::vector<std::string> row = {exp::FormatPct(core_fracs[r])};
        for (size_t c = 0; c < cols; ++c) {
            row.push_back(exp::FormatPct(cells[r * cols + c]));
        }
        table.AddRow(std::move(row));
    }
    table.Print();
    std::printf(
        "\nEach cell: max websearch load (%% of peak) meeting the SLO\n"
        "with that share of physical cores and LLC ways. The surface\n"
        "rises monotonically in both axes (convexity, Section 4.3).\n");
    return 0;
}
