/**
 * @file
 * Figure 7: memkeyval network bandwidth under Heracles with iperf.
 *
 * The network subcontroller shapes iperf's egress traffic to
 * LinkRate - LCBandwidth - max(0.05*LinkRate, 0.10*LCBandwidth), so the
 * BE job soaks up exactly the bandwidth memkeyval is not using while the
 * LC job keeps its SLO at every load.
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"

using namespace heracles;

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    const hw::MachineConfig machine;
    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};
    const sim::Duration warmup =
        bench::Scaled(sim::Seconds(150), sim::Seconds(80));
    const sim::Duration measure =
        bench::Scaled(sim::Seconds(120), sim::Seconds(40));

    exp::PrintBanner(
        "Figure 7: memkeyval network bandwidth (% of link) with iperf");

    std::vector<std::string> headers = {"series"};
    for (double l : loads) headers.push_back(exp::FormatPct(l));
    exp::Table table(headers);

    // Baseline: memkeyval alone.
    std::vector<std::string> base_lc = {"baseline LC tx"};
    {
        exp::ExperimentConfig cfg;
        cfg.machine = machine;
        cfg.lc = workloads::Memkeyval();
        cfg.policy = exp::PolicyKind::kNoColocation;
        cfg.warmup = warmup;
        cfg.measure = measure;
        exp::Experiment e(cfg);
        for (const auto& r : e.Sweep(loads, jobs)) {
            base_lc.push_back(exp::FormatPct(r.telemetry.lc_tx_gbps /
                                             machine.nic_gbps));
        }
    }
    table.AddRow(std::move(base_lc));
    std::fflush(stdout);

    // Heracles: memkeyval + iperf.
    std::vector<std::string> lc_tx = {"heracles LC tx"};
    std::vector<std::string> be_tx = {"heracles BE tx (iperf)"};
    std::vector<std::string> tail = {"LC tail (% SLO)"};
    {
        exp::ExperimentConfig cfg;
        cfg.machine = machine;
        cfg.lc = workloads::Memkeyval();
        cfg.be = workloads::Iperf();
        cfg.policy = exp::PolicyKind::kHeracles;
        cfg.warmup = warmup;
        cfg.measure = measure;
        exp::Experiment e(cfg);
        for (const auto& r : e.Sweep(loads, jobs)) {
            lc_tx.push_back(exp::FormatPct(r.telemetry.lc_tx_gbps /
                                           machine.nic_gbps));
            be_tx.push_back(exp::FormatPct(r.telemetry.be_tx_gbps /
                                           machine.nic_gbps));
            tail.push_back(exp::FormatTailFrac(r.tail_frac_slo));
        }
    }
    table.AddRow(std::move(lc_tx));
    table.AddRow(std::move(be_tx));
    table.AddRow(std::move(tail));
    table.Print();

    std::printf(
        "\nBE bandwidth tracks the complement of LC bandwidth (minus the\n"
        "reserved headroom) and the memkeyval SLO holds at every load.\n");
    return 0;
}
