/**
 * @file
 * Figure 8: websearch cluster driven by a diurnal load trace.
 *
 * A root fans each query out to every leaf; the SLO is the average root
 * latency over 30-second windows, with the target defined at 90% load
 * without colocation. Heracles runs on every leaf, colocating brain on
 * half of them and streetview on the other half. Expected result: no
 * SLO violations, slack reduced by 20-30%, and EMU averaging ~90% with a
 * minimum around 80% (the paper's 12-hour trace is time-compressed here;
 * controller periods are unchanged).
 */
#include <cstdio>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "exp/reporting.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

using namespace heracles;

namespace {

void
PrintSeries(const cluster::ClusterResult& r, const std::string& label)
{
    exp::Table table({"time", "load", label, "EMU"});
    for (size_t i = 0; i < r.latency_frac.size(); ++i) {
        // Print every other window to keep the table readable.
        if (i % 2 != 0) continue;
        table.AddRow({exp::FormatDouble(
                          sim::ToSeconds(r.latency_frac.t[i]) / 60.0, 1) +
                          "min",
                      exp::FormatPct(r.load.v[i]),
                      exp::FormatPct(r.latency_frac.v[i]),
                      exp::FormatPct(r.emu.v[i])});
    }
    table.Print();
}

}  // namespace

int
main(int argc, char** argv)
{
    // The figure is the cataloged cluster scenario at bench scale: same
    // assembly as the golden harness, larger cluster and longer trace.
    cluster::ClusterConfig cfg = scenarios::ClusterConfigFor(
        scenarios::MustFindScenario("cluster_websearch_heracles"));
    cfg.jobs = bench::ParseJobs(argc, argv);
    cfg.leaves = bench::FastMode() ? 8 : 12;
    cfg.duration = bench::Scaled(sim::Minutes(25), sim::Minutes(10));

    exp::PrintBanner("Figure 8: websearch cluster, diurnal trace");

    cluster::ClusterExperiment experiment(cfg);
    const sim::Duration target = experiment.MeasureTarget();
    std::printf("root SLO target (mu/30s at 90%% load): %s\n",
                sim::FormatDuration(target).c_str());
    std::fflush(stdout);

    // Baseline: no colocation.
    cluster::ClusterConfig base_cfg = cfg;
    base_cfg.colocate = false;
    cluster::ClusterExperiment base(base_cfg);
    const cluster::ClusterResult rb = base.Run();
    exp::PrintBanner("baseline (no colocation)");
    PrintSeries(rb, "latency (% of SLO)");
    std::fflush(stdout);

    // Heracles with brain + streetview.
    const cluster::ClusterResult rh = experiment.Run();
    exp::PrintBanner("Heracles (brain on half the leaves, streetview on "
                     "the other half)");
    PrintSeries(rh, "latency (% of SLO)");

    // Beyond the paper: the heterogeneous cluster under the slack-aware
    // cluster-level BE scheduler versus the same leaves with the jobs
    // pinned static-split (scenario pair from the catalog, bench jobs).
    cluster::ClusterConfig greedy_cfg = scenarios::ClusterConfigFor(
        scenarios::MustFindScenario("cluster_hetero_greedy_diurnal"));
    greedy_cfg.jobs = cfg.jobs;
    cluster::ClusterExperiment greedy(greedy_cfg);
    const cluster::ClusterResult rg = greedy.Run();

    cluster::ClusterConfig pin_cfg = scenarios::ClusterConfigFor(
        scenarios::MustFindScenario("cluster_hetero_static"));
    pin_cfg.jobs = cfg.jobs;
    cluster::ClusterExperiment pinned(pin_cfg);
    const cluster::ClusterResult rp = pinned.Run();

    std::printf("\nSummary:\n");
    exp::Table summary({"series", "worst latency", "SLO ok", "avg EMU",
                        "min EMU", "placements", "migrations"});
    auto row = [&](const char* name, const cluster::ClusterResult& r) {
        summary.AddRow({name, exp::FormatPct(r.worst_latency_frac),
                        r.slo_violated ? "VIOLATED" : "yes",
                        exp::FormatPct(r.avg_emu),
                        exp::FormatPct(r.min_emu),
                        exp::FormatDouble(
                            static_cast<double>(r.be_placements), 0),
                        exp::FormatDouble(
                            static_cast<double>(r.be_migrations), 0)});
    };
    row("baseline", rb);
    row("heracles", rh);
    row("hetero static-split", rp);
    row("hetero greedy-slack", rg);
    summary.Print();
    std::printf("(the paper reports ~90%% average and >=80%% minimum EMU "
                "with no violations; the greedy scheduler should beat "
                "the static split on the heterogeneous leaves)\n");
    return rh.slo_violated || rg.slo_violated ? 1 : 0;
}
