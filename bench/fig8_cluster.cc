/**
 * @file
 * Figure 8: websearch cluster driven by a diurnal load trace.
 *
 * A root fans each query out to every leaf; the SLO is the average root
 * latency over 30-second windows, with the target defined at 90% load
 * without colocation. Heracles runs on every leaf, colocating brain on
 * half of them and streetview on the other half. Expected result: no
 * SLO violations, slack reduced by 20-30%, and EMU averaging ~90% with a
 * minimum around 80% (the paper's 12-hour trace is time-compressed here;
 * controller periods are unchanged).
 */
#include <cstdio>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "exp/reporting.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

using namespace heracles;

namespace {

void
PrintSeries(const cluster::ClusterResult& r, const std::string& label)
{
    exp::Table table({"time", "load", label, "EMU"});
    for (size_t i = 0; i < r.latency_frac.size(); ++i) {
        // Print every other window to keep the table readable.
        if (i % 2 != 0) continue;
        table.AddRow({exp::FormatDouble(
                          sim::ToSeconds(r.latency_frac.t[i]) / 60.0, 1) +
                          "min",
                      exp::FormatPct(r.load.v[i]),
                      exp::FormatPct(r.latency_frac.v[i]),
                      exp::FormatPct(r.emu.v[i])});
    }
    table.Print();
}

}  // namespace

int
main(int argc, char** argv)
{
    // The figure is the cataloged cluster scenario at bench scale: same
    // assembly as the golden harness, larger cluster and longer trace.
    cluster::ClusterConfig cfg = scenarios::ClusterConfigFor(
        scenarios::MustFindScenario("cluster_websearch_heracles"));
    cfg.jobs = bench::ParseJobs(argc, argv);
    cfg.leaves = bench::FastMode() ? 8 : 12;
    cfg.duration = bench::Scaled(sim::Minutes(25), sim::Minutes(10));

    exp::PrintBanner("Figure 8: websearch cluster, diurnal trace");

    cluster::ClusterExperiment experiment(cfg);
    const sim::Duration target = experiment.MeasureTarget();
    std::printf("root SLO target (mu/30s at 90%% load): %s\n",
                sim::FormatDuration(target).c_str());
    std::fflush(stdout);

    // Baseline: no colocation.
    cluster::ClusterConfig base_cfg = cfg;
    base_cfg.colocate = false;
    cluster::ClusterExperiment base(base_cfg);
    const cluster::ClusterResult rb = base.Run();
    exp::PrintBanner("baseline (no colocation)");
    PrintSeries(rb, "latency (% of SLO)");
    std::fflush(stdout);

    // Heracles with brain + streetview.
    const cluster::ClusterResult rh = experiment.Run();
    exp::PrintBanner("Heracles (brain on half the leaves, streetview on "
                     "the other half)");
    PrintSeries(rh, "latency (% of SLO)");

    std::printf("\nSummary:\n");
    exp::Table summary({"series", "worst latency", "SLO ok", "avg EMU",
                        "min EMU"});
    summary.AddRow({"baseline", exp::FormatPct(rb.worst_latency_frac),
                    rb.slo_violated ? "VIOLATED" : "yes",
                    exp::FormatPct(rb.avg_emu),
                    exp::FormatPct(rb.min_emu)});
    summary.AddRow({"heracles", exp::FormatPct(rh.worst_latency_frac),
                    rh.slo_violated ? "VIOLATED" : "yes",
                    exp::FormatPct(rh.avg_emu),
                    exp::FormatPct(rh.min_emu)});
    summary.Print();
    std::printf("(the paper reports ~90%% average and >=80%% minimum EMU "
                "with no violations)\n");
    return rh.slo_violated ? 1 : 0;
}
