/**
 * @file
 * Figure 5: Effective Machine Utilization achieved by Heracles.
 *
 * EMU = LC throughput + BE throughput, both normalized to running the
 * task alone at full machine. Values above 100% are possible thanks to
 * better bin-packing of complementary resources (e.g. compute-bound
 * websearch with DRAM-bound streetview).
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "runner/sweep.h"

using namespace heracles;

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    const hw::MachineConfig machine;
    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};
    const sim::Duration warmup =
        bench::Scaled(sim::Seconds(180), sim::Seconds(100));
    const sim::Duration measure =
        bench::Scaled(sim::Seconds(180), sim::Seconds(60));

    exp::PrintBanner("Figure 5: Effective Machine Utilization (%)");

    std::vector<std::string> headers = {"colocation"};
    for (double l : loads) headers.push_back(exp::FormatPct(l));
    exp::Table table(headers);

    // Baseline EMU is simply the LC load.
    {
        std::vector<std::string> row = {"baseline (LC alone)"};
        for (double l : loads) row.push_back(exp::FormatPct(l));
        table.AddRow(std::move(row));
    }

    // All (colocation, load) cells are independent: flatten them into
    // one runner sweep.
    std::vector<runner::SweepJob> sweep;
    for (const auto& lc : workloads::AllLcWorkloads()) {
        for (const std::string be_name : {"brain", "streetview"}) {
            exp::ExperimentConfig cfg;
            cfg.machine = machine;
            cfg.lc = lc;
            cfg.be = workloads::BeProfileByName(machine, be_name);
            cfg.policy = exp::PolicyKind::kHeracles;
            cfg.warmup = warmup;
            cfg.measure = measure;
            runner::AppendLoadJobs(sweep, cfg, loads,
                                   lc.name + "+" + be_name);
        }
    }
    const auto results = runner::RunSweep(sweep, jobs);

    double total_emu = 0.0;
    int points = 0;
    for (size_t i = 0; i < results.size(); i += loads.size()) {
        std::vector<std::string> row = {sweep[i].tag};
        for (size_t j = 0; j < loads.size(); ++j) {
            row.push_back(exp::FormatPct(results[i + j].emu));
            total_emu += results[i + j].emu;
            ++points;
        }
        table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\nAverage EMU across colocations and loads: %s\n",
                exp::FormatPct(total_emu / points).c_str());
    std::printf("(the paper reports an average of ~90%%)\n");
    return 0;
}
