/**
 * @file
 * Figure 5: Effective Machine Utilization achieved by Heracles.
 *
 * EMU = LC throughput + BE throughput, both normalized to running the
 * task alone at full machine. Values above 100% are possible thanks to
 * better bin-packing of complementary resources (e.g. compute-bound
 * websearch with DRAM-bound streetview).
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"

using namespace heracles;

int
main()
{
    const hw::MachineConfig machine;
    const std::vector<double> loads = {0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9};
    const sim::Duration warmup =
        bench::Scaled(sim::Seconds(180), sim::Seconds(100));
    const sim::Duration measure =
        bench::Scaled(sim::Seconds(180), sim::Seconds(60));

    exp::PrintBanner("Figure 5: Effective Machine Utilization (%)");

    std::vector<std::string> headers = {"colocation"};
    for (double l : loads) headers.push_back(exp::FormatPct(l));
    exp::Table table(headers);

    // Baseline EMU is simply the LC load.
    {
        std::vector<std::string> row = {"baseline (LC alone)"};
        for (double l : loads) row.push_back(exp::FormatPct(l));
        table.AddRow(std::move(row));
    }

    double total_emu = 0.0;
    int points = 0;
    for (const auto& lc : workloads::AllLcWorkloads()) {
        for (const std::string be_name : {"brain", "streetview"}) {
            exp::ExperimentConfig cfg;
            cfg.machine = machine;
            cfg.lc = lc;
            cfg.be = workloads::BeProfileByName(machine, be_name);
            cfg.policy = exp::PolicyKind::kHeracles;
            cfg.warmup = warmup;
            cfg.measure = measure;
            exp::Experiment e(cfg);

            std::vector<std::string> row = {lc.name + "+" + be_name};
            for (double l : loads) {
                const auto r = e.RunAt(l);
                row.push_back(exp::FormatPct(r.emu));
                total_emu += r.emu;
                ++points;
            }
            table.AddRow(std::move(row));
            std::fflush(stdout);
        }
    }
    table.Print();
    std::printf("\nAverage EMU across colocations and loads: %s\n",
                exp::FormatPct(total_emu / points).c_str());
    std::printf("(the paper reports an average of ~90%%)\n");
    return 0;
}
