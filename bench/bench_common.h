/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Set HERACLES_BENCH_FAST=1 to shorten warmup/measurement phases (~3x
 * faster, slightly noisier tails) during development.
 */
#ifndef HERACLES_BENCH_BENCH_COMMON_H
#define HERACLES_BENCH_BENCH_COMMON_H

#include <cstdlib>
#include <string>

#include "sim/time.h"

namespace heracles::bench {

/** True when HERACLES_BENCH_FAST=1 is set in the environment. */
inline bool
FastMode()
{
    const char* v = std::getenv("HERACLES_BENCH_FAST");
    return v != nullptr && std::string(v) == "1";
}

inline sim::Duration
Scaled(sim::Duration full, sim::Duration fast)
{
    return FastMode() ? fast : full;
}

}  // namespace heracles::bench

#endif  // HERACLES_BENCH_BENCH_COMMON_H
