/**
 * @file
 * Shared helpers for the figure-regeneration benches.
 *
 * Set HERACLES_BENCH_FAST=1 to shorten warmup/measurement phases (~3x
 * faster, slightly noisier tails) during development.
 *
 * Every bench accepts --jobs N (default: hardware concurrency, or the
 * HERACLES_JOBS environment variable) to fan its independent simulations
 * across a runner::Pool. Results are bit-identical for every N.
 */
#ifndef HERACLES_BENCH_BENCH_COMMON_H
#define HERACLES_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/pool.h"
#include "sim/time.h"

namespace heracles::bench {

/** True when HERACLES_BENCH_FAST=1 is set in the environment. */
inline bool
FastMode()
{
    const char* v = std::getenv("HERACLES_BENCH_FAST");
    return v != nullptr && std::string(v) == "1";
}

inline sim::Duration
Scaled(sim::Duration full, sim::Duration fast)
{
    return FastMode() ? fast : full;
}

/**
 * Parses --jobs N (or --jobs=N) from the command line; every other
 * argument is ignored so benches with their own flags can share it.
 * Exits with a usage message on a malformed value.
 */
inline int
ParseJobs(int argc, char** argv)
{
    int jobs = runner::DefaultJobs();
    for (int i = 1; i < argc; ++i) {
        const char* val = nullptr;
        if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            val = argv[++i];
        } else if (!std::strncmp(argv[i], "--jobs=", 7)) {
            val = argv[i] + 7;
        }
        if (val != nullptr) {
            jobs = std::atoi(val);
            if (jobs <= 0) {
                std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
                std::exit(2);
            }
        }
    }
    return jobs;
}

}  // namespace heracles::bench

#endif  // HERACLES_BENCH_BENCH_COMMON_H
