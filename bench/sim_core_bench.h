/**
 * @file
 * Simulation-core microbenchmarks shared by bench/sim_core_baseline and
 * tools/bench_record.
 *
 * Two benches:
 *  - Event-queue churn: a fixed window of outstanding one-shot timers
 *    (each firing schedules its successor, mimicking LcApp's
 *    arrival/completion cycle with a 32-byte capture), a periodic tick,
 *    and a cancel stream. Run against both the pooled production
 *    EventQueue and LegacyEventQueue — a faithful copy of the pre-pool
 *    implementation (std::function payloads in the heap nodes plus
 *    unordered_set pending/cancelled bookkeeping) — so the recorded
 *    speedup is a measured ratio, not a claim.
 *  - Stats streaming: WindowedTailTracker record/roll throughput and
 *    LatencyHistogram percentile queries, the per-request stats cost.
 *
 * Binaries that want allocs/event must define the global allocation
 * counter with HERACLES_BENCH_DEFINE_ALLOC_COUNTER in exactly one
 * translation unit; the benches read it through bench::AllocCount().
 */
#ifndef HERACLES_BENCH_SIM_CORE_BENCH_H
#define HERACLES_BENCH_SIM_CORE_BENCH_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace heracles::bench {

/** Global new/delete call count; defined by the counter macro below. */
extern std::atomic<uint64_t> g_alloc_count;

inline uint64_t
AllocCount()
{
    return g_alloc_count.load(std::memory_order_relaxed);
}

/**
 * Defines counting replacements for the global allocation functions.
 * Place once in the binary's main .cc. Counts every operator new, which
 * is exactly the "allocs/event" the baseline record tracks.
 */
#define HERACLES_BENCH_DEFINE_ALLOC_COUNTER()                              \
    namespace heracles::bench {                                            \
    std::atomic<uint64_t> g_alloc_count{0};                                \
    }                                                                      \
    void* operator new(std::size_t size)                                   \
    {                                                                      \
        heracles::bench::g_alloc_count.fetch_add(                          \
            1, std::memory_order_relaxed);                                 \
        if (void* p = std::malloc(size ? size : 1)) return p;              \
        throw std::bad_alloc();                                            \
    }                                                                      \
    void operator delete(void* p) noexcept { std::free(p); }               \
    void operator delete(void* p, std::size_t) noexcept { std::free(p); }

/**
 * The event-queue implementation this PR replaced, kept verbatim for
 * measured comparison: std::function callbacks inside the heap items
 * (one heap allocation per >16-byte capture) and two unordered_sets of
 * live/cancelled ids maintained on every schedule, fire and cancel.
 */
class LegacyEventQueue
{
  public:
    using EventFn = std::function<void()>;
    using EventId = uint64_t;

    sim::SimTime Now() const { return now_; }

    EventId
    ScheduleAt(sim::SimTime when, EventFn fn)
    {
        const EventId id = next_id_++;
        heap_.push(Item{when, next_seq_++, id, std::move(fn), 0});
        pending_ids_.insert(id);
        return id;
    }

    EventId
    ScheduleAfter(sim::Duration delay, EventFn fn)
    {
        return ScheduleAt(now_ + delay, std::move(fn));
    }

    EventId
    SchedulePeriodic(sim::Duration period, sim::Duration phase, EventFn fn)
    {
        const EventId id = next_id_++;
        heap_.push(Item{now_ + phase, next_seq_++, id, std::move(fn),
                        period});
        pending_ids_.insert(id);
        return id;
    }

    void
    Cancel(EventId id)
    {
        if (pending_ids_.erase(id) > 0) cancelled_.insert(id);
    }

    void
    RunUntil(sim::SimTime until)
    {
        while (!heap_.empty() && heap_.top().when <= until) {
            Item item = heap_.top();
            heap_.pop();
            if (cancelled_.erase(item.id) > 0) continue;
            now_ = item.when;
            ++executed_;
            if (item.period <= 0) pending_ids_.erase(item.id);
            item.fn();
            if (item.period > 0) {
                if (cancelled_.erase(item.id) > 0) continue;
                item.when = now_ + item.period;
                item.seq = next_seq_++;
                heap_.push(std::move(item));
            }
        }
        if (now_ < until) now_ = until;
    }

    void RunFor(sim::Duration span) { RunUntil(now_ + span); }
    uint64_t executed() const { return executed_; }

  private:
    struct Item {
        sim::SimTime when;
        uint64_t seq;
        EventId id;
        EventFn fn;
        sim::Duration period;

        bool
        operator>(const Item& o) const
        {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
    std::unordered_set<EventId> pending_ids_;
    std::unordered_set<EventId> cancelled_;
    sim::SimTime now_ = 0;
    uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    uint64_t executed_ = 0;
};

/** One microbench measurement. */
struct BenchResult {
    uint64_t events = 0;       ///< Fired events (or recorded samples).
    double wall_s = 0.0;       ///< Wall-clock seconds.
    double per_sec = 0.0;      ///< events / wall_s.
    double allocs_per_event = 0.0;
};

inline double
WallSeconds(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Event-queue churn driver, shared between both implementations.
 *
 * Seeds @p window outstanding one-shot timers whose callbacks carry a
 * 32-byte capture (this pointer + a 24-byte request mirror, the shape of
 * LcApp's completion closures), each scheduling its successor when it
 * fires; one periodic tick; and, per firing, a short-lived extra event
 * that is immediately cancelled — the mix a server simulation generates.
 * Returns after ~@p total_events fires and reports the measured rate.
 */
/** The 24-byte payload LcApp completion closures carry. */
struct RequestMirror {
    sim::SimTime arrival = 0;
    uint64_t tag = 0;
    bool tracked = false;
};

/**
 * Self-perpetuating timer driver: each fire counts, schedules its
 * successor with a fresh pseudo-random delay, and plants a decoy event
 * that is immediately cancelled (the timeout-guard pattern). Completion
 * closures capture exactly (driver pointer, RequestMirror) — 32 bytes,
 * the shape of LcApp's per-request closures: past std::function's
 * 16-byte buffer (one heap allocation per event on the legacy queue),
 * inside InlineFn's 48-byte slot storage (zero on the pooled queue).
 */
template <typename Queue>
struct ChurnDriver {
    Queue q;
    sim::Rng rng{42};
    uint64_t fired = 0;

    void
    Arm(sim::Duration delay)
    {
        const RequestMirror req{q.Now(), fired, false};
        q.ScheduleAfter(delay, [this, req] { Fire(req); });
    }

    void
    Fire(const RequestMirror& req)
    {
        (void)req;
        ++fired;
        const auto next =
            static_cast<sim::Duration>(1 + rng.UniformInt(1000));
        Arm(next);
        const auto decoy = q.ScheduleAfter(next + 10000, [] {});
        q.Cancel(decoy);
    }
};

template <typename Queue>
BenchResult
RunEventQueueChurn(uint64_t total_events, int window = 2048)
{
    ChurnDriver<Queue> d;

    const uint64_t allocs0 = AllocCount();
    const double wall = WallSeconds([&] {
        for (int i = 0; i < window; ++i) {
            d.Arm(static_cast<sim::Duration>(1 + d.rng.UniformInt(1000)));
        }
        d.q.SchedulePeriodic(500, 0, [] {});
        // ~4 fires per simulated ns at the default window; small chunks
        // keep the overshoot past total_events negligible.
        while (d.fired < total_events) {
            d.q.RunFor(50000);
        }
    });
    const uint64_t allocs = AllocCount() - allocs0;

    BenchResult r;
    r.events = d.fired;
    r.wall_s = wall;
    r.per_sec = static_cast<double>(d.fired) / (wall > 0 ? wall : 1e-9);
    r.allocs_per_event =
        static_cast<double>(allocs) / static_cast<double>(d.fired);
    return r;
}

/**
 * Streaming-tail driver: records @p total_samples latencies drawn from
 * the exponential ballpark of a websearch service time into a
 * WindowedTailTracker (2 s fast window, the controller's poll cadence),
 * advancing simulated time so windows keep closing, then issues p95/p99
 * queries per window roll. Reports samples/sec.
 */
inline BenchResult
RunStatsStreaming(uint64_t total_samples)
{
    sim::WindowedTailTracker tracker(sim::Seconds(2), 0.99);
    sim::Rng rng(7);
    sim::SimTime now = 0;
    sim::Duration sink = 0;

    const uint64_t allocs0 = AllocCount();
    const double wall = WallSeconds([&] {
        for (uint64_t i = 0; i < total_samples; ++i) {
            now += sim::Micros(100);  // ~10k samples per 1 s of sim time
            const auto lat =
                static_cast<sim::Duration>(1 + rng.Exponential(4e6));
            tracker.Record(now, lat);
            if ((i & 0x3FFF) == 0) {
                sink += tracker.OverallPercentile(0.95);
                sink += tracker.CurrentWindowTail();
            }
        }
    });
    const uint64_t allocs = AllocCount() - allocs0;
    if (sink == -1) std::abort();  // keep the reads alive

    BenchResult r;
    r.events = total_samples;
    r.wall_s = wall;
    r.per_sec =
        static_cast<double>(total_samples) / (wall > 0 ? wall : 1e-9);
    r.allocs_per_event =
        static_cast<double>(allocs) / static_cast<double>(total_samples);
    return r;
}

/**
 * The shared core of the BENCH_sim_core.json record (see
 * docs/performance.md for the schema): the event-queue microbench pair
 * and the stats streaming bench, as indented JSON object members
 * without surrounding braces so callers can append their own sections.
 */
inline std::string
CoreBenchJson(const BenchResult& pooled, const BenchResult& legacy,
              const BenchResult& stats)
{
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "  \"event_queue\": {\n"
        "    \"events\": %llu,\n"
        "    \"pooled_events_per_sec\": %.0f,\n"
        "    \"pooled_wall_s\": %.3f,\n"
        "    \"pooled_allocs_per_event\": %.4f,\n"
        "    \"legacy_events_per_sec\": %.0f,\n"
        "    \"legacy_wall_s\": %.3f,\n"
        "    \"legacy_allocs_per_event\": %.4f,\n"
        "    \"speedup\": %.2f\n"
        "  },\n"
        "  \"stats\": {\n"
        "    \"samples\": %llu,\n"
        "    \"samples_per_sec\": %.0f,\n"
        "    \"wall_s\": %.3f,\n"
        "    \"allocs_per_sample\": %.4f\n"
        "  }",
        static_cast<unsigned long long>(pooled.events), pooled.per_sec,
        pooled.wall_s, pooled.allocs_per_event, legacy.per_sec,
        legacy.wall_s, legacy.allocs_per_event,
        pooled.per_sec / (legacy.per_sec > 0 ? legacy.per_sec : 1e-9),
        static_cast<unsigned long long>(stats.events), stats.per_sec,
        stats.wall_s, stats.allocs_per_event);
    return buf;
}

}  // namespace heracles::bench

#endif  // HERACLES_BENCH_SIM_CORE_BENCH_H
