/**
 * @file
 * Figure 1: impact of interference on shared resources.
 *
 * For each LC workload (websearch, ml_cluster, memkeyval), prints the
 * characterization matrix: rows are antagonists, columns are load points
 * 5%..95%, and each cell is tail latency normalized to the SLO (values
 * above 300% print as ">300%"). The paper's qualitative findings to look
 * for: OS-only isolation (brain row) violates everywhere; LLC (big) and
 * DRAM antagonists devastate low/mid loads and fade as the LC workload
 * claims more cores; HyperThread interference is tolerable until high
 * load; memkeyval is destroyed by network antagonists from ~35% load.
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/characterization.h"
#include "exp/reporting.h"

using namespace heracles;

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    const hw::MachineConfig machine;
    const auto loads = exp::CharacterizationRig::PaperLoads();
    const sim::Duration warmup =
        bench::Scaled(sim::Seconds(20), sim::Seconds(8));
    const sim::Duration measure =
        bench::Scaled(sim::Seconds(40), sim::Seconds(15));

    for (const auto& lc : workloads::AllLcWorkloads()) {
        exp::CharacterizationRig rig(machine, lc, warmup, measure);
        // A microsecond-scale SLO leaves no provisioning headroom: the
        // minimum-core sizing for memkeyval is tighter, which is what
        // makes it hypersensitive to every antagonist (Section 3.3).
        if (lc.name == "memkeyval") rig.SetSizingUtil(0.90);

        exp::PrintBanner("Figure 1: " + lc.name +
                         " tail latency vs load (% of SLO)");

        std::vector<std::string> headers = {"antagonist"};
        for (double l : loads) {
            headers.push_back(exp::FormatPct(l));
        }
        exp::Table table(headers);

        const auto kinds = exp::AllAntagonists();
        const auto grid = rig.RunGrid(kinds, loads, jobs);
        for (size_t k = 0; k < kinds.size(); ++k) {
            std::vector<std::string> row = {
                exp::AntagonistName(kinds[k])};
            for (double cell : grid[k]) {
                row.push_back(exp::FormatTailFrac(cell));
            }
            table.AddRow(std::move(row));
        }
        // Baseline row for reference (not in the paper's figure, but
        // needed to judge the interference deltas).
        std::vector<std::string> base = {"(baseline)"};
        for (double cell : rig.RunBaselineRow(loads, jobs)) {
            base.push_back(exp::FormatTailFrac(cell));
        }
        table.AddRow(std::move(base));
        table.Print();
        std::fflush(stdout);
    }
    return 0;
}
