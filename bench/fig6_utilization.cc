/**
 * @file
 * Figure 6: shared-resource utilization under Heracles — DRAM bandwidth,
 * CPU utilization and CPU power (% of TDP) for each LC workload
 * colocated with each BE job.
 *
 * Key shapes from the paper: Heracles never lets DRAM bandwidth
 * saturate (stream-DRAM and streetview run on few cores — high DRAM,
 * lower CPU); cache-fitting BE tasks get LLC partitions that *reduce*
 * total traffic; CPU power rises far less than EMU (energy-efficiency
 * gain).
 */
#include <cstdio>

#include "bench_common.h"
#include "exp/experiment.h"
#include "exp/reporting.h"

using namespace heracles;

int
main(int argc, char** argv)
{
    const int jobs = bench::ParseJobs(argc, argv);
    const hw::MachineConfig machine;
    const std::vector<double> loads =
        bench::FastMode() ? std::vector<double>{0.25, 0.55, 0.8}
                          : std::vector<double>{0.2, 0.4, 0.6, 0.8};
    const sim::Duration warmup =
        bench::Scaled(sim::Seconds(180), sim::Seconds(100));
    const sim::Duration measure =
        bench::Scaled(sim::Seconds(150), sim::Seconds(60));

    for (const auto& lc : workloads::AllLcWorkloads()) {
        exp::PrintBanner("Figure 6: " + lc.name +
                         " resource utilization with Heracles");

        std::vector<std::string> headers = {"BE workload", "metric"};
        for (double l : loads) headers.push_back(exp::FormatPct(l));
        exp::Table table(headers);

        auto add_rows = [&](const std::string& name,
                            const std::vector<exp::LoadPointResult>& rs) {
            std::vector<std::string> dram = {name, "DRAM BW"};
            std::vector<std::string> cpu = {"", "CPU util"};
            std::vector<std::string> pwr = {"", "CPU power"};
            for (const auto& r : rs) {
                dram.push_back(exp::FormatPct(r.telemetry.dram_frac));
                cpu.push_back(exp::FormatPct(r.telemetry.cpu_utilization));
                pwr.push_back(exp::FormatPct(r.telemetry.power_frac_tdp));
            }
            table.AddRow(std::move(dram));
            table.AddRow(std::move(cpu));
            table.AddRow(std::move(pwr));
        };

        // Baseline.
        {
            exp::ExperimentConfig cfg;
            cfg.machine = machine;
            cfg.lc = lc;
            cfg.policy = exp::PolicyKind::kNoColocation;
            cfg.warmup = warmup;
            cfg.measure = measure;
            exp::Experiment e(cfg);
            add_rows("baseline", e.Sweep(loads, jobs));
            std::fflush(stdout);
        }

        for (const auto& be : workloads::EvaluationBeSet(machine)) {
            if (be.name == "iperf" && lc.name != "memkeyval") continue;
            exp::ExperimentConfig cfg;
            cfg.machine = machine;
            cfg.lc = lc;
            cfg.be = be;
            cfg.policy = exp::PolicyKind::kHeracles;
            cfg.warmup = warmup;
            cfg.measure = measure;
            exp::Experiment e(cfg);
            add_rows(be.name, e.Sweep(loads, jobs));
            std::fflush(stdout);
        }
        table.Print();
        std::fflush(stdout);
    }
    return 0;
}
