/**
 * @file
 * Quickstart: colocate Google-style websearch with the "brain" deep
 * learning batch job under Heracles on one simulated server.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "exp/experiment.h"
#include "exp/reporting.h"

using namespace heracles;

int
main()
{
    // 1. Describe the server (defaults model a dual-socket Haswell Xeon).
    hw::MachineConfig machine;

    // 2. Pick the latency-critical workload and a best-effort job.
    exp::ExperimentConfig cfg;
    cfg.machine = machine;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(120);
    cfg.measure = sim::Seconds(120);

    exp::Experiment experiment(cfg);

    // 3. Run a few load points and look at tail latency and utilization.
    exp::PrintBanner("websearch + brain under Heracles");
    exp::Table table({"load", "p99 (% of SLO)", "SLO ok", "EMU",
                      "BE cores", "BE LLC ways", "DRAM BW", "CPU power"});
    for (double load : {0.2, 0.4, 0.6, 0.8}) {
        const exp::LoadPointResult r = experiment.RunAt(load);
        table.AddRow({exp::FormatPct(load),
                      exp::FormatTailFrac(r.tail_frac_slo),
                      r.slo_violated ? "VIOLATED" : "yes",
                      exp::FormatPct(r.emu),
                      std::to_string(r.be_cores),
                      std::to_string(r.be_ways),
                      exp::FormatPct(r.telemetry.dram_frac),
                      exp::FormatPct(r.telemetry.power_frac_tdp)});
    }
    table.Print();

    std::printf(
        "\nHeracles grows the best-effort job as far as the latency\n"
        "slack allows while keeping every shared resource below\n"
        "saturation; the LC tail stays under 100%% of the SLO.\n");
    return 0;
}
