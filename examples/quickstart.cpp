/**
 * @file
 * Quickstart: run a cataloged scenario, then build on it.
 *
 * Every colocation in this library is a named, self-describing scenario
 * (see `heracles_sim --list-scenarios`). The quickest path is to run
 * one straight from the registry; the composition helpers then let you
 * reuse the same assembly for custom measurements — here, a small load
 * sweep on top of the cataloged websearch + brain colocation.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "exp/experiment.h"
#include "exp/reporting.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

using namespace heracles;

int
main()
{
    // 1. Pick a scenario from the catalog and run it end to end. The
    //    result is the canonical metrics record the golden regression
    //    harness pins — every field is reproducible from name + seed.
    const scenarios::ScenarioSpec& spec =
        scenarios::MustFindScenario("websearch_brain_heracles");
    const scenarios::ScenarioMetrics m = scenarios::RunScenario(spec);

    exp::PrintBanner("scenario: " + spec.name);
    std::printf("  %s\n", spec.description.c_str());
    std::printf("  worst tail    : %.1f%% of SLO (%s)\n",
                m.tail_frac_slo * 100,
                m.slo_attained > 0 ? "SLO met" : "VIOLATED");
    std::printf("  EMU           : %.1f%%  (LC %.1f%% + BE %.1f%%)\n",
                m.emu * 100, m.lc_throughput * 100, m.be_throughput * 100);
    std::printf("  BE allocation : %.0f cores, %.0f LLC ways\n\n",
                m.be_cores, m.be_ways);

    // 2. Build on the same scenario: compose its experiment config and
    //    sweep extra load points instead of assembling a server by hand.
    exp::Experiment experiment(scenarios::ExperimentConfigFor(spec));

    exp::PrintBanner("load sweep over the same assembly");
    exp::Table table({"load", "p99 (% of SLO)", "SLO ok", "EMU",
                      "BE cores", "BE LLC ways", "DRAM BW", "CPU power"});
    for (double load : {0.2, 0.4, 0.6, 0.8}) {
        const exp::LoadPointResult r = experiment.RunAt(load);
        table.AddRow({exp::FormatPct(load),
                      exp::FormatTailFrac(r.tail_frac_slo),
                      r.slo_violated ? "VIOLATED" : "yes",
                      exp::FormatPct(r.emu),
                      std::to_string(r.be_cores),
                      std::to_string(r.be_ways),
                      exp::FormatPct(r.telemetry.dram_frac),
                      exp::FormatPct(r.telemetry.power_frac_tdp)});
    }
    table.Print();

    std::printf(
        "\nHeracles grows the best-effort job as far as the latency\n"
        "slack allows while keeping every shared resource below\n"
        "saturation; the LC tail stays under 100%% of the SLO.\n");
    return m.slo_attained > 0 ? 0 : 1;
}
