/**
 * @file
 * Defining your own latency-critical workload and running it under
 * Heracles.
 *
 * The example models an RPC-based "adserver" leaf: 2 ms mean service
 * time, a 8 ms p99 SLO, a modest cache footprint and a heavy DRAM
 * appetite. The LcParams struct is the complete description the library
 * needs; everything else (controller, bandwidth model, colocation) is
 * assembled exactly as for the paper's workloads.
 */
#include <cstdio>

#include "exp/experiment.h"
#include "exp/reporting.h"

using namespace heracles;

int
main()
{
    // 1. Describe the latency-critical service.
    workloads::LcParams adserver;
    adserver.name = "adserver";
    adserver.slo_percentile = 0.99;
    adserver.slo_latency = sim::Millis(8);
    adserver.peak_qps = 20000.0;
    adserver.mean_service = sim::Millis(2);
    adserver.service_sigma = 0.40;
    adserver.mem_frac = 0.35;          // heavy on memory
    adserver.cache.instr_mb = 3.0;
    adserver.cache.data_base_mb = 6.0;
    adserver.cache.data_slope_mb = 12.0;
    adserver.peak_dram_frac = 0.50;    // 50% of machine bandwidth at peak
    adserver.resp_bytes = 2048.0;
    adserver.power_intensity = 0.9;

    // 2. Colocate it with the DRAM-hungry streetview batch job under
    //    Heracles and sweep the load.
    exp::ExperimentConfig cfg;
    cfg.lc = adserver;
    cfg.be = workloads::Streetview();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(150);
    cfg.measure = sim::Seconds(120);
    exp::Experiment experiment(cfg);

    exp::PrintBanner("custom adserver + streetview under Heracles");
    exp::Table table({"load", "p99 (% of SLO)", "SLO ok", "EMU",
                      "BE DRAM est (GB/s)", "BE cores"});
    for (double load : {0.25, 0.5, 0.75}) {
        const auto r = experiment.RunAt(load);
        table.AddRow({exp::FormatPct(load),
                      exp::FormatTailFrac(r.tail_frac_slo),
                      r.slo_violated ? "VIOLATED" : "yes",
                      exp::FormatPct(r.emu),
                      exp::FormatDouble(r.telemetry.dram_gbps, 1),
                      std::to_string(r.be_cores)});
    }
    table.Print();

    std::printf(
        "\nThe controller needed no workload-specific tuning: the offline\n"
        "bandwidth model is profiled automatically from the LcParams.\n");
    return 0;
}
