/**
 * @file
 * Comparing isolation policies on the same colocation.
 *
 * The catalog already registers websearch + brain under every policy:
 *  - baseline:      websearch alone (wasted capacity)
 *  - os-only:       shared cpus with CFS shares (the paper's Figure 1
 *                   "brain" row: massive SLO violations)
 *  - static:        a fixed half/half core + cache split (safe at low
 *                   load, violates or wastes at high load)
 *  - heracles:      dynamic coordinated isolation
 *
 * Instead of assembling four experiments by hand, the example composes
 * each policy's experiment from its registered scenario and sweeps two
 * load points.
 */
#include <cstdio>

#include "exp/experiment.h"
#include "exp/reporting.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

using namespace heracles;

int
main()
{
    exp::PrintBanner("websearch + brain: isolation policy comparison");

    exp::Table table({"policy", "load", "p99 (% of SLO)", "SLO ok", "EMU"});
    for (const char* name :
         {"websearch_baseline", "websearch_brain_os_only",
          "websearch_brain_static", "websearch_brain_heracles"}) {
        const scenarios::ScenarioSpec& spec =
            scenarios::MustFindScenario(name);
        exp::Experiment e(scenarios::ExperimentConfigFor(spec));
        for (double load : {0.4, 0.8}) {
            const auto r = e.RunAt(load);
            table.AddRow({exp::PolicyName(spec.policy),
                          exp::FormatPct(load),
                          exp::FormatTailFrac(r.tail_frac_slo),
                          r.slo_violated ? "VIOLATED" : "yes",
                          exp::FormatPct(r.emu)});
        }
    }
    table.Print();

    std::printf(
        "\nOnly the coordinated dynamic controller gets both halves\n"
        "right: no SLO violations at any load *and* high utilization.\n");
    return 0;
}
