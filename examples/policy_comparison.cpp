/**
 * @file
 * Comparing isolation policies on the same colocation.
 *
 * websearch + brain at 40% load under four policies:
 *  - baseline:      websearch alone (wasted capacity)
 *  - os-only:       shared cpus with CFS shares (the paper's Figure 1
 *                   "brain" row: massive SLO violations)
 *  - static:        a fixed half/half core + cache split (safe at low
 *                   load, violates or wastes at high load)
 *  - heracles:      dynamic coordinated isolation
 */
#include <cstdio>

#include "exp/experiment.h"
#include "exp/reporting.h"

using namespace heracles;

int
main()
{
    exp::PrintBanner("websearch + brain: isolation policy comparison");

    exp::Table table({"policy", "load", "p99 (% of SLO)", "SLO ok", "EMU"});
    for (const auto policy :
         {exp::PolicyKind::kNoColocation, exp::PolicyKind::kOsOnly,
          exp::PolicyKind::kStaticPartition, exp::PolicyKind::kHeracles}) {
        for (double load : {0.4, 0.8}) {
            exp::ExperimentConfig cfg;
            cfg.lc = workloads::Websearch();
            cfg.be = workloads::Brain();
            cfg.policy = policy;
            cfg.warmup = sim::Seconds(150);
            cfg.measure = sim::Seconds(120);
            exp::Experiment e(cfg);
            const auto r = e.RunAt(load);
            table.AddRow({exp::PolicyName(policy), exp::FormatPct(load),
                          exp::FormatTailFrac(r.tail_frac_slo),
                          r.slo_violated ? "VIOLATED" : "yes",
                          exp::FormatPct(r.emu)});
        }
    }
    table.Print();

    std::printf(
        "\nOnly the coordinated dynamic controller gets both halves\n"
        "right: no SLO violations at any load *and* high utilization.\n");
    return 0;
}
