/**
 * @file
 * Running Heracles across a websearch fan-out cluster under a diurnal
 * load trace (a small version of the paper's Section 5.3 experiment).
 *
 * A root node fans each query to every leaf; the cluster SLO is the mean
 * root latency over 30-second windows with the target defined at 90%
 * load. Heracles on each leaf colocates brain or streetview while the
 * diurnal valley frees capacity.
 *
 * The assembly comes from the scenario catalog: the example composes
 * the registered cluster scenario's config (so it always matches what
 * the golden harness regresses) and only prints a richer time series.
 */
#include <cstdio>

#include "cluster/cluster.h"
#include "exp/reporting.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

using namespace heracles;

int
main()
{
    cluster::ClusterConfig cfg = scenarios::ClusterConfigFor(
        scenarios::MustFindScenario("cluster_websearch_heracles"));

    cluster::ClusterExperiment experiment(cfg);
    const sim::Duration target = experiment.MeasureTarget();
    std::printf("root latency target (mu/30s @ 90%% load): %s\n",
                sim::FormatDuration(target).c_str());
    std::printf("derived per-leaf tail target: %s\n\n",
                sim::FormatDuration(experiment.LeafTarget()).c_str());

    const cluster::ClusterResult r = experiment.Run();

    exp::PrintBanner("diurnal trace under Heracles");
    exp::Table table({"time", "load", "root latency (% SLO)", "EMU"});
    for (size_t i = 0; i < r.latency_frac.size(); ++i) {
        table.AddRow({exp::FormatDouble(
                          sim::ToSeconds(r.latency_frac.t[i]) / 60.0, 1) +
                          "min",
                      exp::FormatPct(r.load.v[i]),
                      exp::FormatPct(r.latency_frac.v[i]),
                      exp::FormatPct(r.emu.v[i])});
    }
    table.Print();

    std::printf("\nworst window: %s of SLO (%s), average EMU: %s\n",
                exp::FormatPct(r.worst_latency_frac).c_str(),
                r.slo_violated ? "VIOLATED" : "no violations",
                exp::FormatPct(r.avg_emu).c_str());
    return r.slo_violated ? 1 : 0;
}
