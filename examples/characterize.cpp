/**
 * @file
 * Characterizing a workload's interference sensitivity (a small version
 * of the paper's Figure 1 methodology, Section 3.2).
 *
 * Pins the LC workload to just enough cores for its SLO at each load,
 * runs one antagonist on the remaining cores, and reports tail latency
 * as a fraction of the SLO. Use this before trusting any colocation: if
 * a resource's row explodes, that resource needs an isolation mechanism.
 */
#include <cstdio>

#include "exp/characterization.h"
#include "exp/reporting.h"
#include "runner/pool.h"

using namespace heracles;

int
main()
{
    const hw::MachineConfig machine;
    const std::vector<double> loads = {0.2, 0.5, 0.8};
    const int jobs = runner::DefaultJobs();

    exp::CharacterizationRig rig(machine, workloads::MlCluster(),
                                 sim::Seconds(20), sim::Seconds(40));

    exp::PrintBanner("ml_cluster interference characterization "
                     "(tail as % of SLO)");

    std::vector<std::string> headers = {"antagonist"};
    for (double l : loads) headers.push_back(exp::FormatPct(l));
    exp::Table table(headers);

    for (const auto kind :
         {exp::AntagonistKind::kLlcMedium, exp::AntagonistKind::kLlcBig,
          exp::AntagonistKind::kDram, exp::AntagonistKind::kHyperThread,
          exp::AntagonistKind::kCpuPower, exp::AntagonistKind::kNetwork,
          exp::AntagonistKind::kBrainOsOnly}) {
        std::vector<std::string> row = {exp::AntagonistName(kind)};
        for (double cell : rig.RunRow(kind, loads, jobs)) {
            row.push_back(exp::FormatTailFrac(cell));
        }
        table.AddRow(std::move(row));
    }
    std::vector<std::string> base = {"(baseline)"};
    for (double cell : rig.RunBaselineRow(loads, jobs)) {
        base.push_back(exp::FormatTailFrac(cell));
    }
    table.AddRow(std::move(base));
    table.Print();

    std::printf(
        "\nml_cluster tolerates network antagonists but is destroyed by\n"
        "LLC/DRAM pressure — so a static or OS-only policy cannot \n"
        "colocate it safely, while Heracles can (see fig4_latency_slo).\n");
    return 0;
}
