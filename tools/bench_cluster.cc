/**
 * @file
 * Records the cluster epoch engine's throughput baseline as
 * BENCH_cluster.json (schema in docs/performance.md).
 *
 * One run executes a cluster scenario end to end (target-defining run
 * plus the colocated trace) twice — once with the leaf fan-out serial
 * (jobs=1) and once at --jobs — wall-clocking each pass and verifying
 * the two produce bit-identical results, which is the epoch engine's
 * core contract. The record carries the scenario's shape (leaves,
 * topology), its epoch/event counts, per-pass throughput
 * (epochs/s, aggregate leaf events/s) and the parallel speedup.
 *
 * Usage: bench_cluster [--scenario NAME] [--scale F] [--jobs N]
 *                      [--leaves N] [--out FILE]
 *   --scenario  cluster scenario to drive (default
 *               cluster_scale_rack_sharded, the 1024-leaf pod)
 *   --scale     time scale for the scenario's phases (default 1.0)
 *   --jobs      width of the parallel pass (default: hardware
 *               concurrency)
 *   --leaves    overrides the scenario's leaf count (scenarios that pin
 *               their shape with fixed_leaves ignore this)
 *   --out       output path (default BENCH_cluster.json)
 *
 * Exit codes: 0 recorded; 1 the two passes were not bit-identical
 * (a determinism regression — the record is still written, flagged);
 * 2 usage/IO error.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "cluster/cluster.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"
#include "sim/stats.h"

using namespace heracles;

namespace {

double
WallSeconds(const std::function<void()>& fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
SameSeries(const sim::TimeSeries& a, const sim::TimeSeries& b)
{
    return a.t == b.t && a.v == b.v;
}

/** Bit-exact equality of everything a cluster run reports. */
bool
SameResult(const cluster::ClusterResult& a, const cluster::ClusterResult& b)
{
    return SameSeries(a.latency_frac, b.latency_frac) &&
           SameSeries(a.emu, b.emu) && SameSeries(a.load, b.load) &&
           a.worst_latency_frac == b.worst_latency_frac &&
           a.slo_violated == b.slo_violated && a.avg_emu == b.avg_emu &&
           a.min_emu == b.min_emu && a.target == b.target &&
           a.leaf_target == b.leaf_target && a.polls == b.polls &&
           a.be_enables == b.be_enables &&
           a.be_disables == b.be_disables &&
           a.core_shrinks == b.core_shrinks &&
           a.actuations.set_cores == b.actuations.set_cores &&
           a.actuations.set_ways == b.actuations.set_ways &&
           a.actuations.set_freq_cap == b.actuations.set_freq_cap &&
           a.actuations.set_net_ceil == b.actuations.set_net_ceil &&
           a.be_placements == b.be_placements &&
           a.be_migrations == b.be_migrations &&
           a.invariant_violations == b.invariant_violations &&
           a.faulted_ops == b.faulted_ops && a.epochs == b.epochs &&
           a.leaf_events == b.leaf_events;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string scenario_name = "cluster_scale_rack_sharded";
    double scale = 1.0;
    int jobs = runner::DefaultJobs();
    int leaves = 0;
    std::string out_path = "BENCH_cluster.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scenario") && i + 1 < argc) {
            scenario_name = argv[++i];
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            // Strict parse (the heracles_sim convention): a typo like
            // "0.2x" or "o.2" must not silently become some other run.
            const char* v = argv[++i];
            char* end = nullptr;
            scale = std::strtod(v, &end);
            if (end == v || *end != '\0' || scale <= 0.0) {
                std::fprintf(
                    stderr,
                    "--scale wants a positive number, got '%s'\n", v);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
            jobs = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--leaves") && i + 1 < argc) {
            leaves = std::atoi(argv[++i]);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--scenario NAME] [--scale F] "
                         "[--jobs N] [--leaves N] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (scale <= 0.0 || jobs <= 0) {
        std::fprintf(stderr, "--scale and --jobs must be positive\n");
        return 2;
    }

    const scenarios::ScenarioSpec& spec =
        scenarios::MustFindScenario(scenario_name);
    scenarios::RunOptions opts;
    opts.time_scale = scale;
    if (leaves > 0) opts.cluster_leaves = leaves;

    cluster::ClusterConfig base = scenarios::ClusterConfigFor(spec, opts);
    const size_t leaf_count = base.leaf_specs.empty()
                                  ? static_cast<size_t>(base.leaves)
                                  : base.leaf_specs.size();

    const int widths[2] = {1, jobs};
    cluster::ClusterResult results[2];
    double wall[2] = {0.0, 0.0};
    for (int p = 0; p < 2; ++p) {
        cluster::ClusterConfig cfg = base;
        cfg.jobs = widths[p];
        cluster::ClusterExperiment experiment(std::move(cfg));
        wall[p] =
            WallSeconds([&] { results[p] = experiment.Run(); });
        std::fprintf(stderr,
                     "jobs=%d: %.2fs wall, %llu epochs, %llu leaf "
                     "events\n",
                     widths[p], wall[p],
                     static_cast<unsigned long long>(results[p].epochs),
                     static_cast<unsigned long long>(
                         results[p].leaf_events));
    }
    const bool identical = SameResult(results[0], results[1]);
    if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM REGRESSION: jobs=1 and jobs=%d "
                     "disagree\n",
                     jobs);
    }

    std::string runs_json;
    for (int p = 0; p < 2; ++p) {
        char run[256];
        std::snprintf(
            run, sizeof run,
            "    {\n"
            "      \"jobs\": %d,\n"
            "      \"wall_s\": %.3f,\n"
            "      \"epochs_per_sec\": %.4f,\n"
            "      \"events_per_sec\": %.0f\n"
            "    }%s\n",
            widths[p], wall[p],
            static_cast<double>(results[p].epochs) / wall[p],
            static_cast<double>(results[p].leaf_events) / wall[p],
            p == 0 ? "," : "");
        runs_json += run;
    }

    char head[1024];
    std::snprintf(
        head, sizeof head,
        "{\n"
        "  \"bench\": \"cluster_epoch\",\n"
        "  \"scenario\": \"%s\",\n"
        "  \"scale\": %.3f,\n"
        "  \"leaves\": %zu,\n"
        "  \"topology\": \"%s\",\n"
        "  \"epochs\": %llu,\n"
        "  \"leaf_events\": %llu,\n"
        "  \"runs\": [\n",
        scenario_name.c_str(), scale, leaf_count,
        cluster::TopologyKindName(base.topology).c_str(),
        static_cast<unsigned long long>(results[0].epochs),
        static_cast<unsigned long long>(results[0].leaf_events));

    char tail[256];
    std::snprintf(tail, sizeof tail,
                  "  ],\n"
                  "  \"speedup\": %.3f,\n"
                  "  \"bit_identical\": %s\n"
                  "}\n",
                  wall[1] > 0.0 ? wall[0] / wall[1] : 0.0,
                  identical ? "true" : "false");

    const std::string json = std::string(head) + runs_json + tail;
    std::fputs(json.c_str(), stdout);
    if (FILE* f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
    }
    return identical ? 0 : 1;
}
