// Calibration utility: baseline (no colocation) tail latency across loads
// for the three LC workloads. Used to tune peak_qps so that 100% load
// approaches but meets the SLO, matching the paper's baseline curves.
#include <cstdio>
#include "exp/experiment.h"
using namespace heracles;
int main() {
    for (const auto& lc : workloads::AllLcWorkloads()) {
        exp::ExperimentConfig cfg;
        cfg.lc = lc;
        cfg.policy = exp::PolicyKind::kNoColocation;
        cfg.warmup = sim::Seconds(30);
        cfg.measure = sim::Seconds(60);
        exp::Experiment e(cfg);
        std::printf("%s (SLO %.2fms @p%.0f):\n", lc.name.c_str(),
                    sim::ToMillis(lc.slo_latency), lc.slo_percentile * 100);
        for (double load : {0.05, 0.25, 0.5, 0.75, 0.9, 1.0}) {
            auto r = e.RunAt(load);
            std::printf("  load %3.0f%%: p-tail %8.3fms  (%5.1f%% of SLO)  served %4.0f%%  cpu %4.0f%%  dram %4.0f%%  pw %4.0f%%\n",
                        load * 100, sim::ToMillis(r.worst_tail),
                        r.tail_frac_slo * 100, r.lc_throughput * 100,
                        r.telemetry.cpu_utilization * 100,
                        r.telemetry.dram_frac * 100,
                        r.telemetry.power_frac_tdp * 100);
        }
    }
    return 0;
}
