/**
 * @file
 * Records the simulation-core performance baseline as BENCH_sim_core.json.
 *
 * One run produces the whole record (schema in docs/performance.md):
 *  - the full scenario catalog end to end (`--scenario all` semantics) at
 *    --scale on one worker thread, wall-clocked per catalog (with the
 *    top-5 slowest scenarios recorded individually) and checked for
 *    unexpected SLO violations;
 *  - the event-queue microbench on both the pooled production queue and
 *    the embedded legacy (pre-pool) implementation, with allocs/event;
 *  - the streaming-tail stats microbench;
 *  - the machine-arbitration microbench: one colocated server under a
 *    controller-like actuation cadence, run with the incremental
 *    resolver and with the retained naive full-resolve reference, so
 *    the record shows events/sec and (full) resolves/event for both.
 *
 * Usage: bench_record [--scale F] [--events N] [--out FILE]
 *   --scale   time scale for the catalog pass (default 1.0 = full phases;
 *             CI smoke runs use a small fraction)
 *   --events  total fires per queue implementation (default 2000000)
 *   --out     output path (default BENCH_sim_core.json)
 *
 * The violation verdict is shared with heracles_sim: the abrupt
 * step/flash scenarios violate transiently once the run is long enough
 * for the reactive controller to be caught fully grown
 * (ScenarioSpec::expect_violation_at_scale), so those are *expected* at
 * full scale and the record's unexpected_slo_violations counts only
 * genuine regressions — CI asserts zero at smoke scale and the full-
 * scale record now pins zero too.
 *
 * Exit codes: 0 recorded; 1 pooled queue not faster than legacy;
 * 2 usage/IO error.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"
#include "sim/random.h"
#include "sim_core_bench.h"
#include "workloads/antagonists.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"
#include "workloads/lc_configs.h"

HERACLES_BENCH_DEFINE_ALLOC_COUNTER()

using namespace heracles;

namespace {

/** One machine-arbitration churn measurement. */
struct ArbRun {
    double wall_s = 0.0;
    uint64_t events = 0;      ///< Queue events fired during the run.
    uint64_t resolves = 0;    ///< Machine::resolves() at the end.
    uint64_t recomputes = 0;  ///< Machine::demand_recomputes() at the end.
};

/**
 * Drives one colocated server (websearch LC + brain BE) through a
 * seeded controller-like churn of actuations and utilization reads —
 * the same op mix tests/machine_equivalence_test.cc pins bit-identical
 * across resolver modes — and reports events/sec plus how many resolves
 * ran the full LLC/DRAM/NIC demand pipeline. With @p naive the machine
 * uses the retained eager full-recompute resolver, so the two runs
 * bracket exactly what incremental arbitration saves.
 */
ArbRun
RunArbitrationChurn(bool naive, int steps)
{
    sim::EventQueue queue;
    hw::MachineConfig cfg;
    cfg.seed = 20260809;
    hw::Machine machine(cfg, queue);
    machine.SetNaiveArbitration(naive);
    workloads::LcApp lc(machine, workloads::Websearch(), /*seed=*/7);
    workloads::BeTask be(machine, workloads::Brain());
    platform::SimPlatform plat(machine, lc, &be);
    plat.ApplyInitialPlacement();
    lc.SetLoad(0.7);
    lc.Start();

    sim::Rng churn(4242);
    const int total_cores = cfg.TotalCores();
    const int total_ways = cfg.llc_ways;
    ArbRun r;
    r.wall_s = bench::WallSeconds([&] {
        for (int step = 0; step < steps; ++step) {
            switch (churn.UniformInt(6)) {
            case 0:
                plat.SetBeCores(
                    static_cast<int>(churn.UniformInt(total_cores)));
                break;
            case 1:
                plat.SetBeWays(
                    static_cast<int>(churn.UniformInt(total_ways)));
                break;
            case 2:
                plat.SetBeFreqCapGhz(
                    churn.Uniform(cfg.min_ghz, cfg.turbo_1c_ghz));
                break;
            case 3:
                plat.SetBeNetCeilGbps(
                    churn.Bernoulli(0.3)
                        ? -1.0
                        : churn.Uniform(0.5, cfg.nic_gbps));
                break;
            case 4:
                be.SetDemandScale(churn.Uniform(0.2, 1.5));
                break;
            default:
                (void)plat.LcCpuUtilization();
                break;
            }
            queue.RunFor(
                sim::Millis(1 + static_cast<int>(churn.UniformInt(400))));
        }
    });
    r.events = queue.executed();
    r.resolves = machine.resolves();
    r.recomputes = machine.demand_recomputes();
    return r;
}

std::string
ArbRunJson(const char* key, const ArbRun& r)
{
    const double ev = static_cast<double>(r.events);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    \"%s\": {\n"
        "      \"wall_s\": %.3f,\n"
        "      \"events\": %llu,\n"
        "      \"events_per_sec\": %.0f,\n"
        "      \"resolves_per_event\": %.4f,\n"
        "      \"full_resolves_per_event\": %.4f\n"
        "    }",
        key, r.wall_s, static_cast<unsigned long long>(r.events),
        ev / (r.wall_s > 0 ? r.wall_s : 1e-9),
        static_cast<double>(r.resolves) / (ev > 0 ? ev : 1),
        static_cast<double>(r.recomputes) / (ev > 0 ? ev : 1));
    return buf;
}

}  // namespace

int
main(int argc, char** argv)
{
    double scale = 1.0;
    uint64_t events = 2000000;
    std::string out_path = "BENCH_sim_core.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--events") && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--scale F] [--events N] [--out FILE]\n",
                argv[0]);
            return 2;
        }
    }
    if (scale <= 0.0) {
        std::fprintf(stderr, "--scale must be positive\n");
        return 2;
    }

    // --- Catalog pass: every scenario, serial, wall-clocked -------------
    const auto& specs = scenarios::AllScenarios();
    scenarios::RunOptions opts;
    opts.time_scale = scale;
    // Serial per-spec loop instead of one RunScenarios() call: identical
    // results in identical order (RunScenarios at jobs=1 is this loop),
    // but each scenario gets its own wall clock so the record can name
    // the slowest ones — the first question anyone asks of a perf diff.
    std::vector<scenarios::ScenarioMetrics> results;
    results.reserve(specs.size());
    std::vector<double> scenario_wall(specs.size(), 0.0);
    const double catalog_s = bench::WallSeconds([&] {
        for (size_t i = 0; i < specs.size(); ++i) {
            scenario_wall[i] = bench::WallSeconds([&] {
                results.push_back(scenarios::RunScenario(specs[i], opts));
            });
        }
    });
    // Both the count and the offending names go into the record: a
    // reader of the JSON (CI, or a human diffing two baselines) should
    // not need the run's stderr to know *which* scenarios regressed.
    std::vector<std::string> violating;
    for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].slo_attained == 0.0 &&
            !scenarios::ViolationExpected(specs[i], scale)) {
            std::fprintf(stderr, "unexpected SLO violation: %s\n",
                         results[i].scenario.c_str());
            violating.push_back(results[i].scenario);
        }
    }
    const int violations = static_cast<int>(violating.size());
    std::string violating_json = "[";
    for (size_t i = 0; i < violating.size(); ++i) {
        violating_json += (i > 0 ? ", \"" : "\"") + violating[i] + "\"";
    }
    violating_json += "]";

    // Top-5 slowest scenarios by wall time (all of them if fewer).
    std::vector<size_t> by_wall(specs.size());
    std::iota(by_wall.begin(), by_wall.end(), size_t{0});
    std::stable_sort(by_wall.begin(), by_wall.end(),
                     [&](size_t a, size_t b) {
                         return scenario_wall[a] > scenario_wall[b];
                     });
    if (by_wall.size() > 5) by_wall.resize(5);
    std::string slowest_json = "[";
    for (size_t i = 0; i < by_wall.size(); ++i) {
        char item[256];
        std::snprintf(item, sizeof item,
                      "%s\n      {\"scenario\": \"%s\", \"wall_s\": %.3f}",
                      i > 0 ? "," : "", specs[by_wall[i]].name.c_str(),
                      scenario_wall[by_wall[i]]);
        slowest_json += item;
    }
    slowest_json += by_wall.empty() ? "]" : "\n    ]";

    // --- Scheduler-ablation summary --------------------------------------
    // The policy families the catalog already ran on identical seeds
    // and traces, reduced to what a reader diffs first: EMU and the
    // SLO outcome per policy, plus the monitor run's would-have
    // counters. Pure reporting over `results` — no extra runs.
    const auto metric_of =
        [&](const std::string& name) -> const scenarios::ScenarioMetrics* {
        for (const auto& r : results) {
            if (r.scenario == name) return &r;
        }
        return nullptr;
    };
    const auto policy_item = [&](const char* key,
                                 const std::string& name) {
        char buf[256];
        if (const scenarios::ScenarioMetrics* m = metric_of(name)) {
            std::snprintf(buf, sizeof buf,
                          "      \"%s\": {\"emu\": %.4f, \"min_emu\": "
                          "%.4f, \"slo_attained\": %.0f}",
                          key, m->emu, m->min_emu, m->slo_attained);
        } else {
            std::snprintf(buf, sizeof buf, "      \"%s\": null", key);
        }
        return std::string(buf);
    };
    std::string sched_json = "  \"scheduler_ablation\": {\n";
    sched_json += "    \"hetero_diurnal\": {\n";
    sched_json += policy_item("static", "cluster_hetero_static") + ",\n";
    sched_json +=
        policy_item("greedy", "cluster_hetero_greedy_diurnal") + ",\n";
    sched_json +=
        policy_item("predictive", "cluster_hetero_pred_diurnal") + "\n";
    sched_json += "    },\n    \"hetero_flashcrowd\": {\n";
    sched_json +=
        policy_item("greedy", "cluster_hetero_greedy_flashcrowd") + ",\n";
    sched_json +=
        policy_item("round_robin", "cluster_hetero_rr_flashcrowd") +
        ",\n";
    sched_json +=
        policy_item("predictive", "cluster_hetero_pred_flashcrowd") +
        "\n";
    sched_json += "    },\n    \"chaos_leaf_crash\": {\n";
    sched_json += policy_item("greedy", "chaos_cluster_leaf_crash") + ",\n";
    sched_json +=
        policy_item("predictive", "chaos_cluster_leaf_crash_pred") + "\n";
    sched_json += "    },\n    \"chaos_blind_sched\": {\n";
    sched_json +=
        policy_item("greedy", "chaos_cluster_blind_sched") + ",\n";
    sched_json +=
        policy_item("predictive", "chaos_cluster_blind_sched_pred") +
        "\n";
    sched_json += "    },\n";
    {
        const scenarios::ScenarioMetrics* m =
            metric_of("cluster_hetero_pred_monitor");
        char buf[256];
        if (m != nullptr) {
            std::snprintf(buf, sizeof buf,
                          "    \"monitor\": {\"would_placements\": %.0f, "
                          "\"would_migrations\": %.0f}\n",
                          m->be_would_placements, m->be_would_migrations);
        } else {
            std::snprintf(buf, sizeof buf, "    \"monitor\": null\n");
        }
        sched_json += buf;
    }
    sched_json += "  },\n";

    // --- Microbenches ----------------------------------------------------
    bench::RunEventQueueChurn<sim::EventQueue>(events / 20);  // warmup
    bench::RunEventQueueChurn<bench::LegacyEventQueue>(events / 20);
    const auto pooled =
        bench::RunEventQueueChurn<sim::EventQueue>(events);
    const auto legacy =
        bench::RunEventQueueChurn<bench::LegacyEventQueue>(events);
    const auto stats = bench::RunStatsStreaming(events);

    // Machine-arbitration microbench: the retained naive resolver first
    // (it doubles as warmup), then the incremental production path.
    const int arb_steps = 600;
    const ArbRun arb_naive = RunArbitrationChurn(/*naive=*/true, arb_steps);
    const ArbRun arb_inc = RunArbitrationChurn(/*naive=*/false, arb_steps);
    const std::string arb_json =
        std::string("  \"machine_arbitration\": {\n") +
        ArbRunJson("naive", arb_naive) + ",\n" +
        ArbRunJson("incremental", arb_inc) + ",\n" +
        [&] {
            char tail[256];
            std::snprintf(
                tail, sizeof tail,
                "    \"events_per_sec_ratio\": %.2f,\n"
                "    \"full_resolve_reduction\": %.1f\n"
                "  }",
                (static_cast<double>(arb_inc.events) /
                 (arb_inc.wall_s > 0 ? arb_inc.wall_s : 1e-9)) /
                    (static_cast<double>(arb_naive.events) /
                         (arb_naive.wall_s > 0 ? arb_naive.wall_s : 1e-9)),
                static_cast<double>(arb_naive.recomputes) /
                    (arb_inc.recomputes > 0 ? arb_inc.recomputes : 1));
            return std::string(tail);
        }();

    char head[2048];
    std::snprintf(head, sizeof head,
                  "{\n"
                  "  \"bench\": \"sim_core\",\n"
                  "  \"scenarios\": {\n"
                  "    \"count\": %zu,\n"
                  "    \"scale\": %.3f,\n"
                  "    \"jobs\": 1,\n"
                  "    \"wall_s\": %.3f,\n"
                  "    \"unexpected_slo_violations\": %d,\n"
                  "    \"violating_scenarios\": %s,\n"
                  "    \"slowest\": %s\n"
                  "  },\n",
                  results.size(), scale, catalog_s, violations,
                  violating_json.c_str(), slowest_json.c_str());

    const std::string json = std::string(head) + sched_json +
                             bench::CoreBenchJson(pooled, legacy, stats) +
                             ",\n" + arb_json + "\n}\n";

    std::fputs(json.c_str(), stdout);
    if (FILE* f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
    }
    return pooled.per_sec > legacy.per_sec ? 0 : 1;
}
