/**
 * @file
 * Records the simulation-core performance baseline as BENCH_sim_core.json.
 *
 * One run produces the whole record (schema in docs/performance.md):
 *  - the full scenario catalog end to end (`--scenario all` semantics) at
 *    --scale on one worker thread, wall-clocked per catalog and checked
 *    for unexpected SLO violations;
 *  - the event-queue microbench on both the pooled production queue and
 *    the embedded legacy (pre-pool) implementation, with allocs/event;
 *  - the streaming-tail stats microbench.
 *
 * Usage: bench_record [--scale F] [--events N] [--out FILE]
 *   --scale   time scale for the catalog pass (default 1.0 = full phases;
 *             CI smoke runs use a small fraction)
 *   --events  total fires per queue implementation (default 2000000)
 *   --out     output path (default BENCH_sim_core.json)
 *
 * Unexpected SLO violations are recorded (and warned about) but do not
 * fail the run: at full scale the step/flash-crowd scenarios violate
 * transiently during their load spikes — pre-existing behavior pinned
 * bit-identically by the golden harness at reduced scale — and a perf
 * record must capture the catalog as it is. CI asserts the count is
 * zero at smoke scale, where a nonzero value is a correctness alarm.
 *
 * Exit codes: 0 recorded; 1 pooled queue not faster than legacy;
 * 2 usage/IO error.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "scenarios/registry.h"
#include "scenarios/runner.h"
#include "sim_core_bench.h"

HERACLES_BENCH_DEFINE_ALLOC_COUNTER()

using namespace heracles;

int
main(int argc, char** argv)
{
    double scale = 1.0;
    uint64_t events = 2000000;
    std::string out_path = "BENCH_sim_core.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--events") && i + 1 < argc) {
            events = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--scale F] [--events N] [--out FILE]\n",
                argv[0]);
            return 2;
        }
    }
    if (scale <= 0.0) {
        std::fprintf(stderr, "--scale must be positive\n");
        return 2;
    }

    // --- Catalog pass: every scenario, serial, wall-clocked -------------
    const auto& specs = scenarios::AllScenarios();
    scenarios::RunOptions opts;
    opts.time_scale = scale;
    std::vector<scenarios::ScenarioMetrics> results;
    const double catalog_s = bench::WallSeconds([&] {
        results = scenarios::RunScenarios(specs, opts, /*jobs=*/1);
    });
    // Both the count and the offending names go into the record: a
    // reader of the JSON (CI, or a human diffing two baselines) should
    // not need the run's stderr to know *which* scenarios regressed.
    std::vector<std::string> violating;
    for (size_t i = 0; i < results.size(); ++i) {
        if (results[i].slo_attained == 0.0 &&
            !specs[i].expect_slo_violation) {
            std::fprintf(stderr, "unexpected SLO violation: %s\n",
                         results[i].scenario.c_str());
            violating.push_back(results[i].scenario);
        }
    }
    const int violations = static_cast<int>(violating.size());
    std::string violating_json = "[";
    for (size_t i = 0; i < violating.size(); ++i) {
        violating_json += (i > 0 ? ", \"" : "\"") + violating[i] + "\"";
    }
    violating_json += "]";

    // --- Microbenches ----------------------------------------------------
    bench::RunEventQueueChurn<sim::EventQueue>(events / 20);  // warmup
    bench::RunEventQueueChurn<bench::LegacyEventQueue>(events / 20);
    const auto pooled =
        bench::RunEventQueueChurn<sim::EventQueue>(events);
    const auto legacy =
        bench::RunEventQueueChurn<bench::LegacyEventQueue>(events);
    const auto stats = bench::RunStatsStreaming(events);

    char head[1024];
    std::snprintf(head, sizeof head,
                  "{\n"
                  "  \"bench\": \"sim_core\",\n"
                  "  \"scenarios\": {\n"
                  "    \"count\": %zu,\n"
                  "    \"scale\": %.3f,\n"
                  "    \"jobs\": 1,\n"
                  "    \"wall_s\": %.3f,\n"
                  "    \"unexpected_slo_violations\": %d,\n"
                  "    \"violating_scenarios\": %s\n"
                  "  },\n",
                  results.size(), scale, catalog_s, violations,
                  violating_json.c_str());

    const std::string json = std::string(head) +
                             bench::CoreBenchJson(pooled, legacy, stats) +
                             "\n}\n";

    std::fputs(json.c_str(), stdout);
    if (FILE* f = std::fopen(out_path.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 2;
    }
    return pooled.per_sec > legacy.per_sec ? 0 : 1;
}
