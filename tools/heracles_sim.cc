/**
 * @file
 * Command-line runner: colocate any LC workload with any BE job under
 * any policy at any load, and print the outcome.
 *
 * Usage:
 *   heracles_sim [--lc websearch|ml_cluster|memkeyval]
 *                [--be brain|streetview|stream-dram|stream-llc|
 *                      stream-llc-small|stream-llc-big|cpu_pwr|iperf|
 *                      spinloop|none]
 *                [--policy heracles|baseline|os-only|static]
 *                [--load 0.5] [--warmup-s 150] [--measure-s 120]
 *                [--seed 1]
 *                [--sweep 0.1,0.3,0.5|paper] [--jobs N]
 *                [--list-scenarios] [--scenario NAME|all]
 *                [--scale F] [--json] [--faults SPEC]
 *                [--cluster-jobs N] [--cluster-leaf-batch N]
 *                [--cluster-policy static-split|greedy-slack|
 *                                  round-robin|predictive]
 *
 * --cluster-policy overrides a cluster scenario's BE scheduling policy
 * for one run — the command-line form of the scheduler ablation family
 * (requires a scenario with cluster-wide be_jobs; static-split also
 * needs a leaf_mix to pin jobs against).
 *
 * With --sweep, runs every listed load (or the paper's 5%..95% grid)
 * instead of a single point, fanning the independent load points across
 * --jobs worker threads (default: hardware concurrency). Parallel
 * results are bit-identical to --jobs 1.
 *
 * --cluster-jobs sets how many worker threads a cluster scenario's
 * epoch engine fans its leaves across per barrier interval (metrics are
 * bit-identical for every value). Default: hardware concurrency for a
 * single cluster scenario, 1 for --scenario all (where --jobs already
 * parallelizes across scenarios). --cluster-leaf-batch pins how many
 * leaves the engine steps per worker task (default: automatic — 8 at
 * 64+ leaves, else 1); like --cluster-jobs it cannot change metrics,
 * only wall time.
 *
 * Scenario mode composes from the catalog (src/scenarios/registry.cc)
 * instead of the ad-hoc flags: --list-scenarios prints the catalog,
 * --scenario NAME runs one end-to-end scenario (--scale shrinks its
 * phases, --seed makes any run reproducible from the command line,
 * --json emits the canonical metrics record), and --scenario all fans
 * the whole catalog across --jobs threads.
 *
 * --faults overlays a deterministic fault-injection plan (chaos layer)
 * on a single --scenario run, e.g.
 *
 *   --faults "drop:cores@0.3-0.6,noise:tail*0.2@0.1-0.9"
 *
 * with windows as fractions of the run; see src/chaos/fault_plan.h for
 * the clause grammar. The run reports the degraded metrics plus the
 * invariant checker's verdict.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "runner/pool.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"
#include "sim/log.h"

using namespace heracles;

namespace {

[[noreturn]] void
Usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--lc NAME] [--be NAME|none] "
                 "[--policy NAME] [--load F] [--warmup-s S] "
                 "[--measure-s S] [--seed N] "
                 "[--sweep F,F,...|paper] [--jobs N] "
                 "[--list-scenarios] [--scenario NAME|all] "
                 "[--scale F] [--json] [--faults SPEC] "
                 "[--cluster-jobs N] [--cluster-leaf-batch N] "
                 "[--cluster-policy NAME]\n",
                 argv0);
    std::exit(2);
}

/** Prints the scenario catalog as a table. */
void
ListScenarios()
{
    exp::Table table({"name", "topology", "lc", "be", "policy", "trace",
                      "load", "description"});
    for (const auto& s : scenarios::AllScenarios()) {
        char load[32];
        if (s.trace == scenarios::TraceKind::kConstant) {
            std::snprintf(load, sizeof load, "%.0f%%", s.load * 100);
        } else {
            std::snprintf(load, sizeof load, "%.0f-%.0f%%", s.load * 100,
                          s.load_high * 100);
        }
        table.AddRow({s.name, scenarios::TopologyName(s.topology), s.lc,
                      s.be, exp::PolicyName(s.policy),
                      scenarios::TraceKindName(s.trace), load,
                      s.description});
    }
    table.Print();
}

/** Prints one metrics record as a readable two-column table. */
void
PrintMetrics(const scenarios::ScenarioMetrics& m)
{
    std::printf("scenario %s:\n", m.scenario.c_str());
    exp::Table table({"metric", "value"});
    for (const auto& [key, value] : m.Kv()) {
        table.AddRow({key, exp::FormatDouble(value, 4)});
    }
    table.Print();
}

/** True when the run's SLO outcome is a problem (violations are fine —
 *  expected, even — for ablation scenarios like os-only, and for the
 *  abrupt step/flash scenarios once the run is long enough that the
 *  reactive controller physically cannot win; see
 *  ScenarioSpec::expect_violation_at_scale). */
bool
UnexpectedViolation(const scenarios::ScenarioSpec& spec,
                    const scenarios::ScenarioMetrics& m,
                    double time_scale)
{
    return m.slo_attained == 0.0 &&
           !scenarios::ViolationExpected(spec, time_scale);
}

/**
 * A metrics record as JSON with the run's unexpected-violation verdict
 * appended as a top-level key — the same count the perf record tracks
 * (docs/performance.md), visible at any --scale. Reporting only: the
 * metrics themselves (and the golden baselines) are unchanged.
 */
std::string
MetricsJsonWithVerdict(const scenarios::ScenarioMetrics& m, int unexpected)
{
    std::string one = scenarios::MetricsToJson(m);
    // MetricsToJson ends "...\n  }\n}\n"; splice before the final '}'.
    // A format drift must fail loudly here, not silently drop the key
    // CI asserts on.
    const std::string tail = "}\n}\n";
    HERACLES_CHECK_MSG(
        one.size() >= tail.size() &&
            one.compare(one.size() - tail.size(), tail.size(), tail) == 0,
        "MetricsToJson layout changed; update MetricsJsonWithVerdict");
    one.resize(one.size() - 3);  // keep "...}\n  }"
    one += ",\n  \"unexpected_slo_violations\": " +
           std::to_string(unexpected) + "\n}\n";
    return one;
}

/**
 * Parses a --cluster-policy value; prints an error and returns false on
 * an unknown name.
 */
bool
ParseClusterPolicy(const std::string& name, cluster::SchedulerPolicy* out)
{
    if (name == "static-split") {
        *out = cluster::SchedulerPolicy::kStaticSplit;
    } else if (name == "greedy-slack") {
        *out = cluster::SchedulerPolicy::kGreedySlack;
    } else if (name == "round-robin") {
        *out = cluster::SchedulerPolicy::kRoundRobin;
    } else if (name == "predictive") {
        *out = cluster::SchedulerPolicy::kPredictive;
    } else {
        std::fprintf(stderr,
                     "error: unknown --cluster-policy '%s' (want "
                     "static-split|greedy-slack|round-robin|"
                     "predictive)\n",
                     name.c_str());
        return false;
    }
    return true;
}

/** Runs --scenario NAME|all; returns the process exit code. */
int
RunScenarioMode(const std::string& name, const scenarios::RunOptions& opts,
                int jobs, bool json, const chaos::FaultPlan* faults,
                const std::string& cluster_policy)
{
    if (name == "all") {
        if (faults != nullptr) {
            std::fprintf(stderr,
                         "--faults applies to a single --scenario run, "
                         "not to 'all'\n");
            return 2;
        }
        if (!cluster_policy.empty()) {
            std::fprintf(stderr,
                         "--cluster-policy applies to a single "
                         "--scenario run, not to 'all'\n");
            return 2;
        }
        const auto& specs = scenarios::AllScenarios();
        const auto results = scenarios::RunScenarios(specs, opts, jobs);
        std::vector<std::string> violating;
        for (size_t i = 0; i < results.size(); ++i) {
            if (UnexpectedViolation(specs[i], results[i],
                                    opts.time_scale)) {
                violating.push_back(results[i].scenario);
            }
        }
        const int unexpected = static_cast<int>(violating.size());
        if (json) {
            // One JSON document: the per-scenario records plus the
            // catalog-level violation verdict — count *and* the
            // offending names (same layout as bench_record), so a
            // reader of the JSON never needs the run's stderr to know
            // which scenarios regressed.
            std::printf("{\n\"scenarios\": [\n");
            for (size_t i = 0; i < results.size(); ++i) {
                std::string one = scenarios::MetricsToJson(results[i]);
                if (!one.empty() && one.back() == '\n') one.pop_back();
                std::printf("%s%s\n", one.c_str(),
                            i + 1 < results.size() ? "," : "");
            }
            std::string violating_json = "[";
            for (size_t i = 0; i < violating.size(); ++i) {
                violating_json +=
                    (i > 0 ? ", \"" : "\"") + violating[i] + "\"";
            }
            violating_json += "]";
            std::printf("],\n\"unexpected_slo_violations\": %d,\n"
                        "\"violating_scenarios\": %s\n}\n",
                        unexpected, violating_json.c_str());
        } else {
            exp::Table table({"scenario", "tail (% target)", "SLO ok",
                              "EMU", "BE disables"});
            for (size_t i = 0; i < results.size(); ++i) {
                const auto& m = results[i];
                table.AddRow(
                    {m.scenario, exp::FormatTailFrac(m.tail_frac_slo),
                     m.slo_attained > 0.0
                         ? "yes"
                         : (scenarios::ViolationExpected(specs[i],
                                                         opts.time_scale)
                                ? "violated (expected)"
                                : "VIOLATED"),
                     exp::FormatPct(m.emu),
                     exp::FormatDouble(m.be_disables, 0)});
            }
            table.Print();
        }
        return unexpected > 0 ? 1 : 0;
    }

    const scenarios::ScenarioSpec* found = scenarios::FindScenario(name);
    if (found == nullptr) {
        std::fprintf(stderr,
                     "unknown scenario: %s (try --list-scenarios)\n",
                     name.c_str());
        return 2;
    }
    scenarios::ScenarioSpec spec = *found;
    if (faults != nullptr) {
        // Cluster-layer faults on a single-server scenario would be
        // silently dropped at resolution — the user would believe they
        // measured a degraded run that never degraded.
        if (spec.topology == scenarios::Topology::kSingleServer) {
            for (const chaos::FaultSpec& f : faults->faults) {
                if (f.kind == chaos::FaultKind::kLeafCrash ||
                    f.kind == chaos::FaultKind::kSlackFreeze) {
                    std::fprintf(
                        stderr,
                        "error: --faults clause '%s:leaf%d' needs a "
                        "cluster scenario; %s is single-server\n",
                        chaos::FaultKindName(f.kind).c_str(), f.leaf,
                        spec.name.c_str());
                    return 2;
                }
            }
        }
        // The command-line plan replaces the cataloged one, and any SLO
        // outcome under ad-hoc degradation is acceptable — the run's
        // verdict is the invariant count in the metrics record.
        spec.faults = *faults;
        spec.expect_slo_violation = true;
    }
    if (!cluster_policy.empty()) {
        cluster::SchedulerPolicy policy;
        if (!ParseClusterPolicy(cluster_policy, &policy)) return 2;
        // The override only makes sense where a scheduler actually has
        // decisions to make: a cluster scenario with a cluster-wide BE
        // job queue. Silently accepting it elsewhere would report a
        // "policy ablation" that never ran one.
        if (spec.topology != scenarios::Topology::kCluster) {
            std::fprintf(stderr,
                         "error: --cluster-policy needs a cluster "
                         "scenario; %s is single-server\n",
                         spec.name.c_str());
            return 2;
        }
        if (spec.be_jobs.empty()) {
            std::fprintf(stderr,
                         "error: --cluster-policy needs a scenario with "
                         "cluster-wide be_jobs; %s pins its BE work at "
                         "assembly\n",
                         spec.name.c_str());
            return 2;
        }
        if (policy == cluster::SchedulerPolicy::kStaticSplit &&
            spec.leaf_mix.empty()) {
            std::fprintf(stderr,
                         "error: static-split needs a leaf_mix to pin "
                         "jobs against; %s has none\n",
                         spec.name.c_str());
            return 2;
        }
        spec.scheduler = policy;
        // The flag fully determines the scheduler arm — a monitor-mode
        // scenario overridden to any explicit policy runs that policy
        // for real.
        spec.predict_only = false;
    }
    const auto m = scenarios::RunScenario(spec, opts);
    const bool unexpected = UnexpectedViolation(spec, m, opts.time_scale);
    if (json) {
        std::fputs(MetricsJsonWithVerdict(m, unexpected ? 1 : 0).c_str(),
                   stdout);
    } else {
        PrintMetrics(m);
    }
    return unexpected ? 1 : 0;
}

/** Parses "0.1,0.3,0.5" (or "paper") into load fractions. */
std::vector<double>
ParseSweep(const char* argv0, const std::string& spec)
{
    if (spec == "paper") return exp::Experiment::PaperLoads(0.05);
    std::vector<double> loads;
    size_t pos = 0;
    while (pos < spec.size()) {
        char* end = nullptr;
        const double l = std::strtod(spec.c_str() + pos, &end);
        const size_t used = end - (spec.c_str() + pos);
        if (used == 0 || l <= 0.0 || l > 1.0) Usage(argv0);
        loads.push_back(l);
        pos += used;
        if (pos < spec.size()) {
            if (spec[pos] != ',') Usage(argv0);
            ++pos;
        }
    }
    if (loads.empty()) Usage(argv0);
    return loads;
}

exp::PolicyKind
ParsePolicy(const std::string& name)
{
    if (name == "heracles") return exp::PolicyKind::kHeracles;
    if (name == "baseline") return exp::PolicyKind::kNoColocation;
    if (name == "os-only") return exp::PolicyKind::kOsOnly;
    if (name == "static") return exp::PolicyKind::kStaticPartition;
    std::fprintf(stderr, "unknown policy: %s\n", name.c_str());
    std::exit(2);
}

workloads::LcParams
ParseLc(const std::string& name)
{
    for (const auto& p : workloads::AllLcWorkloads()) {
        if (p.name == name) return p;
    }
    std::fprintf(stderr, "unknown LC workload: %s\n", name.c_str());
    std::exit(2);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string lc_name = "websearch";
    std::string be_name = "brain";
    std::string policy_name = "heracles";
    double load = 0.5;
    double warmup_s = 150.0, measure_s = 120.0;
    uint64_t seed = 1;
    bool seed_given = false;
    bool adhoc_given = false;  // any --lc/--be/--policy/--load/... flag
    std::string sweep_spec;
    std::string scenario_name;
    std::string faults_spec;
    bool faults_given = false;
    double scale = 1.0;
    bool scale_given = false;
    bool json = false;
    int jobs = runner::DefaultJobs();
    int cluster_jobs = 0;
    bool cluster_jobs_given = false;
    int cluster_leaf_batch = 0;
    bool cluster_leaf_batch_given = false;
    std::string cluster_policy;

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) Usage(argv[0]);
            return argv[++i];
        };
        auto adhoc_next = [&]() -> const char* {
            adhoc_given = true;
            return next();
        };
        if (!std::strcmp(argv[i], "--lc")) {
            lc_name = adhoc_next();
        } else if (!std::strcmp(argv[i], "--be")) {
            be_name = adhoc_next();
        } else if (!std::strcmp(argv[i], "--policy")) {
            policy_name = adhoc_next();
        } else if (!std::strcmp(argv[i], "--load")) {
            load = std::atof(adhoc_next());
        } else if (!std::strcmp(argv[i], "--warmup-s")) {
            warmup_s = std::atof(adhoc_next());
        } else if (!std::strcmp(argv[i], "--measure-s")) {
            measure_s = std::atof(adhoc_next());
        } else if (!std::strcmp(argv[i], "--seed")) {
            // Garbage must not silently become seed 0 — the run would
            // "reproduce" something the user never asked for.
            const char* v = next();
            char* end = nullptr;
            seed = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0') {
                std::fprintf(stderr,
                             "error: --seed wants a non-negative "
                             "integer, got '%s'\n",
                             v);
                return 2;
            }
            seed_given = true;
        } else if (!std::strcmp(argv[i], "--sweep")) {
            sweep_spec = adhoc_next();
        } else if (!std::strcmp(argv[i], "--jobs")) {
            jobs = std::atoi(next());
            if (jobs <= 0) Usage(argv[0]);
        } else if (!std::strcmp(argv[i], "--list-scenarios")) {
            ListScenarios();
            return 0;
        } else if (!std::strcmp(argv[i], "--scenario")) {
            scenario_name = next();
        } else if (!std::strcmp(argv[i], "--scale")) {
            // A non-positive (or unparsable) scale would collapse every
            // phase to its floor — or to nonsense; fail loudly instead.
            const char* v = next();
            char* end = nullptr;
            scale = std::strtod(v, &end);
            scale_given = true;
            if (end == v || *end != '\0' || scale <= 0.0) {
                std::fprintf(stderr,
                             "error: --scale wants a positive number, "
                             "got '%s'\n",
                             v);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--cluster-jobs")) {
            // Garbage or a non-positive width must not silently run
            // serial (or die in the pool); fail loudly like --seed.
            const char* v = next();
            char* end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n <= 0) {
                std::fprintf(stderr,
                             "error: --cluster-jobs wants a positive "
                             "integer, got '%s'\n",
                             v);
                return 2;
            }
            cluster_jobs = static_cast<int>(n);
            cluster_jobs_given = true;
        } else if (!std::strcmp(argv[i], "--cluster-leaf-batch")) {
            const char* v = next();
            char* end = nullptr;
            const long n = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || n <= 0) {
                std::fprintf(stderr,
                             "error: --cluster-leaf-batch wants a "
                             "positive integer, got '%s'\n",
                             v);
                return 2;
            }
            cluster_leaf_batch = static_cast<int>(n);
            cluster_leaf_batch_given = true;
        } else if (!std::strcmp(argv[i], "--cluster-policy")) {
            cluster_policy = next();
        } else if (!std::strcmp(argv[i], "--faults")) {
            faults_spec = next();
            faults_given = true;
        } else if (!std::strcmp(argv[i], "--json")) {
            json = true;
        } else {
            Usage(argv[0]);
        }
    }
    if (load <= 0.0 || load > 1.0) Usage(argv[0]);

    if (scenario_name.empty() &&
        (scale_given || json || faults_given || cluster_jobs_given ||
         cluster_leaf_batch_given || !cluster_policy.empty())) {
        std::fprintf(stderr,
                     "--scale/--json/--faults/--cluster-jobs/"
                     "--cluster-leaf-batch/--cluster-policy only apply "
                     "to --scenario runs\n");
        return 2;
    }
    chaos::FaultPlan faults;
    if (faults_given) {
        std::string error;
        if (!chaos::ParseFaultPlan(faults_spec, &faults, &error)) {
            std::fprintf(stderr, "error: bad --faults spec: %s\n",
                         error.c_str());
            return 2;
        }
        if (seed_given) faults.seed = seed ^ 0xC7A05;
    }
    if (!scenario_name.empty()) {
        if (adhoc_given) {
            // A cataloged scenario fixes its own workload mix and
            // phases; silently ignoring these flags would misrepresent
            // what actually ran.
            std::fprintf(stderr,
                         "--scenario cannot be combined with ad-hoc "
                         "flags (--lc/--be/--policy/--load/--warmup-s/"
                         "--measure-s/--sweep); use --scale/--seed\n");
            return 2;
        }
        scenarios::RunOptions opts;
        opts.time_scale = scale;
        if (seed_given) opts.seed = seed;
        // A lone cluster scenario gets the machine's full width by
        // default; a catalog sweep keeps each scenario serial so the
        // per-scenario fan-out never stacks on top of --jobs.
        opts.cluster_jobs =
            cluster_jobs_given
                ? cluster_jobs
                : (scenario_name == "all" ? 1 : runner::DefaultJobs());
        opts.cluster_leaf_batch = cluster_leaf_batch;
        return RunScenarioMode(scenario_name, opts, jobs, json,
                               faults_given ? &faults : nullptr,
                               cluster_policy);
    }

    exp::ExperimentConfig cfg;
    cfg.lc = ParseLc(lc_name);
    if (be_name != "none") {
        cfg.be = workloads::BeProfileByName(cfg.machine, be_name);
    }
    cfg.policy = ParsePolicy(policy_name);
    cfg.warmup = sim::Seconds(warmup_s);
    cfg.measure = sim::Seconds(measure_s);
    cfg.seed = seed;

    exp::Experiment experiment(cfg);

    if (!sweep_spec.empty()) {
        const auto loads = ParseSweep(argv[0], sweep_spec);
        const auto results = experiment.Sweep(loads, jobs);

        std::printf("%s + %s under %s, %zu load points (%d jobs):\n",
                    lc_name.c_str(), be_name.c_str(), policy_name.c_str(),
                    loads.size(), jobs);
        exp::Table table({"load", "tail (% SLO)", "SLO ok", "LC tput",
                          "BE tput", "EMU"});
        bool violated = false;
        for (const auto& r : results) {
            violated |= r.slo_violated;
            table.AddRow({exp::FormatPct(r.load),
                          exp::FormatTailFrac(r.tail_frac_slo),
                          r.slo_violated ? "VIOLATED" : "yes",
                          exp::FormatPct(r.lc_throughput),
                          exp::FormatPct(r.be_throughput),
                          exp::FormatPct(r.emu)});
        }
        table.Print();
        return violated ? 1 : 0;
    }

    const auto r = experiment.RunAt(load);

    std::printf("%s + %s under %s at %.0f%% load:\n", lc_name.c_str(),
                be_name.c_str(), policy_name.c_str(), load * 100);
    std::printf("  worst %2.0f%%-ile tail : %s  (%.1f%% of the %s SLO)%s\n",
                cfg.lc.slo_percentile * 100,
                sim::FormatDuration(r.worst_tail).c_str(),
                r.tail_frac_slo * 100,
                sim::FormatDuration(cfg.lc.slo_latency).c_str(),
                r.slo_violated ? "  ** SLO VIOLATED **" : "");
    std::printf("  EMU                 : %.1f%%  (LC %.1f%% + BE %.1f%%)\n",
                r.emu * 100, r.lc_throughput * 100,
                r.be_throughput * 100);
    std::printf("  DRAM bandwidth      : %.1f%% of peak\n",
                r.telemetry.dram_frac * 100);
    std::printf("  CPU utilization     : %.1f%%\n",
                r.telemetry.cpu_utilization * 100);
    std::printf("  CPU power           : %.1f%% of TDP\n",
                r.telemetry.power_frac_tdp * 100);
    std::printf("  network             : LC %.2f Gb/s, BE %.2f Gb/s\n",
                r.telemetry.lc_tx_gbps, r.telemetry.be_tx_gbps);
    if (cfg.policy == exp::PolicyKind::kHeracles) {
        std::printf("  final BE allocation : %d cores, %d LLC ways, "
                    "DVFS cap %.1f GHz, slack %.2f\n",
                    r.be_cores, r.be_ways, r.be_freq_cap_ghz, r.slack);
    }
    return r.slo_violated ? 1 : 0;
}
