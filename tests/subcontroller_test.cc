/**
 * @file
 * State-machine edge tests for the Heracles subcontrollers against the
 * scriptable FakePlatform: growth/cutback transitions, entering and
 * leaving cooldown, and the exact threshold/saturation boundaries the
 * algorithms pivot on. Complements heracles_test.cc, which covers the
 * mainline paths; here every case sits *on* an edge.
 */
#include <gtest/gtest.h>

#include "fake_platform.h"
#include "heracles/bw_model.h"
#include "heracles/controller.h"
#include "heracles/core_mem.h"
#include "heracles/net_ctl.h"
#include "heracles/power_ctl.h"

namespace heracles::ctl {
namespace {

using heracles::testing::FakePlatform;

HeraclesConfig
NoFastSlack()
{
    HeraclesConfig c;
    c.use_fast_slack = false;
    c.fast_shrink = false;
    return c;
}

// --------------------------------------------------------------------------
// Core & memory subcontroller (Algorithm 2)

TEST(CoreMemEdges, TickIsNoOpWhileBeDisabled)
{
    FakePlatform p;
    p.be_cores = 0;
    CoreMemController ctl(p, HeraclesConfig{}, LcBwModel{});
    ctl.Tick(/*can_grow=*/true, /*slack=*/0.5);
    EXPECT_EQ(p.set_cores_calls, 0);
    EXPECT_EQ(p.set_ways_calls, 0);
}

TEST(CoreMemEdges, OnBeDisabledResetsToGrowLlc)
{
    FakePlatform p;
    p.be_cores = 5;
    p.be_ways = 16;  // LLC phase exhausted -> flips to GROW_CORES
    p.dram_gbps = 30.0;
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.3);
    ASSERT_EQ(ctl.state(), CoreMemController::State::kGrowCores);
    ctl.OnBeDisabled();
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowLlc);
}

TEST(CoreMemEdges, DramExactlyAtLimitDoesNotCutCores)
{
    FakePlatform p;
    p.be_cores = 10;
    p.dram_gbps = 90.0;  // exactly DRAM_LIMIT (0.90 * 100)
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_cores, 10);  // saturation requires > limit
}

TEST(CoreMemEdges, GrowthStopsAtCoreCeiling)
{
    FakePlatform p;
    p.be_cores = 34;  // one below the ceiling (LC keeps one core)
    p.be_ways = 16;
    p.dram_gbps = 10.0;
    p.lc_cpu_util = 0.01;
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.5);  // leaves GROW_LLC (ways at cap)
    ctl.Tick(true, 0.5);  // last permitted grow: 34 -> 35
    EXPECT_EQ(p.be_cores, 35);
    ctl.Tick(true, 0.5);  // at TotalPhysCores - 1: pinned
    ctl.Tick(true, 0.5);
    EXPECT_EQ(p.be_cores, 35);
}

TEST(CoreMemEdges, SlackExactlyAtGrowthThresholdBlocksGrowth)
{
    // slack must exceed slack_disallow_growth strictly for a core grow.
    FakePlatform p;
    p.be_cores = 5;
    p.be_ways = 16;
    p.dram_gbps = 30.0;
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.3);  // -> GROW_CORES
    const int before = p.be_cores;
    ctl.Tick(true, /*slack=*/0.10);
    EXPECT_EQ(p.be_cores, before);
    ctl.Tick(true, /*slack=*/0.101);
    EXPECT_EQ(p.be_cores, before + 1);
}

TEST(CoreMemEdges, UtilizationGuardCutsTwoCores)
{
    FakePlatform p;
    p.be_cores = 10;
    p.dram_gbps = 30.0;
    p.lc_cpu_util = 0.86;  // above lc_util_shrink_limit = 0.85
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.5);
    EXPECT_EQ(p.be_cores, 8);
}

TEST(CoreMemEdges, PredictedUtilizationGatesCoreGrowth)
{
    // Growing BE concentrates LC load on one fewer core; the controller
    // gates on the post-removal utilization, not the current one.
    FakePlatform p;
    p.be_ways = 16;
    p.dram_gbps = 30.0;
    p.lc_cpu_util = 0.55;

    // 8 LC cores left: util_after = 0.55 * 8/7 = 0.628 > 0.62 -> no grow.
    p.be_cores = 28;
    CoreMemController tight(p, NoFastSlack(), LcBwModel{});
    tight.Tick(true, 0.5);  // -> GROW_CORES
    tight.Tick(true, 0.5);
    EXPECT_EQ(p.be_cores, 28);

    // 10 LC cores left: util_after = 0.55 * 10/9 = 0.611 < 0.62 -> grow.
    p.be_cores = 26;
    CoreMemController roomy(p, NoFastSlack(), LcBwModel{});
    roomy.Tick(true, 0.5);
    roomy.Tick(true, 0.5);
    EXPECT_EQ(p.be_cores, 27);
}

TEST(CoreMemEdges, FastShrinkKeepsLastCore)
{
    FakePlatform p;
    p.be_cores = 1;
    p.fast_tail = sim::Millis(15);  // hard violation of the 12 ms SLO
    CoreMemController ctl(p, HeraclesConfig{}, LcBwModel{});
    ctl.Tick(true, 0.3);
    // The top level owns full disables; the fast path never goes below 1.
    EXPECT_EQ(p.be_cores, 1);
}

// --------------------------------------------------------------------------
// Power subcontroller (Algorithm 3)

TEST(PowerEdges, HysteresisBandHoldsCap)
{
    // Power between raise (0.80) and lower (0.90) thresholds: no action,
    // whatever the LC frequency reads.
    for (double lc_freq : {2.0, 2.6}) {
        FakePlatform p;
        p.be_cores = 10;
        p.be_freq_cap = 2.0;
        p.socket_power[0] = p.socket_power[1] = 123.0;  // 0.85 of TDP
        p.lc_freq = lc_freq;
        PowerController ctl(p, HeraclesConfig{});
        ctl.Tick();
        EXPECT_DOUBLE_EQ(p.be_freq_cap, 2.0) << "lc_freq " << lc_freq;
        EXPECT_EQ(p.set_cap_calls, 0);
    }
}

TEST(PowerEdges, LowersByConfiguredStepsPerTick)
{
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 0.0;        // uncapped = 3.6 effective
    p.socket_power[0] = 140.0;  // hot
    p.lc_freq = 2.0;            // below guaranteed
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_NEAR(p.be_freq_cap, 3.6 - 2 * 0.1, 1e-9);
}

TEST(PowerEdges, NoRaiseWhileLcBelowGuaranteed)
{
    // Cool package but the LC cores still read slow (e.g. active-idle):
    // both raise conditions must hold, so the cap stays.
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 2.0;
    p.socket_power[0] = p.socket_power[1] = 100.0;
    p.lc_freq = 2.0;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 2.0);
}

TEST(PowerEdges, LoweringClampsAtDvfsFloor)
{
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 1.25;  // one step above the 1.2 floor
    p.socket_power[0] = 140.0;
    p.lc_freq = 2.0;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 1.2);
}

TEST(PowerEdges, RaiseLandingExactlyOnMaxUncaps)
{
    // A raise whose step lands on MaxGhz must release the cap entirely
    // (0 = uncapped) instead of pinning a cap equal to the ceiling.
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 3.4;  // + 2 * 0.1 steps == 3.6 == max
    p.socket_power[0] = p.socket_power[1] = 110.0;  // 0.76: headroom
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 0.0);
}

TEST(PowerEdges, CapReleaseWithoutBeCoresIsIdempotent)
{
    // BE disabled with a stale cap: released exactly once, then the
    // tick is a no-op — no actuation churn while there is nothing to
    // throttle.
    FakePlatform p;
    p.be_cores = 0;
    p.be_freq_cap = 2.0;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 0.0);
    EXPECT_EQ(p.set_cap_calls, 1);
    ctl.Tick();
    EXPECT_EQ(p.set_cap_calls, 1);
}

TEST(PowerEdges, RecoveryWaitsOutTheHysteresisBand)
{
    // Lower under pressure, hold while power sits inside the
    // [raise, lower] band even though the LC cores recovered, and climb
    // back only once power clears the raise threshold.
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 3.0;
    p.socket_power[0] = 140.0;  // 0.97: over the 0.90 lower threshold
    p.lc_freq = 2.0;            // below guaranteed
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_NEAR(p.be_freq_cap, 2.8, 1e-9);

    p.lc_freq = 2.5;            // recovered...
    p.socket_power[0] = 123.0;  // ...but 0.85 is still inside the band
    ctl.Tick();
    EXPECT_NEAR(p.be_freq_cap, 2.8, 1e-9) << "must hold inside the band";

    p.socket_power[0] = 110.0;  // 0.76: clears the 0.80 raise threshold
    ctl.Tick();
    EXPECT_NEAR(p.be_freq_cap, 3.0, 1e-9);
}

// --------------------------------------------------------------------------
// Network subcontroller (Algorithm 4)

TEST(NetEdges, ZeroBeTrafficStillReservesLinkHeadroom)
{
    // An idle LC service (zero egress) does not hand BE the whole NIC:
    // the link-fraction headroom term survives, ceil = 10 - 0.05 * 10.
    FakePlatform p;
    p.lc_tx = 0.0;
    NetworkController net(p, HeraclesConfig{});
    net.Tick();
    EXPECT_NEAR(p.be_net_ceil, 9.5, 1e-9);
}

TEST(NetEdges, DisabledHeadroomGrantsExactlyTheResidualLink)
{
    // Both headroom knobs at zero is the boundary where the ceiling
    // equals the full residual link — never more.
    FakePlatform p;
    p.lc_tx = 4.0;
    HeraclesConfig cfg;
    cfg.net_headroom_link_frac = 0.0;
    cfg.net_headroom_lc_frac = 0.0;
    NetworkController net(p, cfg);
    net.Tick();
    EXPECT_DOUBLE_EQ(p.be_net_ceil, 6.0);
}

TEST(NetEdges, SaturatedLinkClampsCeilToZero)
{
    FakePlatform p;
    p.lc_tx = 10.0;  // LC already consumes the whole 10 Gb/s link
    NetworkController net(p, HeraclesConfig{});
    net.Tick();
    EXPECT_DOUBLE_EQ(p.be_net_ceil, 0.0);
}

TEST(NetEdges, HeadroomSwitchesFromLinkToLcTerm)
{
    // At lc_tx = 5.0 both headroom terms equal 0.5; above that the LC
    // term dominates: ceil = 10 - 6 - 0.6 = 3.4, not 10 - 6 - 0.5.
    FakePlatform p;
    p.lc_tx = 5.0;
    NetworkController net(p, HeraclesConfig{});
    net.Tick();
    EXPECT_NEAR(p.be_net_ceil, 4.5, 1e-9);
    p.lc_tx = 6.0;
    net.Tick();
    EXPECT_NEAR(p.be_net_ceil, 3.4, 1e-9);
}

// --------------------------------------------------------------------------
// Top-level controller (Algorithm 1): threshold and cooldown edges

struct TopRig {
    explicit TopRig(HeraclesConfig cfg = {})
        : controller(plat, cfg, LcBwModel{})
    {
        controller.Start();
    }
    FakePlatform plat;
    HeraclesController controller;
};

TEST(TopLevelEdges, LoadExactlyAtDisableThresholdKeepsBe)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    ASSERT_TRUE(rig.controller.BeEnabled());
    rig.plat.load = 0.85;  // load > 0.85 is required to disable
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_TRUE(rig.controller.BeEnabled());
    EXPECT_EQ(rig.controller.stats().be_disables_load, 0u);
}

TEST(TopLevelEdges, SlackExactlyAtDisallowThresholdAllowsGrowth)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    // slack = (12 - 10.8) / 12 = 0.10 exactly: growth stays allowed
    // (disallow requires slack < 0.10 strictly).
    rig.plat.tail = sim::Millis(10.8);
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_TRUE(rig.controller.BeEnabled());
    EXPECT_TRUE(rig.controller.CanGrowBe());
}

TEST(TopLevelEdges, ZeroSlackDisablesAndStartsCooldown)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    ASSERT_TRUE(rig.controller.BeEnabled());
    // Exactly at the SLO: slack = 0, not negative -> stays enabled...
    rig.plat.tail = sim::Millis(12);
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_TRUE(rig.controller.BeEnabled());
    EXPECT_FALSE(rig.controller.InCooldown());
    // ...one hair over: emergency disable plus cooldown.
    rig.plat.tail = sim::Millis(12.1);
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_FALSE(rig.controller.BeEnabled());
    EXPECT_TRUE(rig.controller.InCooldown());
    EXPECT_EQ(rig.plat.be_cores, 0);
    EXPECT_EQ(rig.plat.be_ways, 0);
    EXPECT_DOUBLE_EQ(rig.plat.be_freq_cap, 0.0);
}

TEST(TopLevelEdges, CooldownExpiryReenablesOnNextPoll)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    rig.plat.tail = sim::Millis(13);
    rig.plat.queue().RunFor(sim::Seconds(15));  // disable + 5 min cooldown
    ASSERT_TRUE(rig.controller.InCooldown());
    rig.plat.tail = sim::Millis(6);

    // Last poll inside the cooldown window must not re-enable; the first
    // poll at/after expiry must.
    rig.plat.queue().RunFor(sim::Minutes(5) - sim::Seconds(5));
    EXPECT_FALSE(rig.controller.BeEnabled());
    rig.plat.queue().RunFor(sim::Seconds(20));
    EXPECT_TRUE(rig.controller.BeEnabled());
    EXPECT_FALSE(rig.controller.InCooldown());
    EXPECT_EQ(rig.controller.stats().be_enables, 2u);
}

TEST(TopLevelEdges, LoadDisableDoesNotEnterCooldown)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    ASSERT_TRUE(rig.controller.BeEnabled());
    rig.plat.load = 0.90;
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_FALSE(rig.controller.BeEnabled());
    // A load disable is a safeguard, not an emergency: no cooldown, so
    // the next poll below the enable threshold re-colocates immediately.
    EXPECT_FALSE(rig.controller.InCooldown());
    rig.plat.load = 0.40;
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_TRUE(rig.controller.BeEnabled());
}

TEST(TopLevelEdges, CriticalSlackShrinkSkippedAtTwoCores)
{
    // Freeze the core/mem loop so the allocation stays where the test
    // puts it between top-level polls.
    HeraclesConfig cfg;
    cfg.enable_core_mem = false;
    TopRig rig(cfg);
    rig.plat.queue().RunFor(sim::Seconds(16));
    ASSERT_TRUE(rig.controller.BeEnabled());
    rig.plat.be_cores = 2;
    rig.plat.tail = sim::Millis(11.5);  // slack ~4%: critical band
    rig.plat.queue().RunFor(sim::Seconds(15));
    // Already at the two-core floor: no further strip, no stat bump.
    EXPECT_EQ(rig.plat.be_cores, 2);
    EXPECT_EQ(rig.controller.stats().core_shrinks, 0u);
    EXPECT_FALSE(rig.controller.CanGrowBe());
}

}  // namespace
}  // namespace heracles::ctl
