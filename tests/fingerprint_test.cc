/**
 * @file
 * Unit tests for the interference-fingerprint subsystem
 * (cluster/fingerprint.h): determinism of the measured fingerprints,
 * sanity of the analytic pressure model, and the ranking behavior the
 * predictive scheduler relies on.
 *
 * The measured-fingerprint tests shrink the rig windows so the suite
 * stays fast; the cached FingerprintFor path uses the production
 * windows and is exercised once (second lookup must be bit-identical
 * and instant by construction — same map entry).
 */
#include <gtest/gtest.h>

#include "cluster/fingerprint.h"
#include "scenarios/scenario.h"
#include "workloads/antagonists.h"
#include "workloads/lc_configs.h"

namespace heracles::cluster {
namespace {

hw::MachineConfig
DefaultMachine()
{
    return scenarios::MachineVariant("default");
}

TEST(Fingerprint, MeasurementIsDeterministic)
{
    const hw::MachineConfig m = DefaultMachine();
    const workloads::LcParams lc = workloads::Websearch();
    const LcFingerprint a =
        MeasureLcFingerprint(m, lc, sim::Seconds(5), sim::Seconds(10));
    const LcFingerprint b =
        MeasureLcFingerprint(m, lc, sim::Seconds(5), sim::Seconds(10));
    EXPECT_EQ(a.baseline, b.baseline);
    for (int i = 0; i < kFingerprintAxes; ++i) {
        EXPECT_EQ(a.sensitivity[i], b.sensitivity[i]) << "axis " << i;
    }
}

TEST(Fingerprint, MachineSeedDoesNotChangeTheFingerprint)
{
    // Clusters stamp per-leaf seeds into the machine config; the
    // fingerprint is a property of the *shape* and must ignore them,
    // or every leaf of a uniform cluster would re-measure the grid.
    hw::MachineConfig a = DefaultMachine();
    hw::MachineConfig b = DefaultMachine();
    a.seed = 1;
    b.seed = 99999;
    const workloads::LcParams lc = workloads::Websearch();
    const LcFingerprint fa =
        MeasureLcFingerprint(a, lc, sim::Seconds(5), sim::Seconds(10));
    const LcFingerprint fb =
        MeasureLcFingerprint(b, lc, sim::Seconds(5), sim::Seconds(10));
    EXPECT_EQ(fa.baseline, fb.baseline);
    for (int i = 0; i < kFingerprintAxes; ++i) {
        EXPECT_EQ(fa.sensitivity[i], fb.sensitivity[i]) << "axis " << i;
    }
}

TEST(Fingerprint, SensitivitiesAreNonNegativeAndSomeAreReal)
{
    const LcFingerprint fp = MeasureLcFingerprint(
        DefaultMachine(), workloads::Websearch(), sim::Seconds(5),
        sim::Seconds(10));
    EXPECT_GT(fp.baseline, 0.0);
    double total = 0.0;
    for (int i = 0; i < kFingerprintAxes; ++i) {
        EXPECT_GE(fp.sensitivity[i], 0.0) << "axis " << i;
        total += fp.sensitivity[i];
    }
    // A workload that reacts to *nothing* would make every prediction a
    // constant and the predictive policy an expensive round-robin.
    EXPECT_GT(total, 0.0);
}

TEST(Fingerprint, CachedLookupIsStableAndMatchesPerLeafSeeds)
{
    const hw::MachineConfig m = DefaultMachine();
    const LcFingerprint a = FingerprintFor(m, "websearch");
    hw::MachineConfig leaf = m;
    leaf.seed = m.seed * 131ull + 7;  // what a cluster leaf carries
    const LcFingerprint b = FingerprintFor(leaf, "websearch");
    EXPECT_EQ(a.baseline, b.baseline);
    for (int i = 0; i < kFingerprintAxes; ++i) {
        EXPECT_EQ(a.sensitivity[i], b.sensitivity[i]) << "axis " << i;
    }
}

TEST(Fingerprint, PressureAxesMatchTheJobsCharacter)
{
    const hw::MachineConfig m = DefaultMachine();
    const BePressure brain = PressureOf(m, workloads::Brain());
    const BePressure sview = PressureOf(m, workloads::Streetview());
    const BePressure iperf = PressureOf(m, workloads::Iperf());
    const BePressure pwr = PressureOf(m, workloads::CpuPowerVirus());

    const int llc = static_cast<int>(FingerprintAxis::kLlc);
    const int dram = static_cast<int>(FingerprintAxis::kDram);
    const int ht = static_cast<int>(FingerprintAxis::kHyperThread);
    const int power = static_cast<int>(FingerprintAxis::kPower);
    const int net = static_cast<int>(FingerprintAxis::kNetwork);

    // brain: cache-hungry compute; streetview: DRAM streamer.
    EXPECT_GT(brain.pressure[llc], sview.pressure[llc]);
    EXPECT_GT(sview.pressure[dram], brain.pressure[dram]);
    // iperf is the only network antagonist here.
    EXPECT_GT(iperf.pressure[net], 0.9);
    EXPECT_EQ(brain.pressure[net], 0.0);
    // The power virus defines the top of the power axis.
    EXPECT_GE(pwr.pressure[power], brain.pressure[power]);
    EXPECT_GT(brain.pressure[ht], 0.0);

    for (const BePressure& p : {brain, sview, iperf, pwr}) {
        for (int a = 0; a < kFingerprintAxes; ++a) {
            EXPECT_GE(p.pressure[a], 0.0);
            EXPECT_LE(p.pressure[a], 1.0);
        }
    }
}

TEST(Fingerprint, PredictionIsBaselinePlusDotProduct)
{
    LcFingerprint fp;
    fp.baseline = 0.5;
    fp.sensitivity = {0.1, 0.2, 0.0, 0.0, 0.4};
    BePressure be;
    be.pressure = {1.0, 0.5, 1.0, 1.0, 0.25};
    EXPECT_DOUBLE_EQ(PredictTailFrac(fp, be), 0.5 + 0.1 + 0.1 + 0.1);
}

}  // namespace
}  // namespace heracles::cluster
