/**
 * @file
 * Unit tests for the hardware models: cpusets/topology, LLC+CAT, DRAM,
 * power/DVFS, NIC/HTB and the Machine contention resolver.
 */
#include <gtest/gtest.h>

#include "hw/dram.h"
#include "hw/llc.h"
#include "hw/machine.h"
#include "hw/nic.h"
#include "hw/power.h"

namespace heracles::hw {
namespace {

MachineConfig
Cfg()
{
    return MachineConfig{};
}

// --------------------------------------------------------------------------
// CpuSet

TEST(CpuSet, BasicOps)
{
    CpuSet s;
    EXPECT_TRUE(s.Empty());
    s.Add(3);
    s.Add(7);
    EXPECT_EQ(s.Count(), 2);
    EXPECT_TRUE(s.Contains(3));
    EXPECT_FALSE(s.Contains(4));
    s.Remove(3);
    EXPECT_FALSE(s.Contains(3));
}

TEST(CpuSet, RangeAndOf)
{
    const CpuSet r = CpuSet::Range(4, 3);
    EXPECT_EQ(r.Cpus(), (std::vector<int>{4, 5, 6}));
    const CpuSet o = CpuSet::Of({1, 9, 2});
    EXPECT_EQ(o.Cpus(), (std::vector<int>{1, 2, 9}));
}

TEST(CpuSet, SetAlgebra)
{
    const CpuSet a = CpuSet::Range(0, 4);   // 0-3
    const CpuSet b = CpuSet::Range(2, 4);   // 2-5
    EXPECT_EQ(a.Union(b).Count(), 6);
    EXPECT_EQ(a.Intersect(b).Cpus(), (std::vector<int>{2, 3}));
    EXPECT_EQ(a.Minus(b).Cpus(), (std::vector<int>{0, 1}));
    EXPECT_TRUE(a.Intersects(b));
    EXPECT_FALSE(a.Intersects(CpuSet::Range(10, 2)));
}

TEST(CpuSet, ToStringCompactsRanges)
{
    EXPECT_EQ(CpuSet::Of({0, 1, 2, 5, 7, 8}).ToString(), "0-2,5,7-8");
    EXPECT_EQ(CpuSet().ToString(), "");
}

// --------------------------------------------------------------------------
// Topology

TEST(Topology, SocketCoreThreadMapping)
{
    const Topology topo(Cfg());  // 2 sockets x 18 cores x 2 threads
    EXPECT_EQ(topo.SocketOf(0), 0);
    EXPECT_EQ(topo.SocketOf(35), 0);
    EXPECT_EQ(topo.SocketOf(36), 1);
    EXPECT_EQ(topo.CoreOf(0), 0);
    EXPECT_EQ(topo.CoreOf(1), 0);
    EXPECT_EQ(topo.CoreOf(2), 1);
    EXPECT_EQ(topo.CoreOf(36), 18);
    EXPECT_EQ(topo.ThreadOf(0), 0);
    EXPECT_EQ(topo.ThreadOf(1), 1);
}

TEST(Topology, CpuOfInvertsMapping)
{
    const Topology topo(Cfg());
    for (int cpu = 0; cpu < Cfg().LogicalCpus(); ++cpu) {
        EXPECT_EQ(topo.CpuOf(topo.CoreOf(cpu), topo.ThreadOf(cpu)), cpu);
    }
}

TEST(Topology, SiblingIsSymmetric)
{
    const Topology topo(Cfg());
    for (int cpu = 0; cpu < Cfg().LogicalCpus(); ++cpu) {
        const int sib = topo.SiblingOf(cpu);
        ASSERT_NE(sib, cpu);
        EXPECT_EQ(topo.SiblingOf(sib), cpu);
        EXPECT_EQ(topo.CoreOf(sib), topo.CoreOf(cpu));
    }
}

TEST(Topology, PhysicalCoresIncludesBothThreads)
{
    const Topology topo(Cfg());
    const CpuSet s = topo.PhysicalCores(0, 3);
    EXPECT_EQ(s.Count(), 6);
    EXPECT_EQ(topo.PhysicalCoreCount(s), 3);
}

TEST(Topology, ThreadOfCoresPicksOneThread)
{
    const Topology topo(Cfg());
    const CpuSet t0 = topo.ThreadOfCores(0, 4, 0);
    EXPECT_EQ(t0.Count(), 4);
    for (int cpu : t0.Cpus()) EXPECT_EQ(topo.ThreadOf(cpu), 0);
}

TEST(Topology, SpreadCoresAlternatesSockets)
{
    const Topology topo(Cfg());
    const CpuSet s = topo.SpreadCores(4);
    EXPECT_EQ(topo.PhysicalCoreCount(s), 4);
    EXPECT_EQ(topo.OnSocket(s, 0).Count(), 4);  // 2 cores x 2 threads
    EXPECT_EQ(topo.OnSocket(s, 1).Count(), 4);
}

TEST(Topology, SpreadCoresOddCount)
{
    const Topology topo(Cfg());
    const CpuSet s = topo.SpreadCores(5);
    EXPECT_EQ(topo.PhysicalCoreCount(s), 5);
    EXPECT_EQ(topo.OnSocket(s, 0).Count() + topo.OnSocket(s, 1).Count(),
              10);
}

TEST(Topology, OnSocketFilters)
{
    const Topology topo(Cfg());
    const CpuSet all = topo.AllCpus();
    EXPECT_EQ(topo.OnSocket(all, 0).Count(), Cfg().CpusPerSocket());
    EXPECT_EQ(topo.OnSocket(all, 1).Count(), Cfg().CpusPerSocket());
}

// --------------------------------------------------------------------------
// LLC model

TEST(Llc, EverythingFitsGetsFootprint)
{
    const auto out = ResolveLlc(Cfg(), {{10.0, 5.0, 0}, {20.0, 50.0, 0}});
    EXPECT_DOUBLE_EQ(out[0], 10.0);
    EXPECT_DOUBLE_EQ(out[1], 20.0);
}

TEST(Llc, OversubscriptionSplitsByPressure)
{
    // Two tasks with 40MB footprints in a 45MB cache; weights 1:3.
    const auto out =
        ResolveLlc(Cfg(), {{40.0, 100.0, 0}, {40.0, 300.0, 0}});
    EXPECT_LT(out[0], out[1]);
    EXPECT_NEAR(out[0] + out[1], Cfg().llc_mb_per_socket, 1e-6);
    EXPECT_NEAR(out[1] / out[0], 3.0, 0.01);
}

TEST(Llc, CatPartitionIsHardCap)
{
    // Task 0 has 4 ways (9 MB) but wants 30 MB.
    const auto out = ResolveLlc(Cfg(), {{30.0, 100.0, 4}, {40.0, 1.0, 0}});
    EXPECT_NEAR(out[0], 4 * Cfg().MbPerWay(), 1e-6);
    // The unrestricted task gets the remaining 16 ways' capacity.
    EXPECT_NEAR(out[1], 16 * Cfg().MbPerWay(), 1e-6);
}

TEST(Llc, CatProtectsSmallTaskFromHeavyCompetitor)
{
    // Without CAT the heavy streamer crushes the small task...
    const auto shared =
        ResolveLlc(Cfg(), {{15.0, 10.0, 0}, {43.0, 1000.0, 0}});
    EXPECT_LE(shared[0], 2.0);
    // ...with CAT the small task's partition is inviolate.
    const auto cat = ResolveLlc(Cfg(), {{15.0, 10.0, 8}, {43.0, 1000.0, 0}});
    EXPECT_NEAR(cat[0], 15.0, 1e-6);
}

TEST(Llc, SmallFootprintFrozenAtFootprint)
{
    // A tiny task competing against a huge one still gets its footprint
    // when its fair share exceeds it.
    const auto out = ResolveLlc(Cfg(), {{2.0, 500.0, 0}, {60.0, 500.0, 0}});
    EXPECT_NEAR(out[0], 2.0, 1e-6);
    EXPECT_NEAR(out[1], Cfg().llc_mb_per_socket - 2.0, 1e-6);
}

TEST(Llc, ZeroWeightGetsNothingUnderPressure)
{
    const auto out = ResolveLlc(Cfg(), {{40.0, 0.0, 0}, {40.0, 10.0, 0}});
    EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(LlcDeath, OverAllocatedWaysAbort)
{
    EXPECT_DEATH(ResolveLlc(Cfg(), {{10.0, 1.0, 12}, {10.0, 1.0, 12}}),
                 "over-allocated");
}

// --------------------------------------------------------------------------
// DRAM model

TEST(Dram, UnderloadedGrantsAll)
{
    const auto out = ResolveDram(Cfg(), {10.0, 15.0});
    EXPECT_DOUBLE_EQ(out.granted_gbps[0], 10.0);
    EXPECT_DOUBLE_EQ(out.granted_gbps[1], 15.0);
    EXPECT_NEAR(out.rho, 0.5, 1e-9);
}

TEST(Dram, OverloadGrantsProportionally)
{
    const auto out = ResolveDram(Cfg(), {60.0, 40.0});  // peak 50
    EXPECT_NEAR(out.total_granted_gbps, 50.0, 1e-9);
    EXPECT_NEAR(out.granted_gbps[0] / out.granted_gbps[1], 1.5, 1e-9);
}

TEST(Dram, StretchFlatBelowKnee)
{
    const auto& cfg = Cfg();
    EXPECT_LT(DramStretch(cfg, 0.3), 1.1);
    EXPECT_LT(DramStretch(cfg, 0.6), 1.15);
}

TEST(Dram, StretchCliffAboveKnee)
{
    const auto& cfg = Cfg();
    EXPECT_GT(DramStretch(cfg, 1.0), 2.5);
    EXPECT_GT(DramStretch(cfg, 1.5), DramStretch(cfg, 1.0) + 2.0);
}

TEST(Dram, StretchMonotone)
{
    const auto& cfg = Cfg();
    double prev = 0.0;
    for (double rho = 0.0; rho <= 2.0; rho += 0.05) {
        const double m = DramStretch(cfg, rho);
        EXPECT_GE(m, prev);
        prev = m;
    }
}

TEST(Dram, EmptyDemand)
{
    const auto out = ResolveDram(Cfg(), {});
    EXPECT_EQ(out.total_granted_gbps, 0.0);
    EXPECT_DOUBLE_EQ(out.stretch, 1.0);
}

// --------------------------------------------------------------------------
// Power model

TEST(Power, TurboDecreasesWithActiveCores)
{
    const auto& cfg = Cfg();
    EXPECT_GT(MaxTurboGhz(cfg, 1), MaxTurboGhz(cfg, 18));
    EXPECT_GE(MaxTurboGhz(cfg, 18), cfg.nominal_ghz);
}

TEST(Power, IdleSocketDrawsUncorePlusLeakage)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> cores(cfg.cores_per_socket);
    const auto out = ResolvePower(cfg, cores);
    EXPECT_NEAR(out.socket_power_w,
                cfg.uncore_w + cfg.cores_per_socket * cfg.core_idle_w,
                1.0);
    EXPECT_FALSE(out.throttled);
}

TEST(Power, FewBusyCoresReachHighTurbo)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> cores(cfg.cores_per_socket);
    cores[0].busy = 1.0;
    cores[1].busy = 1.0;
    const auto out = ResolvePower(cfg, cores);
    EXPECT_FALSE(out.throttled);
    EXPECT_GT(out.freq_ghz[0], 3.0);
}

TEST(Power, AllCoreNormalLoadStaysNearTdp)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> cores(cfg.cores_per_socket);
    for (auto& c : cores) c.busy = 1.0;
    const auto out = ResolvePower(cfg, cores);
    EXPECT_LE(out.socket_power_w, cfg.tdp_w + 1e-6);
    // Normal intensity: all-core frequency lands above nominal.
    EXPECT_GE(out.freq_ghz[0], cfg.nominal_ghz);
}

TEST(Power, PowerVirusThrottlesWholeSocket)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> cores(cfg.cores_per_socket);
    for (auto& c : cores) {
        c.busy = 1.0;
        c.intensity = 2.1;
    }
    const auto out = ResolvePower(cfg, cores);
    EXPECT_TRUE(out.throttled);
    EXPECT_LT(out.freq_ghz[0], cfg.nominal_ghz);
    EXPECT_LE(out.socket_power_w, cfg.tdp_w + 1e-6);
}

TEST(Power, DvfsCapRespected)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> cores(cfg.cores_per_socket);
    for (auto& c : cores) c.busy = 1.0;
    cores[0].dvfs_cap_ghz = 1.5;
    const auto out = ResolvePower(cfg, cores);
    EXPECT_LE(out.freq_ghz[0], 1.5 + 1e-9);
    EXPECT_GT(out.freq_ghz[1], 1.5);
}

TEST(Power, CappingVirusCoresFreesBudgetForOthers)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> uncapped(cfg.cores_per_socket);
    for (auto& c : uncapped) {
        c.busy = 1.0;
        c.intensity = 2.1;
    }
    std::vector<CorePowerRequest> capped = uncapped;
    // Cap all but two cores at the floor (what Heracles' power
    // subcontroller does to BE cores).
    for (size_t i = 2; i < capped.size(); ++i) {
        capped[i].dvfs_cap_ghz = cfg.min_ghz;
    }
    capped[0].intensity = capped[1].intensity = 1.0;
    const auto a = ResolvePower(cfg, uncapped);
    const auto b = ResolvePower(cfg, capped);
    EXPECT_GT(b.freq_ghz[0], a.freq_ghz[0] + 0.3);
}

TEST(Power, FrequencyOnDvfsGrid)
{
    const auto& cfg = Cfg();
    std::vector<CorePowerRequest> cores(cfg.cores_per_socket);
    for (auto& c : cores) c.busy = 0.7;
    const auto out = ResolvePower(cfg, cores);
    for (double f : out.freq_ghz) {
        const double steps = f / cfg.dvfs_step_ghz;
        EXPECT_NEAR(steps, std::round(steps), 1e-6);
    }
}

// --------------------------------------------------------------------------
// NIC model

TEST(Nic, UncontendedLcGetsDemand)
{
    NicRequest req;
    req.lc_demand_gbps = 3.0;
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_DOUBLE_EQ(out.lc_granted_gbps, 3.0);
    EXPECT_FALSE(out.lc_overloaded);
    EXPECT_LT(out.lc_delay_factor, 1.5);
    EXPECT_EQ(out.lc_drop_prob, 0.0);
}

TEST(Nic, UnshapedSwarmCapturesMostOfLink)
{
    NicRequest req;
    req.lc_demand_gbps = 1.0;
    req.be_demand_gbps = 20.0;
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_NEAR(out.be_granted_gbps, 0.65 * 10.0, 1e-6);
}

TEST(Nic, UnshapedSwarmDropsLcPacketsNearSaturation)
{
    NicRequest req;
    req.lc_demand_gbps = 3.45;  // ~0.99 of the 3.5 Gb/s leftover
    req.be_demand_gbps = 20.0;
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_GT(out.lc_drop_prob, 0.05);
}

TEST(Nic, UnshapedSwarmHarmlessAtLowLcLoad)
{
    NicRequest req;
    req.lc_demand_gbps = 1.5;
    req.be_demand_gbps = 20.0;
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_EQ(out.lc_drop_prob, 0.0);
    EXPECT_LT(out.lc_delay_factor, 2.0);
}

TEST(Nic, HtbCeilLimitsBeAndProtectsLc)
{
    NicRequest req;
    req.lc_demand_gbps = 8.0;
    req.be_demand_gbps = 20.0;
    req.be_ceil_gbps = 1.5;
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_DOUBLE_EQ(out.be_granted_gbps, 1.5);
    EXPECT_DOUBLE_EQ(out.lc_granted_gbps, 8.0);
    EXPECT_FALSE(out.lc_overloaded);
    EXPECT_EQ(out.lc_drop_prob, 0.0);
}

TEST(Nic, LcOverloadFlagged)
{
    NicRequest req;
    req.lc_demand_gbps = 12.0;  // more than the link itself
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_TRUE(out.lc_overloaded);
    EXPECT_GT(out.lc_delay_factor, 50.0);
}

TEST(Nic, NoDropsWithoutSwarm)
{
    NicRequest req;
    req.lc_demand_gbps = 9.9;  // near saturation but alone on the link
    const auto out = ResolveNic(Cfg(), req);
    EXPECT_EQ(out.lc_drop_prob, 0.0);
}

// --------------------------------------------------------------------------
// Machine (integration of the resolvers)

/** Minimal configurable client for machine tests. */
class FakeClient : public ResourceClient
{
  public:
    explicit FakeClient(std::string name, bool lc = false)
        : name_(std::move(name)), lc_(lc)
    {
    }
    const std::string& name() const override { return name_; }
    bool is_lc() const override { return lc_; }
    double CpuBusyFraction() const override { return busy; }
    double LlcFootprintMb(int) const override { return footprint; }
    double LlcAccessWeight(int) const override { return weight; }
    double
    DramDemandGbps(int, double) const override
    {
        return dram_per_socket;
    }
    double PowerIntensity() const override { return intensity; }
    double NetTxDemandGbps() const override { return net; }
    double HtAggression() const override { return aggression; }

    double busy = 1.0, footprint = 10.0, weight = 10.0;
    double dram_per_socket = 5.0, intensity = 1.0, net = 0.0;
    double aggression = 1.3;

  private:
    std::string name_;
    bool lc_;
};

TEST(Machine, RegistersAndResolves)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a", true);
    m.AddClient(&a);
    m.AssignCpus(&a, m.topology().PhysicalCores(0, 4));
    m.ResolveNow();
    const TaskView& v = m.ViewOf(&a);
    EXPECT_GT(v.freq_ghz, Cfg().nominal_ghz);  // few cores -> turbo
    EXPECT_NEAR(v.llc_mb[0] + v.llc_mb[1], 10.0, 1e-6);
    m.RemoveClient(&a);
}

TEST(MachineDeath, OverlappingCpusetsAbort)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a"), b("b");
    m.AddClient(&a);
    m.AddClient(&b);
    m.AssignCpus(&a, CpuSet::Range(0, 4));
    EXPECT_DEATH(m.AssignCpus(&b, CpuSet::Range(2, 4)), "overlap");
}

TEST(Machine, SharingAllowedWhenEnabled)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    m.AllowCpuSharing(true);
    FakeClient a("a"), b("b");
    m.AddClient(&a);
    m.AddClient(&b);
    m.AssignCpus(&a, CpuSet::Range(0, 4));
    m.AssignCpus(&b, CpuSet::Range(0, 4));  // no abort
    m.ResolveNow();
    // Same-cpu sharing imposes a strong HT-style penalty.
    EXPECT_GT(m.ViewOf(&a).ht_penalty, 1.3);
}

TEST(Machine, HtPenaltyOnlyWhenSiblingsShared)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient lc("lc", true), be("be");
    m.AddClient(&lc);
    m.AddClient(&be);
    const auto& topo = m.topology();
    // Disjoint physical cores: no penalty.
    m.AssignCpus(&lc, topo.PhysicalCores(0, 4));
    m.AssignCpus(&be, topo.PhysicalCores(4, 4));
    m.ResolveNow();
    EXPECT_NEAR(m.ViewOf(&lc).ht_penalty, 1.0, 1e-9);
    // Sibling threads of the same cores: penalty appears.
    m.AssignCpus(&be, CpuSet());
    m.AssignCpus(&lc, topo.ThreadOfCores(0, 4, 0));
    m.AssignCpus(&be, topo.ThreadOfCores(0, 4, 1));
    m.ResolveNow();
    EXPECT_GT(m.ViewOf(&lc).ht_penalty, 1.2);
}

TEST(Machine, CatWaysReduceEffectiveCache)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a");
    a.footprint = 40.0;
    m.AddClient(&a);
    m.AssignCpus(&a, m.topology().PhysicalCores(0, 18));  // socket 0
    m.ResolveNow();
    EXPECT_NEAR(m.ViewOf(&a).llc_mb[0], 40.0, 1e-6);
    m.SetCatWays(&a, 4);
    m.ResolveNow();
    EXPECT_NEAR(m.ViewOf(&a).llc_mb[0], 4 * Cfg().MbPerWay(), 1e-6);
}

TEST(Machine, DramSaturationStretchesAccessTime)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a");
    a.dram_per_socket = 60.0;  // > 50 peak per socket
    m.AddClient(&a);
    m.AssignCpus(&a, m.topology().PhysicalCores(0, 18));
    m.ResolveNow();
    EXPECT_GT(m.ViewOf(&a).dram_stretch, 2.0);
    EXPECT_LE(m.ViewOf(&a).dram_granted_gbps[0], 50.0 + 1e-6);
}

TEST(Machine, CountersAreNoisyButClose)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a");
    a.dram_per_socket = 20.0;
    m.AddClient(&a);
    m.AssignCpus(&a, m.topology().PhysicalCores(0, 18));
    m.ResolveNow();
    for (int i = 0; i < 50; ++i) {
        const double r = m.MeasuredDramGbps(0);
        EXPECT_NEAR(r, 20.0, 20.0 * Cfg().counter_noise + 1e-9);
    }
}

TEST(Machine, FreqCapAppliesToClientCores)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a"), b("b");
    m.AddClient(&a);
    m.AddClient(&b);
    m.AssignCpus(&a, m.topology().PhysicalCores(0, 9));
    m.AssignCpus(&b, m.topology().PhysicalCores(9, 9));
    m.SetFreqCapGhz(&b, 1.2);
    m.ResolveNow();
    EXPECT_LE(m.MeasuredFreqGhz(&b), 1.2 + 1e-9);
    EXPECT_GT(m.MeasuredFreqGhz(&a), 2.0);
}

TEST(Machine, NetworkShapingViaBeCeil)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient lc("lc", true), be("be");
    lc.net = 6.0;
    be.net = 20.0;
    m.AddClient(&lc);
    m.AddClient(&be);
    m.AssignCpus(&lc, m.topology().PhysicalCores(0, 8));
    m.AssignCpus(&be, m.topology().PhysicalCores(8, 8));
    m.SetBeNetCeilGbps(2.0);
    m.ResolveNow();
    EXPECT_NEAR(m.BeTxGbps(), 2.0, 1e-6);
    EXPECT_NEAR(m.LcTxGbps(), 6.0, 1e-6);
}

TEST(Machine, TelemetryAveragesOverTime)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a");
    m.AddClient(&a);
    m.AssignCpus(&a, m.topology().PhysicalCores(0, 18));
    m.ResolveNow();
    m.ResetTelemetryAverages();
    q.RunFor(sim::Seconds(2));
    const MachineTelemetry t = m.AveragedTelemetry();
    EXPECT_GT(t.power_w, 0.0);
    EXPECT_GT(t.cpu_utilization, 0.0);
    // The client only has cpus on socket 0, so only that socket's demand
    // (5 GB/s) is granted.
    EXPECT_NEAR(t.dram_gbps, 5.0, 0.5);
}

TEST(Machine, EmptyCpusetNeutralView)
{
    sim::EventQueue q;
    Machine m(Cfg(), q);
    FakeClient a("a");
    m.AddClient(&a);
    m.ResolveNow();
    const TaskView& v = m.ViewOf(&a);
    EXPECT_DOUBLE_EQ(v.dram_stretch, 1.0);
    EXPECT_DOUBLE_EQ(v.TotalLlcMb(), 0.0);
}

}  // namespace
}  // namespace heracles::hw
