/**
 * @file
 * Tests for the composable cluster layer: the pure scheduler decision
 * engine, the pluggable topologies, and the end-to-end guarantees the
 * refactor must keep — static-split byte-equivalence with the
 * pre-refactor cluster on the checked-in goldens, placement determinism
 * under a fixed seed, and the greedy scheduler's EMU win over the
 * static split on the heterogeneous diurnal scenario.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "cluster/scheduler.h"
#include "cluster/topology.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

namespace heracles {
namespace {

using cluster::ClusterScheduler;
using cluster::SchedulerConfig;
using cluster::SchedulerPolicy;

using LeafState = ClusterScheduler::LeafState;
using Move = ClusterScheduler::Move;

LeafState
Idle(double slack)
{
    LeafState s;
    s.slack = slack;
    s.has_signal = true;
    return s;
}

LeafState
Hosting(double slack, bool be_enabled)
{
    LeafState s = Idle(slack);
    s.hosts_job = true;
    s.be_enabled = be_enabled;
    return s;
}

// --------------------------------------------------------------------------
// ClusterScheduler: pure decision engine

TEST(Scheduler, GreedyPlacesOnMostSlackFirst)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    ClusterScheduler sched(cfg, /*jobs=*/2, /*leaves=*/4);

    const auto moves = sched.Tick(
        {Idle(0.2), Idle(0.5), Idle(0.9), Idle(0.4)});
    ASSERT_EQ(moves.size(), 2u);
    EXPECT_EQ(moves[0].job, 0);
    EXPECT_EQ(moves[0].from, -1);
    EXPECT_EQ(moves[0].to, 2);  // most slack
    EXPECT_EQ(moves[1].job, 1);
    EXPECT_EQ(moves[1].to, 1);  // next-most among free leaves
    EXPECT_EQ(sched.stats().placements, 2u);
    EXPECT_EQ(sched.stats().migrations, 0u);
    EXPECT_EQ(sched.QueuedJobs(), 0);
}

TEST(Scheduler, GreedyHoldsJobsBelowPlacementFloor)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    ClusterScheduler sched(cfg, 2, 3);

    EXPECT_TRUE(sched.Tick({Idle(0.05), Idle(0.08), Idle(0.02)}).empty());
    EXPECT_EQ(sched.QueuedJobs(), 2);

    // Slack recovers on one leaf: exactly one job leaves the queue.
    const auto moves = sched.Tick({Idle(0.05), Idle(0.4), Idle(0.02)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].to, 1);
    EXPECT_EQ(sched.QueuedJobs(), 1);
}

TEST(Scheduler, GreedySkipsCooldownLeaves)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    ClusterScheduler sched(cfg, 1, 2);

    LeafState cooling = Idle(0.9);
    cooling.in_cooldown = true;
    const auto moves = sched.Tick({cooling, Idle(0.3)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].to, 1);
}

TEST(Scheduler, GreedyMigratesAwayFromStarvedLeafAfterResidency)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    cfg.min_resident_ticks = 2;
    ClusterScheduler sched(cfg, 1, 3);

    ASSERT_EQ(sched.Tick({Idle(0.8), Idle(0.3), Idle(0.2)}).size(), 1u);
    ASSERT_EQ(sched.LeafOf(0), 0);

    // The hosting leaf stops running BE (load safeguard): no move on
    // the first starved tick (residency), migration on the second.
    EXPECT_TRUE(
        sched.Tick({Hosting(0.8, false), Idle(0.3), Idle(0.2)}).empty());
    const auto moves =
        sched.Tick({Hosting(0.8, false), Idle(0.3), Idle(0.2)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, 0);
    EXPECT_EQ(moves[0].to, 1);
    EXPECT_EQ(sched.stats().migrations, 1u);
    EXPECT_EQ(sched.LeafOf(0), 1);
}

TEST(Scheduler, GreedySlackMigrationNeedsHysteresisGain)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    cfg.min_resident_ticks = 1;
    ClusterScheduler sched(cfg, 1, 2);

    ASSERT_EQ(sched.Tick({Idle(0.5), Idle(0.4)}).size(), 1u);

    // Source slack collapsed below the migrate floor, but BE still
    // runs and the destination is not better by migrate_min_gain.
    EXPECT_TRUE(sched.Tick({Hosting(0.04, true), Idle(0.1)}).empty());
    // A clearly better destination: the job moves.
    const auto moves = sched.Tick({Hosting(0.04, true), Idle(0.5)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, 0);
    EXPECT_EQ(moves[0].to, 1);
}

TEST(Scheduler, RoundRobinIgnoresSlackAndRotates)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kRoundRobin;
    cfg.min_resident_ticks = 1;
    ClusterScheduler sched(cfg, 2, 4);

    // Placement ignores slack: jobs land on leaves 0 and 1 even though
    // leaf 3 has far more slack.
    const auto moves =
        sched.Tick({Idle(0.02), Idle(0.05), Idle(0.1), Idle(0.9)});
    ASSERT_EQ(moves.size(), 2u);
    EXPECT_EQ(moves[0].to, 0);
    EXPECT_EQ(moves[1].to, 1);

    // A starved job moves to the next leaf in rotation, not the best.
    const auto mig = sched.Tick({Hosting(0.02, false),
                                 Hosting(0.05, true), Idle(0.1),
                                 Idle(0.9)});
    ASSERT_EQ(mig.size(), 1u);
    EXPECT_EQ(mig[0].from, 0);
    EXPECT_EQ(mig[0].to, 2);
    EXPECT_EQ(sched.stats().placements, 2u);
    EXPECT_EQ(sched.stats().migrations, 1u);
}

TEST(Scheduler, CounterAccountingMatchesMoves)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    cfg.min_resident_ticks = 1;
    ClusterScheduler sched(cfg, 2, 3);

    uint64_t placements = 0, migrations = 0;
    std::vector<std::vector<LeafState>> rounds = {
        {Idle(0.5), Idle(0.3), Idle(0.02)},
        {Hosting(0.5, false), Hosting(0.3, true), Idle(0.4)},
        {Idle(0.5), Hosting(0.3, true), Hosting(0.4, false)},
        {Hosting(0.6, true), Hosting(0.3, true), Idle(0.4)},
    };
    for (auto& r : rounds) {
        // Keep hosts_job consistent with the engine's own assignment.
        for (size_t i = 0; i < r.size(); ++i) {
            bool hosts = false;
            for (int j = 0; j < 2; ++j) {
                hosts |= sched.LeafOf(j) == static_cast<int>(i);
            }
            r[i].hosts_job = hosts;
        }
        for (const Move& m : sched.Tick(r)) {
            if (m.from < 0) {
                ++placements;
            } else {
                ++migrations;
            }
        }
    }
    EXPECT_EQ(sched.stats().placements, placements);
    EXPECT_EQ(sched.stats().migrations, migrations);
    EXPECT_EQ(sched.stats().ticks, rounds.size());
}

TEST(Scheduler, NeverPlacesOntoCrashedLeaf)
{
    // Both dynamic policies must treat a crashed leaf as unplaceable no
    // matter how attractive its (stale) slack looks.
    for (SchedulerPolicy policy :
         {SchedulerPolicy::kGreedySlack, SchedulerPolicy::kRoundRobin}) {
        SchedulerConfig cfg;
        cfg.policy = policy;
        ClusterScheduler sched(cfg, /*jobs=*/2, /*leaves=*/3);
        LeafState dead = Idle(0.95);
        dead.crashed = true;
        const auto moves =
            sched.Tick({dead, Idle(0.4), Idle(0.3)});
        ASSERT_EQ(moves.size(), 2u) << cluster::SchedulerPolicyName(policy);
        for (const Move& m : moves) {
            EXPECT_NE(m.to, 0) << cluster::SchedulerPolicyName(policy);
        }
    }
}

TEST(Scheduler, AllLeavesCrashedKeepsJobsQueued)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    ClusterScheduler sched(cfg, /*jobs=*/1, /*leaves=*/2);
    LeafState dead = Idle(0.9);
    dead.crashed = true;
    EXPECT_TRUE(sched.Tick({dead, dead}).empty());
    EXPECT_EQ(sched.QueuedJobs(), 1);
}

TEST(Scheduler, ReleasedJobIsReplacedOnALiveLeaf)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    ClusterScheduler sched(cfg, /*jobs=*/1, /*leaves=*/3);
    ASSERT_EQ(sched.Tick({Idle(0.9), Idle(0.4), Idle(0.3)}).size(), 1u);
    ASSERT_EQ(sched.LeafOf(0), 0);

    // The hosting leaf crashes: the cluster layer evicts the job and
    // hands it back without a Move.
    sched.ReleaseJob(0);
    EXPECT_EQ(sched.LeafOf(0), -1);
    EXPECT_EQ(sched.QueuedJobs(), 1);

    LeafState dead = Idle(0.9);
    dead.crashed = true;
    const auto moves = sched.Tick({dead, Idle(0.4), Idle(0.3)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, -1) << "a re-placement, not a migration";
    EXPECT_EQ(moves[0].to, 1) << "best *live* leaf";
    EXPECT_EQ(sched.stats().placements, 2u);
    EXPECT_EQ(sched.stats().migrations, 0u);
}

// --------------------------------------------------------------------------
// Predictive policy: fingerprint table ranks, live slack only vetoes

TEST(Scheduler, PredictivePlacesByPredictionNotSlack)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;
    ClusterScheduler sched(cfg, /*jobs=*/1, /*leaves=*/3);
    // Leaf 0 has the most slack but the worst prediction; leaf 2 is the
    // fingerprint favorite.
    sched.SetPredictions({{2.0, 1.8, 1.5}});
    const auto moves = sched.Tick({Idle(0.9), Idle(0.5), Idle(0.4)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].to, 2);
}

TEST(Scheduler, PredictiveSlackVetoExcludesPredictedBest)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;
    ClusterScheduler sched(cfg, 1, 3);
    sched.SetPredictions({{2.0, 1.8, 1.5}});
    // The predicted-best leaf sits below the placement floor: reaction
    // vetoes, prediction falls back to its next choice.
    const auto moves = sched.Tick({Idle(0.9), Idle(0.5), Idle(0.02)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].to, 1);
}

TEST(Scheduler, PredictiveToleranceCapHoldsJobQueued)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;  // tolerance 1.6
    ClusterScheduler sched(cfg, 1, 3);
    sched.SetPredictions({{1.0, 2.0, 5.0}});
    // The only sane machine (leaf 0, the cap reference) is down; both
    // live leaves are predicted past 1.6x the pod best, so the job
    // holds queued rather than feed a leaf that will starve it.
    LeafState dead = Idle(0.9);
    dead.crashed = true;
    EXPECT_TRUE(sched.Tick({dead, Idle(0.8), Idle(0.7)}).empty());
    EXPECT_EQ(sched.QueuedJobs(), 1);

    // The sane leaf comes back: the held job lands exactly there.
    const auto moves = sched.Tick({Idle(0.9), Idle(0.8), Idle(0.7)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].to, 0);
}

TEST(Scheduler, PredictiveRegretOrdersPlacements)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;
    ClusterScheduler sched(cfg, /*jobs=*/2, /*leaves=*/3);
    // Job 0 barely cares where it lands; job 1 loses big unless it gets
    // leaf 0. Index order would hand leaf 0 to the indifferent job;
    // regret order places the choosy job first.
    sched.SetPredictions({{1.0, 1.05, 1.1}, {1.0, 3.0, 3.2}});
    const auto moves = sched.Tick({Idle(0.5), Idle(0.5), Idle(0.5)});
    ASSERT_EQ(moves.size(), 2u);
    EXPECT_EQ(moves[0].job, 1);
    EXPECT_EQ(moves[0].to, 0);
    EXPECT_EQ(moves[1].job, 0);
    EXPECT_EQ(moves[1].to, 1);
}

TEST(Scheduler, PredictiveStarvedMoveNeedsPredictedBetter)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;
    cfg.min_resident_ticks = 1;
    ClusterScheduler sched(cfg, 1, 2);
    sched.SetPredictions({{2.0, 2.04}});
    ASSERT_EQ(sched.Tick({Idle(0.5), Idle(0.5)}).size(), 1u);
    ASSERT_EQ(sched.LeafOf(0), 0);

    // Starved on the fingerprint-best leaf: the only destination is
    // predicted worse, so the job holds its ground instead of
    // panic-hopping (the controller will re-enable it; a worse host
    // never stops being worse).
    EXPECT_TRUE(sched.Tick({Hosting(0.5, false), Idle(0.9)}).empty());
    EXPECT_EQ(sched.LeafOf(0), 0);
}

TEST(Scheduler, PredictiveEvictionWaivesMarginNotDirection)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;  // predict_min_gain 0.05
    cfg.min_resident_ticks = 1;
    ClusterScheduler sched(cfg, 1, 2);
    // Best leaf taken at placement time: the job settles for leaf 1.
    sched.SetPredictions({{1.98, 2.0}});
    ASSERT_EQ(sched.Tick({Hosting(0.5, true), Idle(0.5)}).size(), 1u);
    ASSERT_EQ(sched.LeafOf(0), 1);

    // Tight slack with BE still running: gain 0.02 is under the 0.05
    // margin, so the hysteresis holds the job.
    EXPECT_TRUE(sched.Tick({Idle(0.9), Hosting(0.04, true)}).empty());

    // Outright starvation waives the margin: the same 0.02 gain now
    // moves the job to the predicted-better leaf.
    const auto moves = sched.Tick({Idle(0.9), Hosting(0.5, false)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, 1);
    EXPECT_EQ(moves[0].to, 0);
}

TEST(Scheduler, AllLeavesDownEveryPolicyHoldsQueue)
{
    // A pod with every leaf crashed (or cooling down) must not spin,
    // move, or fake-place under any dynamic policy; jobs stay queued
    // until a leaf actually recovers.
    for (SchedulerPolicy policy :
         {SchedulerPolicy::kGreedySlack, SchedulerPolicy::kRoundRobin,
          SchedulerPolicy::kPredictive}) {
        SchedulerConfig cfg;
        cfg.policy = policy;
        ClusterScheduler sched(cfg, /*jobs=*/1, /*leaves=*/2);
        if (policy == SchedulerPolicy::kPredictive) {
            sched.SetPredictions({{1.0, 1.0}});
        }
        LeafState dead = Idle(0.9);
        dead.crashed = true;
        LeafState cooling = Idle(0.9);
        cooling.in_cooldown = true;

        EXPECT_TRUE(sched.Tick({dead, dead}).empty())
            << cluster::SchedulerPolicyName(policy);
        EXPECT_TRUE(sched.Tick({dead, cooling}).empty())
            << cluster::SchedulerPolicyName(policy);
        EXPECT_EQ(sched.QueuedJobs(), 1)
            << cluster::SchedulerPolicyName(policy);

        // First recovered leaf hosts the queued job — and round-robin's
        // cursor must not have advanced while everything was down.
        const auto moves = sched.Tick({Idle(0.9), dead});
        ASSERT_EQ(moves.size(), 1u)
            << cluster::SchedulerPolicyName(policy);
        EXPECT_EQ(moves[0].to, 0) << cluster::SchedulerPolicyName(policy);
        EXPECT_EQ(sched.QueuedJobs(), 0)
            << cluster::SchedulerPolicyName(policy);
    }
}

TEST(Scheduler, PredictiveReleaseThenReplaceHonorsCap)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;
    ClusterScheduler sched(cfg, 1, 2);
    sched.SetPredictions({{1.0, 1.5}});
    ASSERT_EQ(sched.Tick({Idle(0.5), Idle(0.5)}).size(), 1u);
    ASSERT_EQ(sched.LeafOf(0), 0);

    // The hosting leaf crashes; the cluster layer hands the job back.
    sched.ReleaseJob(0);
    EXPECT_EQ(sched.LeafOf(0), -1);
    EXPECT_EQ(sched.QueuedJobs(), 1);

    // Re-placement lands on the surviving leaf: predicted 1.5 is within
    // the 1.6x tolerance of the (dead) pod-best machine.
    LeafState dead = Idle(0.9);
    dead.crashed = true;
    const auto moves = sched.Tick({dead, Idle(0.5)});
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].from, -1);
    EXPECT_EQ(moves[0].to, 1);
}

TEST(SchedulerDeath, LeafOfAndReleaseJobRejectBadIndices)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    ClusterScheduler sched(cfg, /*jobs=*/2, /*leaves=*/3);
    EXPECT_DEATH(sched.LeafOf(-1), "bad job index");
    EXPECT_DEATH(sched.LeafOf(2), "bad job index");
    EXPECT_DEATH(sched.ReleaseJob(-1), "bad job index");
    EXPECT_DEATH(sched.ReleaseJob(2), "bad job index");
}

TEST(SchedulerDeath, PredictiveRequiresMatchingTable)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kPredictive;
    ClusterScheduler sched(cfg, 1, 2);
    EXPECT_DEATH(sched.Tick({Idle(0.5), Idle(0.5)}), "SetPredictions");
    EXPECT_DEATH(sched.SetPredictions({{1.0, 2.0}, {1.0, 2.0}}),
                 "prediction table");
    sched.SetPredictions({{1.0}});
    EXPECT_DEATH(sched.Tick({Idle(0.5), Idle(0.5)}),
                 "prediction table covers");
}

TEST(SchedulerDeath, StaticSplitNeverTicks)
{
    SchedulerConfig cfg;  // kStaticSplit
    ClusterScheduler sched(cfg, 1, 2);
    EXPECT_DEATH(sched.Tick({Idle(0.5), Idle(0.5)}), "static-split");
}

TEST(SchedulerDeath, RejectsMoreJobsThanLeaves)
{
    SchedulerConfig cfg;
    cfg.policy = SchedulerPolicy::kGreedySlack;
    EXPECT_DEATH(ClusterScheduler(cfg, 3, 2), "more BE jobs");
}

// --------------------------------------------------------------------------
// Topologies

TEST(Topology, FullFanoutTouchesEveryLeaf)
{
    cluster::FullFanoutTopology topo(5);
    std::vector<int> touched;
    topo.TouchedLeaves(17, &touched);
    EXPECT_EQ(touched, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(topo.FanOut(), 5);
}

TEST(Topology, ShardedTouchesOneReplicaPerShard)
{
    cluster::ShardedTopology topo(/*leaves=*/6, /*shards=*/3, /*seed=*/7);
    std::vector<int> touched;
    for (uint64_t tag = 1; tag <= 200; ++tag) {
        topo.TouchedLeaves(tag, &touched);
        ASSERT_EQ(touched.size(), 3u);
        for (int s = 0; s < 3; ++s) {
            // The s-th entry serves shard s: leaf index ≡ s (mod 3).
            EXPECT_EQ(touched[s] % 3, s);
            EXPECT_LT(touched[s], 6);
        }
    }
}

TEST(Topology, ShardedIsDeterministicAndUsesAllReplicas)
{
    cluster::ShardedTopology a(8, 2, 42), b(8, 2, 42);
    std::set<int> seen;
    std::vector<int> ta, tb;
    for (uint64_t tag = 1; tag <= 500; ++tag) {
        a.TouchedLeaves(tag, &ta);
        b.TouchedLeaves(tag, &tb);
        EXPECT_EQ(ta, tb);
        seen.insert(ta.begin(), ta.end());
    }
    EXPECT_EQ(seen.size(), 8u) << "some replica never selected";
}

TEST(Topology, ShardsEqualLeavesDegeneratesToFullFanout)
{
    cluster::ShardedTopology topo(4, 4, 9);
    std::vector<int> touched;
    topo.TouchedLeaves(123, &touched);
    EXPECT_EQ(touched, (std::vector<int>{0, 1, 2, 3}));
}

// --------------------------------------------------------------------------
// End-to-end guarantees (golden-scale scenario runs, cached)

const scenarios::ScenarioMetrics&
GoldenRun(const std::string& name)
{
    static std::map<std::string, scenarios::ScenarioMetrics>* cache =
        new std::map<std::string, scenarios::ScenarioMetrics>();
    auto it = cache->find(name);
    if (it == cache->end()) {
        it = cache
                 ->emplace(name,
                           scenarios::RunScenario(
                               scenarios::MustFindScenario(name),
                               scenarios::RunOptions::Golden()))
                 .first;
    }
    return it->second;
}

/**
 * The refactor's ground rule: a static-split, full-fan-out cluster must
 * reproduce the pre-refactor ClusterExperiment bit for bit. The
 * checked-in cluster_websearch_* goldens were generated by the old
 * implementation, so comparing *exactly* (not within tolerance) proves
 * byte-equivalence of every metric.
 */
TEST(ClusterRefactor, StaticSplitByteIdenticalToPreRefactorGoldens)
{
    for (const char* name :
         {"cluster_websearch_heracles", "cluster_websearch_baseline",
          "cluster_websearch_central"}) {
        std::ifstream in(std::string(HERACLES_GOLDEN_DIR) + "/" + name +
                         ".json");
        ASSERT_TRUE(in.good()) << name;
        std::stringstream buf;
        buf << in.rdbuf();
        scenarios::ScenarioMetrics golden;
        ASSERT_TRUE(scenarios::MetricsFromJson(buf.str(), &golden))
            << name;
        EXPECT_TRUE(GoldenRun(name).ExactlyEquals(golden))
            << name << " diverged from the pre-refactor baseline";
    }
}

TEST(ClusterRefactor, GreedyPlacementDeterministicUnderFixedSeed)
{
    const scenarios::ScenarioSpec& spec =
        scenarios::MustFindScenario("cluster_hetero_greedy_diurnal");
    const scenarios::ScenarioMetrics a =
        scenarios::RunScenario(spec, scenarios::RunOptions::Golden());
    const scenarios::ScenarioMetrics& b =
        GoldenRun("cluster_hetero_greedy_diurnal");
    EXPECT_TRUE(a.ExactlyEquals(b))
        << "scheduler placements not reproducible from the seed";
    EXPECT_GE(a.be_placements, 2.0) << "both queued jobs should place";
}

TEST(ClusterRefactor, UniformClusterDerivesOneLeafTarget)
{
    // The paper's uniform cluster defends one tail target on every
    // leaf: the per-leaf vector must be constant and equal to the
    // reported mean.
    cluster::ClusterExperiment e(scenarios::ClusterConfigFor(
        scenarios::MustFindScenario("cluster_websearch_heracles"),
        scenarios::RunOptions::Golden()));
    const std::vector<sim::Duration>& targets = e.LeafTargets();
    ASSERT_EQ(targets.size(), 3u);
    for (sim::Duration t : targets) {
        EXPECT_GT(t, 0);
        EXPECT_EQ(t, e.LeafTarget());
    }
}

TEST(ClusterRefactor, GreedyBeatsStaticSplitOnHeteroDiurnal)
{
    const scenarios::ScenarioMetrics& greedy =
        GoldenRun("cluster_hetero_greedy_diurnal");
    const scenarios::ScenarioMetrics& pinned =
        GoldenRun("cluster_hetero_static");
    EXPECT_EQ(greedy.slo_attained, 1.0) << "greedy violated the root SLO";
    EXPECT_GT(greedy.emu, pinned.emu)
        << "slack-aware placement should strictly beat the static split";
}

TEST(ClusterRefactor, PredictiveBeatsGreedyUnderChaosPairs)
{
    // The predictive tier's reason to exist: in the twinned chaos
    // scenarios (identical cluster, identical fault plan, only the
    // policy differs) greedy chases a slack export frozen at its happy
    // pre-crowd snapshot while the fingerprint table never trusted that
    // leaf. Predictive must win mean EMU in both pairs without giving
    // back any root-SLO attainment.
    for (const char* pair : {"blind", "crash"}) {
        const scenarios::ScenarioMetrics& greedy = GoldenRun(
            std::string("chaos_hetero_") + pair + "_greedy");
        const scenarios::ScenarioMetrics& pred =
            GoldenRun(std::string("chaos_hetero_") + pair + "_pred");
        EXPECT_GT(pred.emu, greedy.emu)
            << pair << ": prediction should beat the frozen export";
        EXPECT_GE(pred.slo_attained, greedy.slo_attained)
            << pair << ": the EMU win must not cost SLO attainment";
    }
}

TEST(ClusterRefactor, PredictiveMonitorActsExactlyLikeGreedy)
{
    // predict_only is CPI2-style shadow mode: identical acted decisions
    // to greedy-slack (same EMU, placements, migrations), plus the
    // would-have counters recording where prediction disagreed.
    const scenarios::ScenarioMetrics& greedy =
        GoldenRun("cluster_hetero_greedy_diurnal");
    const scenarios::ScenarioMetrics& monitor =
        GoldenRun("cluster_hetero_pred_monitor");
    EXPECT_EQ(monitor.emu, greedy.emu);
    EXPECT_EQ(monitor.be_placements, greedy.be_placements);
    EXPECT_EQ(monitor.be_migrations, greedy.be_migrations);
    EXPECT_GE(monitor.be_would_placements +
                  monitor.be_would_migrations,
              1.0)
        << "shadow mode should record at least one disagreement here";
    EXPECT_EQ(greedy.be_would_placements, 0.0)
        << "acting policies never count would-haves";
}

}  // namespace
}  // namespace heracles
