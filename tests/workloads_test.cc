/**
 * @file
 * Tests for the workload models: the LC queueing engine, the three
 * paper workload parameterizations, BE tasks and antagonist profiles.
 */
#include <gtest/gtest.h>

#include "workloads/antagonists.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"
#include "workloads/lc_configs.h"

namespace heracles::workloads {
namespace {

hw::MachineConfig
Cfg()
{
    return hw::MachineConfig{};
}

/** A small fixture owning one machine + LC app. */
struct LcRig {
    explicit LcRig(const LcParams& params, uint64_t seed = 3)
        : machine(Cfg(), queue), app(machine, params, seed)
    {
    }

    void
    RunAlone(double load, sim::Duration warmup, sim::Duration measure)
    {
        app.SetCpus(machine.topology().PhysicalCores(
            0, machine.config().TotalCores()));
        app.SetLoad(load);
        app.Start();
        machine.ResolveNow();
        queue.RunFor(warmup);
        app.ResetStats();
        queue.RunFor(measure);
    }

    sim::EventQueue queue;
    hw::Machine machine;
    LcApp app;
};

// --------------------------------------------------------------------------
// Workload configurations (Section 3.1 facts)

TEST(LcConfigs, ThreeWorkloadsDefined)
{
    const auto all = AllLcWorkloads();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0].name, "websearch");
    EXPECT_EQ(all[1].name, "ml_cluster");
    EXPECT_EQ(all[2].name, "memkeyval");
}

TEST(LcConfigs, SloPercentilesMatchPaper)
{
    EXPECT_DOUBLE_EQ(Websearch().slo_percentile, 0.99);
    EXPECT_DOUBLE_EQ(MlCluster().slo_percentile, 0.95);
    EXPECT_DOUBLE_EQ(Memkeyval().slo_percentile, 0.99);
}

TEST(LcConfigs, SloScalesMatchPaper)
{
    // websearch / ml_cluster: tens of milliseconds.
    EXPECT_GE(Websearch().slo_latency, sim::Millis(10));
    EXPECT_GE(MlCluster().slo_latency, sim::Millis(10));
    // memkeyval: hundreds of microseconds.
    EXPECT_LT(Memkeyval().slo_latency, sim::Millis(1));
}

TEST(LcConfigs, DramFractionsMatchPaper)
{
    EXPECT_DOUBLE_EQ(Websearch().peak_dram_frac, 0.40);
    EXPECT_DOUBLE_EQ(MlCluster().peak_dram_frac, 0.60);
    EXPECT_DOUBLE_EQ(Memkeyval().peak_dram_frac, 0.20);
}

TEST(LcConfigs, MlClusterBandwidthIsSuperLinear)
{
    EXPECT_GT(MlCluster().bw_load_exp, 1.0);
}

TEST(LcConfigs, MemkeyvalIsNetworkLimitedAtPeak)
{
    const auto p = Memkeyval();
    const double peak_gbps = p.peak_qps * p.resp_bytes * 8.0 / 1e9;
    EXPECT_GT(peak_gbps, 0.9 * Cfg().nic_gbps);
    EXPECT_LE(peak_gbps, 1.05 * Cfg().nic_gbps);
}

TEST(LcConfigs, WithWindowsOverrides)
{
    const auto p =
        WithWindows(Websearch(), sim::Seconds(30), sim::Seconds(5));
    EXPECT_EQ(p.report_window, sim::Seconds(30));
    EXPECT_EQ(p.ctl_window, sim::Seconds(5));
}

// --------------------------------------------------------------------------
// Analytic helpers

TEST(LcAnalytic, WebsearchBandwidthHitsPaperFraction)
{
    const auto p = Websearch();
    // Warm cache at full load: ~40% of the machine's 100 GB/s.
    const double full_cache = 100.0;
    const double bw = LcApp::AnalyticDramGbps(p, Cfg(), 1.0, full_cache);
    EXPECT_NEAR(bw, 0.40 * Cfg().TotalDramGbps(), 1.0);
}

TEST(LcAnalytic, BandwidthGrowsWithLoad)
{
    for (const auto& p : AllLcWorkloads()) {
        double prev = -1.0;
        for (double load = 0.1; load <= 1.0; load += 0.1) {
            const double bw = LcApp::AnalyticDramGbps(p, Cfg(), load, 100.0);
            EXPECT_GT(bw, prev) << p.name << " @ " << load;
            prev = bw;
        }
    }
}

TEST(LcAnalytic, CacheStarvationRaisesBandwidth)
{
    for (const auto& p : AllLcWorkloads()) {
        const double warm = LcApp::AnalyticDramGbps(p, Cfg(), 0.8, 100.0);
        const double cold = LcApp::AnalyticDramGbps(p, Cfg(), 0.8, 1.0);
        EXPECT_GT(cold, warm * 1.5) << p.name;
    }
}

TEST(LcAnalytic, CacheFactorsBounds)
{
    for (const auto& p : AllLcWorkloads()) {
        const auto [ip0, dm0] = LcApp::CacheFactorsFor(p, 0.5, 0.0);
        EXPECT_NEAR(ip0, p.cache.instr_miss_penalty, 1e-9);
        EXPECT_NEAR(dm0, p.cache.mem_miss_ceil, 1e-9);
        const auto [ip1, dm1] = LcApp::CacheFactorsFor(p, 0.5, 1000.0);
        EXPECT_NEAR(ip1, 1.0, 1e-9);
        EXPECT_NEAR(dm1, 1.0, 1e-9);
    }
}

TEST(LcAnalytic, CacheFactorsMonotoneInCache)
{
    const auto p = Websearch();
    double prev_ip = 1e9, prev_dm = 1e9;
    for (double mb = 0.0; mb <= 50.0; mb += 2.5) {
        const auto [ip, dm] = LcApp::CacheFactorsFor(p, 0.7, mb);
        EXPECT_LE(ip, prev_ip);
        EXPECT_LE(dm, prev_dm);
        prev_ip = ip;
        prev_dm = dm;
    }
}

TEST(LcAnalytic, FootprintGrowsWithLoad)
{
    for (const auto& p : AllLcWorkloads()) {
        EXPECT_LT(LcApp::DataFootprintMb(p, 0.1),
                  LcApp::DataFootprintMb(p, 0.9))
            << p.name;
    }
}

TEST(LcAnalytic, MinCoresMonotoneInLoad)
{
    LcRig rig(Websearch());
    int prev = 0;
    for (double load = 0.05; load <= 1.0; load += 0.05) {
        const int cores = rig.app.MinPhysCoresForLoad(load);
        EXPECT_GE(cores, prev);
        prev = cores;
    }
    EXPECT_LE(prev, Cfg().TotalCores());
}

TEST(LcAnalytic, MinCoresTighterUtilNeedsFewerCores)
{
    LcRig rig(Websearch());
    EXPECT_LE(rig.app.MinPhysCoresForLoad(0.5, 0.9),
              rig.app.MinPhysCoresForLoad(0.5, 0.5));
}

// --------------------------------------------------------------------------
// LcApp dynamics (short simulations)

class LcAppAloneTest
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(LcAppAloneTest, MeetsSloAlone)
{
    const auto all = AllLcWorkloads();
    const auto& params = all[std::get<0>(GetParam())];
    const double load = std::get<1>(GetParam());
    LcRig rig(params);
    rig.RunAlone(load, sim::Seconds(20), sim::Seconds(30));
    EXPECT_LE(rig.app.WorstReportTail(), params.slo_latency)
        << params.name << " @ " << load;
}

std::string
LcAloneName(const ::testing::TestParamInfo<std::tuple<int, double>>& info)
{
    static const char* kNames[] = {"websearch", "ml_cluster", "memkeyval"};
    return std::string(kNames[std::get<0>(info.param)]) + "_load" +
           std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAndLoads, LcAppAloneTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9)),
    LcAloneName);

TEST(LcApp, LatencyGrowsWithLoad)
{
    double low_tail, high_tail;
    {
        LcRig rig(Websearch());
        rig.RunAlone(0.2, sim::Seconds(15), sim::Seconds(25));
        low_tail = static_cast<double>(rig.app.WorstReportTail());
    }
    {
        LcRig rig(Websearch());
        rig.RunAlone(0.95, sim::Seconds(15), sim::Seconds(25));
        high_tail = static_cast<double>(rig.app.WorstReportTail());
    }
    EXPECT_GT(high_tail, low_tail);
}

TEST(LcApp, MeasuredQpsTracksTargetLoad)
{
    LcRig rig(Websearch());
    rig.RunAlone(0.5, sim::Seconds(20), sim::Seconds(20));
    EXPECT_NEAR(rig.app.LoadFraction(), 0.5, 0.05);
    EXPECT_NEAR(rig.app.ServedFraction(), 0.5, 0.05);
}

TEST(LcApp, TotalCountsAdvance)
{
    LcRig rig(Websearch());
    rig.RunAlone(0.3, sim::Seconds(5), sim::Seconds(5));
    EXPECT_GT(rig.app.TotalArrived(), 0u);
    EXPECT_NEAR(static_cast<double>(rig.app.TotalCompleted()),
                static_cast<double>(rig.app.TotalArrived()),
                0.05 * rig.app.TotalArrived());
}

TEST(LcApp, BusyFractionReflectsLoad)
{
    LcRig rig(Websearch());
    rig.RunAlone(0.5, sim::Seconds(10), sim::Seconds(10));
    // 0.5 * 11500 qps * 4 ms over 72 threads ~ 32% busy.
    EXPECT_NEAR(rig.app.CpuBusyFraction(), 0.32, 0.08);
}

TEST(LcApp, StarvedByTinyCpusetViolatesSlo)
{
    LcRig rig(Websearch());
    rig.app.SetCpus(rig.machine.topology().PhysicalCores(0, 2));
    rig.app.SetLoad(0.8);
    rig.app.Start();
    rig.machine.ResolveNow();
    rig.queue.RunFor(sim::Seconds(20));
    EXPECT_GT(rig.app.WorstReportTail(), rig.app.params().slo_latency);
    EXPECT_GT(rig.app.QueueDepth(), 100u);
}

TEST(LcApp, FastTailAvailableQuickly)
{
    LcRig rig(Websearch());
    // A fast (~2 s) window completes long before the 15 s controller
    // window does.
    rig.RunAlone(0.4, sim::Seconds(5), sim::Seconds(3));
    EXPECT_GT(rig.app.FastTailLatency(), 0);
    EXPECT_EQ(rig.app.CtlTailLatency(), 0);
}

TEST(LcApp, CtlTailRollsOnRead)
{
    LcRig rig(Websearch());
    rig.RunAlone(0.4, sim::Seconds(10), sim::Seconds(16));
    // A 15s controller window has passed since the stats reset; reading
    // must roll it even if no event landed exactly on the boundary.
    EXPECT_GT(rig.app.CtlTailLatency(), 0);
}

TEST(LcApp, SchedDelayModelInflatesTail)
{
    double clean, delayed;
    {
        LcRig rig(Websearch());
        rig.RunAlone(0.3, sim::Seconds(15), sim::Seconds(20));
        clean = static_cast<double>(rig.app.WorstReportTail());
    }
    {
        LcRig rig(Websearch());
        rig.app.SetSchedDelayModel(0.3, sim::Millis(1), sim::Millis(10));
        rig.RunAlone(0.3, sim::Seconds(15), sim::Seconds(20));
        delayed = static_cast<double>(rig.app.WorstReportTail());
    }
    EXPECT_GT(delayed, clean + static_cast<double>(sim::Millis(4)));
}

TEST(LcApp, ExternalInjectionReportsCompletions)
{
    LcRig rig(Websearch());
    rig.app.SetCpus(rig.machine.topology().PhysicalCores(0, 8));
    rig.app.StartExternal();
    int done = 0;
    sim::Duration last = 0;
    rig.app.SetCompletionCallback([&](uint64_t tag, sim::Duration lat) {
        ++done;
        EXPECT_GT(tag, 0u);
        last = lat;
    });
    for (uint64_t i = 1; i <= 50; ++i) rig.app.InjectRequest(i);
    rig.queue.RunFor(sim::Seconds(2));
    EXPECT_EQ(done, 50);
    EXPECT_GT(last, 0);
}

TEST(LcAppDeath, InjectWithoutExternalAborts)
{
    LcRig rig(Websearch());
    rig.app.SetCpus(rig.machine.topology().PhysicalCores(0, 4));
    rig.app.SetLoad(0.1);
    rig.app.Start();
    EXPECT_DEATH(rig.app.InjectRequest(1), "StartExternal");
}

TEST(LcAppDeath, StartWithoutCpusAborts)
{
    sim::EventQueue queue;
    hw::Machine machine(Cfg(), queue);
    LcApp app(machine, Websearch());
    app.SetLoad(0.5);
    EXPECT_DEATH(app.Start(), "cpus");
}

// --------------------------------------------------------------------------
// BE tasks and antagonists

TEST(BeTask, PausedWithoutCpus)
{
    sim::EventQueue queue;
    hw::Machine machine(Cfg(), queue);
    BeTask be(machine, Brain());
    machine.ResolveNow();
    queue.RunFor(sim::Seconds(1));
    EXPECT_DOUBLE_EQ(be.CurrentRate(), 0.0);
    EXPECT_DOUBLE_EQ(be.CpuBusyFraction(), 0.0);
}

TEST(BeTask, RateGrowsWithCores)
{
    sim::EventQueue queue;
    hw::Machine machine(Cfg(), queue);
    BeTask be(machine, Brain());
    be.SetCpus(machine.topology().PhysicalCores(0, 4));
    machine.ResolveNow();
    const double r4 = be.CurrentRate();
    be.SetCpus(machine.topology().PhysicalCores(0, 12));
    machine.ResolveNow();
    const double r12 = be.CurrentRate();
    EXPECT_GT(r4, 0.0);
    EXPECT_GT(r12, r4 * 1.5);
}

TEST(BeTask, AvgRateAccrues)
{
    sim::EventQueue queue;
    hw::Machine machine(Cfg(), queue);
    BeTask be(machine, Brain());
    be.SetCpus(machine.topology().PhysicalCores(0, 8));
    machine.ResolveNow();
    be.ResetThroughput();
    queue.RunFor(sim::Seconds(5));
    EXPECT_NEAR(be.AvgRate(), be.CurrentRate(), 0.2 * be.CurrentRate());
}

TEST(BeTask, MeasureAloneRatePositive)
{
    for (const char* name :
         {"brain", "streetview", "stream-dram", "iperf"}) {
        const double rate =
            MeasureAloneRate(Cfg(), BeProfileByName(Cfg(), name));
        EXPECT_GT(rate, 0.0) << name;
    }
}

TEST(BeTask, StreetviewIsMemoryBound)
{
    // Alone on the whole machine, streetview's rate equals the granted
    // DRAM bandwidth, which saturates the channels.
    const double rate = MeasureAloneRate(Cfg(), Streetview());
    EXPECT_NEAR(rate, Cfg().TotalDramGbps(), 5.0);
}

TEST(BeTask, CacheSizeBoostsBrain)
{
    sim::EventQueue queue;
    hw::Machine machine(Cfg(), queue);
    BeTask be(machine, Brain());
    be.SetCpus(machine.topology().PhysicalCores(0, 8));
    machine.SetCatWays(&be, 2);  // 4.5 MB of a 24 MB footprint
    machine.ResolveNow();
    const double starved = be.CurrentRate();
    machine.SetCatWays(&be, 12);  // 27 MB: fits
    machine.ResolveNow();
    const double fed = be.CurrentRate();
    EXPECT_GT(fed, starved * 1.2);
}

TEST(Antagonists, ProfilesHaveExpectedShapes)
{
    const auto cfg = Cfg();
    EXPECT_EQ(Spinloop().footprint_mb, 0.0);
    EXPECT_GT(Spinloop().ht_aggression, 1.0);
    EXPECT_NEAR(StreamLlcSmall(cfg).footprint_mb,
                0.25 * cfg.llc_mb_per_socket, 1e-6);
    EXPECT_NEAR(StreamLlcMedium(cfg).footprint_mb,
                0.5 * cfg.llc_mb_per_socket, 1e-6);
    EXPECT_GT(StreamLlcBig(cfg).footprint_mb,
              0.9 * cfg.llc_mb_per_socket);
    EXPECT_GT(StreamDram().footprint_mb, cfg.llc_mb_per_socket * 5);
    EXPECT_GT(CpuPowerVirus().power_intensity, 2.0);
    EXPECT_GT(Iperf().net_demand_gbps, cfg.nic_gbps);
    EXPECT_TRUE(StreamDram().memory_bound);
    EXPECT_TRUE(Iperf().network_bound);
}

TEST(Antagonists, EvaluationSetMatchesPaper)
{
    const auto set = EvaluationBeSet(Cfg());
    ASSERT_EQ(set.size(), 6u);
    std::vector<std::string> names;
    for (const auto& p : set) names.push_back(p.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "brain"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "streetview"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "iperf"), names.end());
}

TEST(AntagonistsDeath, UnknownNameAborts)
{
    EXPECT_DEATH(BeProfileByName(Cfg(), "nonsense"), "unknown");
}

}  // namespace
}  // namespace heracles::workloads
