/**
 * @file
 * Chaos-layer tests: the fault-plan vocabulary and parser, the
 * FaultyPlatform decorator (drop/freeze/noise semantics, pass-through
 * transparency), and the controller-safety invariant harness — both
 * that an honest controller survives degraded runs with zero
 * violations, and that the harness *can* fail: a deliberately broken
 * controller configuration must trip an invariant.
 */
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/faulty_platform.h"
#include "chaos/invariants.h"
#include "fake_platform.h"
#include "heracles/controller.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

namespace heracles::chaos {
namespace {

using heracles::testing::FakePlatform;

// --------------------------------------------------------------------------
// FaultPlan vocabulary and parser

TEST(FaultPlan, ParsesEveryClauseKind)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(ParseFaultPlan(
        "drop:cores@0.3-0.6,noise:tail*0.2@0.1-0.9,freeze:power@0-1,"
        "burst*2.5@0.4-0.5,crash:leaf2@0.3-0.7,slackfreeze:leaf0@0.2-0.4",
        &plan, &error))
        << error;
    ASSERT_EQ(plan.faults.size(), 6u);
    EXPECT_EQ(plan.faults[0].kind, FaultKind::kActuatorDrop);
    EXPECT_EQ(plan.faults[0].actuator, Actuator::kCores);
    EXPECT_DOUBLE_EQ(plan.faults[0].begin, 0.3);
    EXPECT_DOUBLE_EQ(plan.faults[0].end, 0.6);
    EXPECT_EQ(plan.faults[1].kind, FaultKind::kNoise);
    EXPECT_EQ(plan.faults[1].monitor, Monitor::kTail);
    EXPECT_DOUBLE_EQ(plan.faults[1].magnitude, 0.2);
    EXPECT_EQ(plan.faults[2].kind, FaultKind::kFreeze);
    EXPECT_EQ(plan.faults[2].monitor, Monitor::kPower);
    EXPECT_EQ(plan.faults[3].kind, FaultKind::kBurst);
    EXPECT_DOUBLE_EQ(plan.faults[3].magnitude, 2.5);
    EXPECT_EQ(plan.faults[4].kind, FaultKind::kLeafCrash);
    EXPECT_EQ(plan.faults[4].leaf, 2);
    EXPECT_EQ(plan.faults[5].kind, FaultKind::kSlackFreeze);
    EXPECT_EQ(plan.faults[5].leaf, 0);
}

TEST(FaultPlan, RejectsMalformedClauses)
{
    const char* bad[] = {
        "",                        // empty plan
        "drop:cores",              // no window
        "jitter:tail@0.1-0.5",     // unknown kind
        "drop:dram@0.1-0.5",       // dram is a monitor, not an actuator
        "freeze:cores@0.1-0.5",    // cores is an actuator, not a monitor
        "noise:tail@0.1-0.5",      // noise without *SIGMA
        "burst@0.1-0.5",           // burst without *SCALE
        "crash:tail@0.1-0.5",      // crash without leafN
        "drop:cores@0.6-0.3",      // inverted window
        "drop:cores@0.1-1.5",      // window beyond the run
        "drop:cores@0.1-0.5,",     // trailing empty clause
        "crash:leaf@0.1-0.5",      // leaf with no index
        "crash:leaf1.9@0.1-0.5",   // fractional leaf index
        "crash:leaf1e1@0.1-0.5",   // exponent-form leaf index
    };
    for (const char* spec : bad) {
        FaultPlan plan;
        std::string error;
        EXPECT_FALSE(ParseFaultPlan(spec, &plan, &error)) << spec;
        EXPECT_FALSE(error.empty()) << spec;
    }
}

TEST(FaultPlan, ResolvesFractionsAndLeafScope)
{
    FaultPlan plan;
    plan.faults = {
        ActuatorDrop(Actuator::kWays, 0.25, 0.75),       // every leaf
        Freeze(Monitor::kTail, 0.1, 0.2, /*leaf=*/1),    // leaf 1 only
        LeafCrash(0, 0.3, 0.6),                          // cluster layer
        Burst(2.0, 0.5, 0.5),                            // zero length
    };
    const sim::Duration total = sim::Seconds(100);

    const ResolvedFaultPlan single =
        ResolvedFaultPlan::For(plan, total, /*leaf=*/-1);
    ASSERT_EQ(single.faults.size(), 1u);  // unscoped drop only
    EXPECT_EQ(single.faults[0].begin, sim::Seconds(25));
    EXPECT_EQ(single.faults[0].end, sim::Seconds(75));
    EXPECT_FALSE(single.HasBurst());  // zero-length window dropped

    const ResolvedFaultPlan leaf1 =
        ResolvedFaultPlan::For(plan, total, /*leaf=*/1);
    ASSERT_EQ(leaf1.faults.size(), 2u);  // drop + its own freeze
    const ResolvedFaultPlan leaf2 =
        ResolvedFaultPlan::For(plan, total, /*leaf=*/2);
    EXPECT_EQ(leaf2.faults.size(), 1u);
}

// --------------------------------------------------------------------------
// FaultyPlatform semantics

/** A 100 s run with the given plan over a fresh FakePlatform. */
struct FaultyRig {
    explicit FaultyRig(std::vector<FaultSpec> faults)
    {
        FaultPlan plan;
        plan.faults = std::move(faults);
        faulty = std::make_unique<FaultyPlatform>(
            plat, ResolvedFaultPlan::For(plan, sim::Seconds(100)));
    }

    FakePlatform plat;
    std::unique_ptr<FaultyPlatform> faulty;
};

TEST(FaultyPlatform, EmptyPlanIsTransparent)
{
    FaultyRig rig({});
    rig.plat.tail = sim::Millis(7);
    EXPECT_EQ(rig.faulty->LcTailLatency(), sim::Millis(7));
    rig.faulty->SetBeCores(5);
    EXPECT_EQ(rig.plat.be_cores, 5);
    rig.faulty->SetBeWays(4);
    EXPECT_EQ(rig.plat.be_ways, 4);
    EXPECT_EQ(rig.faulty->faulted_ops(), 0u);
}

TEST(FaultyPlatform, DropWindowSwallowsActuations)
{
    FaultyRig rig({ActuatorDrop(Actuator::kCores, 0.25, 0.75)});
    rig.faulty->SetBeCores(3);  // before the window: applied
    EXPECT_EQ(rig.plat.be_cores, 3);

    rig.plat.queue().RunFor(sim::Seconds(50));  // inside the window
    rig.faulty->SetBeCores(9);
    EXPECT_EQ(rig.plat.be_cores, 3) << "dropped call reached the plant";
    EXPECT_EQ(rig.faulty->CommandedBeCores(), 9);
    EXPECT_EQ(rig.faulty->BeCores(), 3) << "reads must show applied state";
    EXPECT_EQ(rig.faulty->faulted_ops(), 1u);
    // Other actuators are unaffected.
    rig.faulty->SetBeWays(6);
    EXPECT_EQ(rig.plat.be_ways, 6);

    rig.plat.queue().RunFor(sim::Seconds(30));  // past the window
    rig.faulty->SetBeCores(7);
    EXPECT_EQ(rig.plat.be_cores, 7);
}

TEST(FaultyPlatform, FreezeHoldsFirstInWindowValue)
{
    FaultyRig rig({Freeze(Monitor::kTail, 0.25, 0.75)});
    rig.plat.tail = sim::Millis(6);
    EXPECT_EQ(rig.faulty->LcTailLatency(), sim::Millis(6));

    rig.plat.queue().RunFor(sim::Seconds(30));
    EXPECT_EQ(rig.faulty->LcTailLatency(), sim::Millis(6));  // captured
    rig.plat.tail = sim::Millis(14);
    EXPECT_EQ(rig.faulty->LcTailLatency(), sim::Millis(6))
        << "frozen read must not track the plant";
    // The fast-tail channel is independent and stays live.
    rig.plat.fast_tail = sim::Millis(14);
    EXPECT_EQ(rig.faulty->LcFastTailLatency(), sim::Millis(14));

    rig.plat.queue().RunFor(sim::Seconds(60));
    EXPECT_EQ(rig.faulty->LcTailLatency(), sim::Millis(14));  // thawed
}

TEST(FaultyPlatform, NoiseIsSeededAndDeterministic)
{
    auto run = [](uint64_t seed) {
        FakePlatform plat;
        FaultPlan plan;
        plan.faults = {Noise(Monitor::kDram, 0.2, 0.0, 1.0)};
        plan.seed = seed;
        FaultyPlatform faulty(
            plat, ResolvedFaultPlan::For(plan, sim::Seconds(100)));
        std::vector<double> reads;
        for (int i = 0; i < 8; ++i) {
            reads.push_back(faulty.MeasuredDramGbps());
        }
        return reads;
    };
    const auto a = run(1), b = run(1), c = run(2);
    EXPECT_EQ(a, b) << "same seed must reproduce the noise stream";
    EXPECT_NE(a, c) << "different seeds must differ";
    double spread = 0.0;
    for (double v : a) spread += std::abs(v - 20.0);
    EXPECT_GT(spread, 0.0) << "noise must actually perturb the reading";
}

// --------------------------------------------------------------------------
// InvariantChecker: manual drives

struct CheckerRig {
    CheckerRig()
        : checker(plat, {sim::Seconds(15), 0.90})
    {
    }

    FakePlatform plat;
    InvariantChecker checker;
};

TEST(Invariants, CleanDriveRecordsNothing)
{
    CheckerRig rig;
    rig.checker.LcTailLatency();   // healthy: 6 ms of a 12 ms SLO
    rig.checker.SetBeCores(1);     // admit
    rig.checker.SetBeWays(2);
    rig.checker.LcFastTailLatency();
    rig.checker.SetBeCores(2);     // grow with healthy fresh signals
    rig.checker.SocketPowerW(0);   // 80 W of 145 W TDP
    rig.checker.SetBeFreqCapGhz(2.0);
    rig.checker.SetBeNetCeilGbps(4.0);
    rig.checker.SetBeCores(0);     // clean disable
    EXPECT_EQ(rig.checker.count(), 0u);
}

TEST(Invariants, GrowUnderFreshDangerTrips)
{
    CheckerRig rig;
    rig.checker.SetBeCores(1);
    rig.plat.tail = sim::Millis(13);  // over the 12 ms SLO
    rig.checker.LcTailLatency();
    rig.checker.SetBeCores(2);
    ASSERT_EQ(rig.checker.count(), 1u);
    EXPECT_EQ(rig.checker.violations()[0].invariant,
              "no-grow-under-danger");
}

TEST(Invariants, StaleDangerDoesNotBlockGrowth)
{
    CheckerRig rig;
    rig.checker.SetBeCores(1);
    rig.plat.fast_tail = sim::Millis(13);
    rig.checker.LcFastTailLatency();  // danger observed...
    rig.checker.SetBeCores(0);        // ...BE disabled (deadline met)
    rig.plat.fast_tail = sim::Millis(6);
    // One full control interval later the old reading is stale; the
    // controller re-admitting BE from scratch is legitimate.
    rig.plat.queue().RunFor(sim::Seconds(15));
    rig.checker.SetBeCores(1);
    EXPECT_EQ(rig.checker.count(), 0u);
}

TEST(Invariants, MissedDisableDeadlineTrips)
{
    CheckerRig rig;
    rig.checker.SetBeCores(4);
    rig.plat.tail = sim::Millis(20);
    rig.checker.LcTailLatency();  // arms the deadline
    rig.plat.queue().RunFor(sim::Seconds(31));
    rig.checker.LcTailLatency();  // lapsed with 4 cores still commanded
    ASSERT_GE(rig.checker.count(), 1u);
    EXPECT_EQ(rig.checker.violations()[0].invariant, "safeguard-disable");
}

TEST(Invariants, TimelyDisableMeetsDeadline)
{
    CheckerRig rig;
    rig.checker.SetBeCores(4);
    rig.plat.tail = sim::Millis(20);
    rig.checker.LcTailLatency();
    rig.checker.SetBeCores(0);  // within the same control interval
    rig.plat.queue().RunFor(sim::Seconds(31));
    rig.checker.LcTailLatency();
    EXPECT_EQ(rig.checker.count(), 0u);
}

TEST(Invariants, CapRaiseWithoutPowerHeadroomTrips)
{
    CheckerRig rig;
    rig.checker.SetBeCores(4);
    rig.checker.SetBeFreqCapGhz(2.0);
    rig.plat.socket_power[0] = 140.0;  // 96.6% of the 145 W TDP
    rig.checker.SocketPowerW(0);
    rig.checker.SetBeFreqCapGhz(2.2);
    ASSERT_EQ(rig.checker.count(), 1u);
    EXPECT_EQ(rig.checker.violations()[0].invariant,
              "power-cap-respected");

    // Lowering under the same pressure is the *correct* reaction.
    rig.checker.SetBeFreqCapGhz(1.8);
    EXPECT_EQ(rig.checker.count(), 1u);
}

TEST(Invariants, BoundsViolationsTrip)
{
    CheckerRig rig;
    rig.checker.SetBeCores(36);  // of 36 total: LC left with nothing
    rig.checker.SetBeWays(20);   // of 20 total
    rig.checker.SetBeFreqCapGhz(0.3);   // below the 1.2 GHz floor
    rig.checker.SetBeNetCeilGbps(99.0);  // above the 10 Gb/s link
    EXPECT_EQ(rig.checker.count(), 4u);
}

// --------------------------------------------------------------------------
// InvariantChecker over the real controller

/** Runs a real HeraclesController against the scripted platform through
 *  the checker for @p run of simulated time. */
uint64_t
DriveController(FakePlatform& plat, const ctl::HeraclesConfig& cfg,
                sim::Duration run)
{
    InvariantChecker checker(plat, {cfg.top_period, cfg.tdp_threshold});
    ctl::HeraclesController controller(checker, cfg, ctl::LcBwModel{});
    controller.Start();
    plat.queue().RunFor(run);
    controller.Stop();
    return checker.count();
}

TEST(Invariants, HonestControllerSurvivesImminentViolation)
{
    // Fresh fast-tail over the SLO: the honest controller shrinks and
    // never grows, so the harness stays quiet.
    FakePlatform plat;
    plat.fast_tail = sim::Millis(13);
    EXPECT_EQ(DriveController(plat, ctl::HeraclesConfig{},
                              sim::Seconds(60)),
              0u);
}

TEST(Invariants, BrokenGrowthMarginTripsTheHarness)
{
    // The acceptance-criterion test: a controller config whose fast-
    // slack growth gate is broken (negative margin, shrink disabled)
    // happily grows BE cores while its own fresh tail estimate exceeds
    // the SLO — the harness must catch it.
    FakePlatform plat;
    plat.fast_tail = sim::Millis(13);
    ctl::HeraclesConfig broken;
    broken.fast_growth_margin = -10.0;
    broken.fast_shrink = false;
    EXPECT_GT(DriveController(plat, broken, sim::Seconds(60)), 0u);
}

// --------------------------------------------------------------------------
// End-to-end: scenarios

TEST(ChaosScenarios, InactivePlanIsByteIdentical)
{
    // A plan whose only window has zero length never activates; the
    // run must be bit-identical to the cataloged clean scenario.
    const scenarios::ScenarioSpec* clean =
        scenarios::FindScenario("websearch_brain_heracles");
    ASSERT_NE(clean, nullptr);
    scenarios::ScenarioSpec chaotic = *clean;
    chaotic.faults.faults = {
        ActuatorDrop(Actuator::kCores, 0.5, 0.5),
    };
    const scenarios::RunOptions opts = scenarios::RunOptions::Golden();
    const auto a = scenarios::RunScenario(*clean, opts);
    const auto b = scenarios::RunScenario(chaotic, opts);
    EXPECT_TRUE(a.ExactlyEquals(b));
}

TEST(ChaosScenarios, StuckActuatorsDegradeButStaySafe)
{
    const auto m = scenarios::RunScenario(
        scenarios::MustFindScenario("chaos_cores_stuck"),
        scenarios::RunOptions::Golden());
    EXPECT_GT(m.faulted_ops, 0.0) << "the plan must actually fire";
    EXPECT_EQ(m.invariant_violations, 0.0);
}

TEST(ChaosScenarios, OverlappingBurstsComposeMultiplicatively)
{
    // Two overlapping burst windows must behave exactly like the three
    // explicit windows of their pointwise product — one window's end
    // must never wipe another still in flight.
    const scenarios::ScenarioSpec* base =
        scenarios::FindScenario("websearch_brain_heracles");
    ASSERT_NE(base, nullptr);
    scenarios::ScenarioSpec overlapping = *base;
    overlapping.faults.faults = {
        Burst(2.0, 0.2, 0.6),
        Burst(3.0, 0.4, 0.8),
    };
    scenarios::ScenarioSpec explicit_product = *base;
    explicit_product.faults.faults = {
        Burst(2.0, 0.2, 0.4),
        Burst(6.0, 0.4, 0.6),
        Burst(3.0, 0.6, 0.8),
    };
    const scenarios::RunOptions opts = scenarios::RunOptions::Golden();
    const auto a = scenarios::RunScenario(overlapping, opts);
    const auto b = scenarios::RunScenario(explicit_product, opts);
    EXPECT_TRUE(a.ExactlyEquals(b));
}

TEST(ChaosScenarios, BurstIsClampedWithoutViolations)
{
    const auto m = scenarios::RunScenario(
        scenarios::MustFindScenario("chaos_be_burst"),
        scenarios::RunOptions::Golden());
    EXPECT_EQ(m.invariant_violations, 0.0);
}

}  // namespace
}  // namespace heracles::chaos
