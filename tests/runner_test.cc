/**
 * @file
 * Tests for the runner subsystem: pool semantics, ParallelFor/Map
 * ordering, and the core guarantee that a parallel sweep is
 * bit-identical to the serial path.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exp/experiment.h"
#include "runner/pool.h"
#include "runner/sweep.h"

namespace heracles::runner {
namespace {

// --------------------------------------------------------------------------
// Pool

TEST(Pool, RunsEverySubmittedTask)
{
    Pool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(Pool, WaitIsReusable)
{
    Pool pool(2);
    std::atomic<int> count{0};
    pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 1);
    pool.Submit([&count] { ++count; });
    pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(Pool, WaitOnEmptyPoolReturns)
{
    Pool pool(3);
    pool.Wait();  // nothing submitted; must not hang
    EXPECT_EQ(pool.threads(), 3);
}

TEST(Pool, ClampsThreadCountToOne)
{
    Pool pool(0);
    EXPECT_EQ(pool.threads(), 1);
    std::atomic<int> count{0};
    pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(Pool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        Pool pool(2);
        for (int i = 0; i < 50; ++i) pool.Submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

// --------------------------------------------------------------------------
// ParallelFor / ParallelMap

TEST(ParallelFor, SerialPathPreservesIndexOrder)
{
    std::vector<size_t> seen;
    ParallelFor(1, 10, [&seen](size_t i) { seen.push_back(i); });
    std::vector<size_t> want(10);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(seen, want);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(64);
    ParallelFor(4, hits.size(), [&hits](size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMap, ResultsIndexedRegardlessOfJobs)
{
    const auto square = [](size_t i) { return i * i; };
    const auto serial = ParallelMap(1, 32, square);
    const auto parallel = ParallelMap(4, 32, square);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(serial[7], 49u);
}

TEST(HardwareJobs, AtLeastOne)
{
    EXPECT_GE(HardwareJobs(), 1);
}

// --------------------------------------------------------------------------
// Sweep determinism: the acceptance criterion. A parallel sweep (jobs=4)
// must produce results identical to the serial path for fixed seeds.

exp::ExperimentConfig
SweepConfig()
{
    exp::ExperimentConfig cfg;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(30);
    cfg.measure = sim::Seconds(30);
    cfg.seed = 7;
    return cfg;
}

void
ExpectIdentical(const exp::LoadPointResult& a,
                const exp::LoadPointResult& b)
{
    EXPECT_DOUBLE_EQ(a.load, b.load);
    EXPECT_EQ(a.worst_tail, b.worst_tail);
    EXPECT_DOUBLE_EQ(a.tail_frac_slo, b.tail_frac_slo);
    EXPECT_EQ(a.slo_violated, b.slo_violated);
    EXPECT_DOUBLE_EQ(a.lc_throughput, b.lc_throughput);
    EXPECT_DOUBLE_EQ(a.be_throughput, b.be_throughput);
    EXPECT_DOUBLE_EQ(a.emu, b.emu);
    EXPECT_EQ(a.be_cores, b.be_cores);
    EXPECT_EQ(a.be_ways, b.be_ways);
    EXPECT_DOUBLE_EQ(a.be_freq_cap_ghz, b.be_freq_cap_ghz);
    EXPECT_DOUBLE_EQ(a.slack, b.slack);
    EXPECT_EQ(a.be_disables, b.be_disables);
}

TEST(SweepDeterminism, ParallelSweepIdenticalToSerial)
{
    const exp::Experiment e(SweepConfig());
    const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8};

    const auto serial = e.Sweep(loads, /*jobs=*/1);
    const auto parallel = e.Sweep(loads, /*jobs=*/4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ExpectIdentical(serial[i], parallel[i]);
    }
}

TEST(SweepDeterminism, RunSweepMatchesPerJobExperiments)
{
    std::vector<SweepJob> sweep;
    exp::ExperimentConfig heracles = SweepConfig();
    exp::ExperimentConfig baseline = SweepConfig();
    baseline.be.reset();
    baseline.policy = exp::PolicyKind::kNoColocation;
    AppendLoadJobs(sweep, heracles, {0.3, 0.6}, "heracles");
    AppendLoadJobs(sweep, baseline, {0.3, 0.6}, "baseline");
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_EQ(sweep[0].tag, "heracles");
    EXPECT_EQ(sweep[3].tag, "baseline");

    const auto parallel = RunSweep(sweep, /*jobs=*/4);
    ASSERT_EQ(parallel.size(), 4u);
    for (size_t i = 0; i < sweep.size(); ++i) {
        const auto serial =
            exp::Experiment(sweep[i].cfg).RunAt(sweep[i].load);
        ExpectIdentical(serial, parallel[i]);
    }
}

TEST(SweepDeterminism, ExperimentSweepHelperMatchesRunSweep)
{
    const exp::Experiment e(SweepConfig());
    const std::vector<double> loads = {0.25, 0.75};
    const auto a = e.Sweep(loads, 2);
    const auto b = RunSweep(e, loads, 2);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ExpectIdentical(a[i], b[i]);
}

}  // namespace
}  // namespace heracles::runner
