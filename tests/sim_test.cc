/**
 * @file
 * Unit tests for the simulation core: event queue, RNG, statistics and
 * load traces.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace heracles::sim {
namespace {

// --------------------------------------------------------------------------
// EventQueue

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.Now(), 0);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.ScheduleAt(30, [&] { order.push_back(3); });
    q.ScheduleAt(10, [&] { order.push_back(1); });
    q.ScheduleAt(20, [&] { order.push_back(2); });
    q.RunUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        q.ScheduleAt(5, [&order, i] { order.push_back(i); });
    }
    q.RunUntil(5);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesToEventTime)
{
    EventQueue q;
    SimTime seen = -1;
    q.ScheduleAt(42, [&] { seen = q.Now(); });
    q.RunUntil(100);
    EXPECT_EQ(seen, 42);
    EXPECT_EQ(q.Now(), 100);  // clock parks at the horizon
}

TEST(EventQueue, RunUntilDoesNotExecuteLaterEvents)
{
    EventQueue q;
    bool fired = false;
    q.ScheduleAt(200, [&] { fired = true; });
    q.RunUntil(100);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.pending(), 1u);
    q.RunUntil(200);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    SimTime fired_at = 0;
    q.ScheduleAt(50, [&] {
        q.ScheduleAfter(25, [&] { fired_at = q.Now(); });
    });
    q.RunUntil(1000);
    EXPECT_EQ(fired_at, 75);
}

TEST(EventQueue, EventsScheduledDuringExecutionRun)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5) q.ScheduleAfter(1, recurse);
    };
    q.ScheduleAt(0, recurse);
    q.RunUntil(100);
    EXPECT_EQ(depth, 5);
}

TEST(EventQueue, PeriodicEventRepeats)
{
    EventQueue q;
    int count = 0;
    q.SchedulePeriodic(10, 10, [&] { ++count; });
    q.RunUntil(100);
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, PeriodicEventWithPhase)
{
    EventQueue q;
    std::vector<SimTime> fires;
    q.SchedulePeriodic(10, 5, [&] { fires.push_back(q.Now()); });
    q.RunUntil(35);
    EXPECT_EQ(fires, (std::vector<SimTime>{5, 15, 25, 35}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    auto id = q.ScheduleAt(10, [&] { fired = true; });
    q.Cancel(id);
    q.RunUntil(100);
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelStopsPeriodic)
{
    EventQueue q;
    int count = 0;
    auto id = q.SchedulePeriodic(10, 10, [&] { ++count; });
    q.RunUntil(35);
    EXPECT_EQ(count, 3);
    q.Cancel(id);
    q.RunUntil(100);
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, CancelFromInsideCallback)
{
    EventQueue q;
    int count = 0;
    EventQueue::EventId id = 0;
    id = q.SchedulePeriodic(10, 10, [&] {
        if (++count == 2) q.Cancel(id);
    });
    q.RunUntil(200);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, CancelAfterOneShotFiredLeavesNoBookkeeping)
{
    // Regression: cancelling already-fired one-shot events used to grow
    // the cancellation list without bound (linear scans on every fire).
    EventQueue q;
    std::vector<EventQueue::EventId> ids;
    for (int i = 0; i < 1000; ++i) {
        ids.push_back(q.ScheduleAt(i, [] {}));
    }
    q.RunUntil(1000);
    for (auto id : ids) q.Cancel(id);  // all already fired: no-ops
    EXPECT_EQ(q.cancelled_backlog(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, CancelledBacklogDrainsWhenEventsPop)
{
    EventQueue q;
    auto a = q.ScheduleAt(10, [] {});
    auto b = q.ScheduleAt(20, [] {});
    q.Cancel(a);
    q.Cancel(b);
    q.Cancel(b);  // double-cancel is a no-op
    EXPECT_EQ(q.cancelled_backlog(), 2u);
    q.RunUntil(100);
    EXPECT_EQ(q.cancelled_backlog(), 0u);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelledPeriodicLeavesNoBookkeeping)
{
    EventQueue q;
    int count = 0;
    auto id = q.SchedulePeriodic(10, 10, [&] { ++count; });
    q.RunUntil(35);
    q.Cancel(id);
    q.Cancel(id);  // no-op
    q.RunUntil(200);
    EXPECT_EQ(count, 3);
    EXPECT_EQ(q.cancelled_backlog(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, OneShotSelfCancelLeavesNoBookkeeping)
{
    EventQueue q;
    EventQueue::EventId id = 0;
    id = q.ScheduleAt(10, [&] { q.Cancel(id); });  // fires, then no-op
    q.RunUntil(100);
    EXPECT_EQ(q.executed(), 1u);
    EXPECT_EQ(q.cancelled_backlog(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, SelfCancelledPeriodicLeavesNoBookkeeping)
{
    EventQueue q;
    int count = 0;
    EventQueue::EventId id = 0;
    id = q.SchedulePeriodic(10, 10, [&] {
        if (++count == 2) q.Cancel(id);
    });
    q.RunUntil(200);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.cancelled_backlog(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i) q.ScheduleAt(i, [] {});
    q.RunUntil(10);
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueDeath, SchedulingInThePastAborts)
{
    EventQueue q;
    q.ScheduleAt(50, [] {});
    q.RunUntil(50);
    EXPECT_DEATH(q.ScheduleAt(10, [] {}), "past");
}

// --------------------------------------------------------------------------
// Duration helpers

TEST(Time, ConversionRoundTrips)
{
    EXPECT_EQ(Seconds(1), 1000000000);
    EXPECT_EQ(Millis(1), 1000000);
    EXPECT_EQ(Micros(1), 1000);
    EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
    EXPECT_DOUBLE_EQ(ToMillis(Millis(12.5)), 12.5);
    EXPECT_DOUBLE_EQ(ToMicros(Micros(800)), 800.0);
    EXPECT_DOUBLE_EQ(ToHours(Hours(12)), 12.0);
}

TEST(Time, FormatDurationPicksUnits)
{
    EXPECT_EQ(FormatDuration(Nanos(500)), "500ns");
    EXPECT_EQ(FormatDuration(Micros(1.5)), "1.5us");
    EXPECT_EQ(FormatDuration(Millis(12.5)), "12.5ms");
    EXPECT_EQ(FormatDuration(Seconds(3)), "3.00s");
}

// --------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.Next64() == b.Next64()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.Uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng r(7);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += r.Uniform(10.0, 20.0);
    EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += r.Exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) EXPECT_GT(r.Exponential(1.0), 0.0);
}

TEST(Rng, LogNormalMeanMatches)
{
    Rng r(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += r.LogNormalWithMean(5.0, 0.4);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng r(17);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.Normal(10.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) hits += r.Bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng r(23);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.BoundedPareto(1.0, 100.0, 1.5);
        EXPECT_GE(x, 1.0);
        EXPECT_LE(x, 100.0);
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(31);
    Rng child = a.Fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.Next64() == child.Next64()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

// --------------------------------------------------------------------------
// LatencyHistogram

TEST(Histogram, EmptyReportsZero)
{
    LatencyHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.Percentile(0.99), 0);
    EXPECT_EQ(h.MeanNs(), 0.0);
    EXPECT_EQ(h.MaxNs(), 0);
}

TEST(Histogram, SingleValue)
{
    LatencyHistogram h;
    h.Record(Millis(5));
    EXPECT_EQ(h.count(), 1u);
    // Percentile returns within bucket precision (~2.2%).
    EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)),
                static_cast<double>(Millis(5)), 0.025 * Millis(5));
    EXPECT_EQ(h.MaxNs(), Millis(5));
}

TEST(Histogram, PercentileWithinRelativeError)
{
    LatencyHistogram h;
    // 1..1000 us uniformly.
    for (int i = 1; i <= 1000; ++i) h.Record(Micros(i));
    const double p50 = static_cast<double>(h.Percentile(0.50));
    const double p99 = static_cast<double>(h.Percentile(0.99));
    EXPECT_NEAR(p50, static_cast<double>(Micros(500)), 0.03 * Micros(500));
    EXPECT_NEAR(p99, static_cast<double>(Micros(990)), 0.03 * Micros(990));
}

TEST(Histogram, PercentileMonotoneInP)
{
    LatencyHistogram h;
    Rng r(3);
    for (int i = 0; i < 50000; ++i) {
        h.Record(static_cast<Duration>(r.Exponential(1e6)));
    }
    Duration prev = 0;
    for (double p : {0.1, 0.5, 0.9, 0.95, 0.99, 0.999}) {
        const Duration v = h.Percentile(p);
        EXPECT_GE(v, prev) << "p=" << p;
        prev = v;
    }
}

TEST(Histogram, PercentileNeverExceedsMax)
{
    LatencyHistogram h;
    Rng r(5);
    for (int i = 0; i < 10000; ++i) {
        h.Record(static_cast<Duration>(r.Exponential(5e5)));
    }
    EXPECT_LE(h.Percentile(0.9999), h.MaxNs());
}

TEST(Histogram, RecordNWeightsSamples)
{
    LatencyHistogram a, b;
    a.RecordN(Micros(100), 10);
    for (int i = 0; i < 10; ++i) b.Record(Micros(100));
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
}

TEST(Histogram, MeanMatchesArithmetic)
{
    LatencyHistogram h;
    h.Record(1000);
    h.Record(3000);
    EXPECT_DOUBLE_EQ(h.MeanNs(), 2000.0);
}

TEST(Histogram, MergeCombines)
{
    LatencyHistogram a, b;
    for (int i = 0; i < 100; ++i) a.Record(Micros(10));
    for (int i = 0; i < 100; ++i) b.Record(Micros(1000));
    a.Merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_GT(a.Percentile(0.99), Micros(500));
    EXPECT_LT(a.Percentile(0.25), Micros(20));
}

TEST(Histogram, ResetClears)
{
    LatencyHistogram h;
    h.Record(Micros(50));
    h.Reset();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.Percentile(0.99), 0);
}

TEST(Histogram, HugeValuesClampToRange)
{
    LatencyHistogram h;
    h.Record(std::numeric_limits<Duration>::max() / 2);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GT(h.Percentile(0.5), 0);
}

TEST(Histogram, ResetThenRecordReportsOnlyNewSamples)
{
    // The occupied-range bookkeeping must fully forget the old range:
    // a post-Reset histogram answers from the new samples alone, even
    // when they land in completely different buckets.
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i) h.Record(Millis(50));  // high buckets
    h.Reset();
    for (int i = 0; i < 100; ++i) h.Record(Micros(10));  // low buckets
    EXPECT_EQ(h.count(), 100u);
    EXPECT_LT(h.Percentile(0.99), Micros(12));
    EXPECT_EQ(h.MaxNs(), Micros(10));
}

TEST(Histogram, MergeIntoEmptyAdoptsRange)
{
    LatencyHistogram a, b;
    for (int i = 0; i < 50; ++i) b.Record(Micros(200));
    a.Merge(b);
    EXPECT_EQ(a.count(), 50u);
    EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
    a.Merge(LatencyHistogram());  // merging an empty histogram: no-op
    EXPECT_EQ(a.count(), 50u);
    EXPECT_EQ(a.Percentile(0.5), b.Percentile(0.5));
}

TEST(Histogram, MergeDisjointRangesSpansBoth)
{
    LatencyHistogram low, high;
    for (int i = 0; i < 90; ++i) low.Record(Micros(5));
    for (int i = 0; i < 10; ++i) high.Record(Millis(80));
    low.Merge(high);
    EXPECT_EQ(low.count(), 100u);
    EXPECT_LT(low.Percentile(0.5), Micros(7));    // from the low range
    EXPECT_GT(low.Percentile(0.95), Millis(70));  // from the high range
    EXPECT_EQ(low.MaxNs(), Millis(80));
}

// --------------------------------------------------------------------------
// WindowedTailTracker

TEST(WindowedTail, NoWindowCompletedInitially)
{
    WindowedTailTracker t(Seconds(15), 0.99);
    EXPECT_EQ(t.LastWindowTail(), 0);
    EXPECT_EQ(t.WorstWindowTail(), 0);
    EXPECT_EQ(t.WindowsCompleted(), 0u);
}

TEST(WindowedTail, WindowClosesOnRoll)
{
    WindowedTailTracker t(Seconds(10), 0.99);
    t.Record(Seconds(1), Millis(5));
    t.Record(Seconds(2), Millis(7));
    t.MaybeRoll(Seconds(10));
    EXPECT_EQ(t.WindowsCompleted(), 1u);
    EXPECT_GT(t.LastWindowTail(), Millis(6));
    EXPECT_EQ(t.LastWindowCount(), 2u);
}

TEST(WindowedTail, WorstTracksAcrossWindows)
{
    WindowedTailTracker t(Seconds(10), 0.99);
    t.Record(Seconds(1), Millis(5));
    t.Record(Seconds(11), Millis(50));  // rolls window 1, lands in 2
    t.Record(Seconds(21), Millis(2));   // rolls window 2
    t.MaybeRoll(Seconds(30));
    EXPECT_GE(t.WorstWindowTail(), Millis(49));
    // Last window tail reflects the most recent completed window.
    EXPECT_LE(t.LastWindowTail(), Millis(3));
}

TEST(WindowedTail, EmptyWindowsDoNotCount)
{
    WindowedTailTracker t(Seconds(10), 0.99);
    t.Record(Seconds(1), Millis(5));
    t.MaybeRoll(Seconds(100));  // many empty windows pass
    EXPECT_EQ(t.WindowsCompleted(), 1u);
}

TEST(WindowedTail, CurrentWindowTailIsPartial)
{
    WindowedTailTracker t(Seconds(10), 0.99);
    t.Record(Seconds(1), Millis(30));
    EXPECT_GT(t.CurrentWindowTail(), Millis(25));
    EXPECT_GE(t.WorstObservedTail(), t.CurrentWindowTail());
}

TEST(WindowedTail, ResetWorstForgetsHistory)
{
    WindowedTailTracker t(Seconds(10), 0.99);
    t.Record(Seconds(1), Millis(100));
    t.MaybeRoll(Seconds(10));
    EXPECT_GT(t.WorstWindowTail(), 0);
    t.ResetWorst();
    EXPECT_EQ(t.WorstWindowTail(), 0);
}

TEST(WindowedTail, PercentileHonoured)
{
    WindowedTailTracker t(Seconds(10), 0.50);
    for (int i = 1; i <= 100; ++i) {
        t.Record(Seconds(1), Micros(i * 10));
    }
    t.MaybeRoll(Seconds(10));
    // Median of 10..1000us is ~500us.
    EXPECT_NEAR(static_cast<double>(t.LastWindowTail()),
                static_cast<double>(Micros(500)), 0.05 * Micros(500));
}

// --------------------------------------------------------------------------
// TimeWeightedMean

TEST(TimeWeightedMean, ConstantSignal)
{
    TimeWeightedMean m;
    m.Set(0, 10.0);
    EXPECT_DOUBLE_EQ(m.Mean(Seconds(5)), 10.0);
}

TEST(TimeWeightedMean, WeightsByHoldTime)
{
    TimeWeightedMean m;
    m.Set(0, 0.0);
    m.Set(Seconds(9), 100.0);  // held 0 for 9s, 100 for 1s
    EXPECT_NEAR(m.Mean(Seconds(10)), 10.0, 1e-9);
}

TEST(TimeWeightedMean, TracksMaxAndCurrent)
{
    TimeWeightedMean m;
    m.Set(0, 5.0);
    m.Set(1, 50.0);
    m.Set(2, 20.0);
    EXPECT_DOUBLE_EQ(m.Max(), 50.0);
    EXPECT_DOUBLE_EQ(m.Current(), 20.0);
}

TEST(TimeWeightedMean, EmptyIsZero)
{
    TimeWeightedMean m;
    EXPECT_DOUBLE_EQ(m.Mean(Seconds(1)), 0.0);
}

// --------------------------------------------------------------------------
// TimeSeries

TEST(TimeSeries, Aggregates)
{
    TimeSeries s;
    s.Add(0, 1.0);
    s.Add(1, 5.0);
    s.Add(2, 3.0);
    EXPECT_DOUBLE_EQ(s.MeanValue(), 3.0);
    EXPECT_DOUBLE_EQ(s.MinValue(), 1.0);
    EXPECT_DOUBLE_EQ(s.MaxValue(), 5.0);
    EXPECT_EQ(s.size(), 3u);
}

// --------------------------------------------------------------------------
// Traces

TEST(Trace, ConstantHoldsValue)
{
    ConstantTrace t(0.42);
    EXPECT_DOUBLE_EQ(t.LoadAt(0), 0.42);
    EXPECT_DOUBLE_EQ(t.LoadAt(Hours(5)), 0.42);
}

TEST(Trace, StepSwitchesAtBoundaries)
{
    StepTrace t({{0, 0.1}, {Seconds(10), 0.5}, {Seconds(20), 0.9}});
    EXPECT_DOUBLE_EQ(t.LoadAt(0), 0.1);
    EXPECT_DOUBLE_EQ(t.LoadAt(Seconds(9)), 0.1);
    EXPECT_DOUBLE_EQ(t.LoadAt(Seconds(10)), 0.5);
    EXPECT_DOUBLE_EQ(t.LoadAt(Seconds(25)), 0.9);
    EXPECT_EQ(t.Length(), Seconds(20));
}

TEST(TraceDeath, StepRequiresTimeZeroStart)
{
    EXPECT_DEATH(StepTrace({{Seconds(1), 0.5}}), "t=0");
}

TEST(Trace, DiurnalStaysInRange)
{
    DiurnalTrace t(Hours(12), 0.2, 0.9);
    for (int m = 0; m <= 720; m += 5) {
        const double l = t.LoadAt(Minutes(m));
        EXPECT_GE(l, 0.0);
        EXPECT_LE(l, 1.0);
    }
}

TEST(Trace, DiurnalDipsMidTrace)
{
    DiurnalTrace t(Hours(12), 0.2, 0.9, /*jitter=*/0.0);
    EXPECT_NEAR(t.LoadAt(0), 0.9, 0.01);
    EXPECT_NEAR(t.LoadAt(Hours(6)), 0.2, 0.01);
    EXPECT_NEAR(t.LoadAt(Hours(12)), 0.9, 0.01);
}

TEST(Trace, DiurnalDeterministicForSeed)
{
    DiurnalTrace a(Hours(1), 0.2, 0.9, 0.05, 7);
    DiurnalTrace b(Hours(1), 0.2, 0.9, 0.05, 7);
    for (int m = 0; m <= 60; ++m) {
        EXPECT_DOUBLE_EQ(a.LoadAt(Minutes(m)), b.LoadAt(Minutes(m)));
    }
}

TEST(Trace, CsvParsesAndInterpolates)
{
    auto t = CsvTrace::FromString("0,0.2\n10,0.4\n20,0.8\n");
    EXPECT_DOUBLE_EQ(t->LoadAt(0), 0.2);
    EXPECT_NEAR(t->LoadAt(Seconds(5)), 0.3, 1e-9);
    EXPECT_DOUBLE_EQ(t->LoadAt(Seconds(20)), 0.8);
    EXPECT_DOUBLE_EQ(t->LoadAt(Hours(1)), 0.8);  // holds last value
}

TEST(Trace, CsvAcceptsPercentNotation)
{
    auto t = CsvTrace::FromString("0,20\n10,80\n");
    EXPECT_DOUBLE_EQ(t->LoadAt(0), 0.2);
    EXPECT_DOUBLE_EQ(t->LoadAt(Seconds(10)), 0.8);
}

TEST(Trace, CsvSkipsCommentsAndBlankLines)
{
    auto t = CsvTrace::FromString("# header\n\n0,0.5\n");
    EXPECT_DOUBLE_EQ(t->LoadAt(0), 0.5);
}

TEST(TraceDeath, CsvRejectsMalformedRow)
{
    EXPECT_DEATH(CsvTrace::FromString("garbage\n"), "malformed");
}

TEST(TraceDeath, CsvRejectsNonIncreasingTime)
{
    EXPECT_DEATH(CsvTrace::FromString("0,0.1\n0,0.2\n"), "increasing");
}

TEST(TraceDeath, CsvRejectsEmpty)
{
    EXPECT_DEATH(CsvTrace::FromString(""), "empty");
}

}  // namespace
}  // namespace heracles::sim
