/**
 * @file
 * Incremental arbitration vs the naive reference resolver.
 *
 * hw::Machine's incremental paths — deferred coalesced resolves, the
 * demand-dirty gate over the LLC/DRAM/NIC phases, hoisted HyperThread
 * busy probes, memoized power curves — all claim to be *exact*
 * equivalence transforms of the historical eager full-scan resolver.
 * SetNaiveArbitration(true) retains that resolver: every RequestResolve
 * becomes an eager full recompute and nothing is gated or deferred.
 *
 * This suite drives two identical server rigs (machine + LC app + BE
 * task + platform) through a seeded churn of actuations, demand-scale
 * phase changes and counter reads — one rig incremental, one naive —
 * and asserts every published view and measured counter stays bitwise
 * identical throughout. Any shortcut that changes even the last ULP of
 * a grant, or perturbs an RNG stream, diverges here within a few
 * seconds of simulated time.
 */
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "sim/random.h"
#include "workloads/antagonists.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"
#include "workloads/lc_configs.h"

namespace heracles {
namespace {

/** One self-contained server simulation under churn. */
struct Rig {
    sim::EventQueue queue;
    hw::Machine machine;
    workloads::LcApp lc;
    std::unique_ptr<workloads::BeTask> be;
    platform::SimPlatform plat;

    Rig(bool naive, const hw::MachineConfig& cfg,
        const workloads::LcParams& lp, const workloads::BeProfile& bp)
        : machine(cfg, queue),
          lc(machine, lp, /*seed=*/cfg.seed ^ 0x11),
          be(std::make_unique<workloads::BeTask>(machine, bp)),
          plat(machine, lc, be.get())
    {
        machine.SetNaiveArbitration(naive);
        plat.ApplyInitialPlacement();
        lc.SetLoad(0.6);
        lc.Start();
    }

    /** Kills the BE job: releases its allocations, then unregisters it
     *  (the ~BeTask RemoveClient path — a client-set demand change). */
    void Detach()
    {
        if (be == nullptr) return;
        plat.SetBeCores(0);
        plat.AttachBeJob(nullptr);
        be.reset();
    }

    /** (Re)starts a BE job from scratch and admits it with @p cores. */
    void Attach(const workloads::BeProfile& bp, int cores)
    {
        if (be != nullptr) return;
        be = std::make_unique<workloads::BeTask>(machine, bp);
        plat.AttachBeJob(be.get());
        plat.SetBeCores(cores);
    }
};

/** Asserts every observable of both rigs is bitwise identical. The
 *  reads themselves are part of the protocol under test (each one
 *  flushes a pending resolve), so both rigs see the exact same call
 *  sequence. */
void
ExpectIdentical(Rig& a, Rig& b, int step)
{
    const hw::MachineConfig& cfg = a.machine.config();
    ASSERT_EQ(a.be != nullptr, b.be != nullptr) << "step " << step;
    std::vector<std::pair<const hw::ResourceClient*,
                          const hw::ResourceClient*>>
        pairs = {{&a.lc, &b.lc}};
    if (a.be != nullptr) pairs.push_back({a.be.get(), b.be.get()});
    for (const auto& [c, d] : pairs) {
        const hw::TaskView& va = a.machine.ViewOf(c);
        const hw::TaskView& vb = b.machine.ViewOf(d);
        for (int s = 0; s < cfg.sockets; ++s) {
            EXPECT_EQ(va.llc_mb[s], vb.llc_mb[s]) << "step " << step;
            EXPECT_EQ(va.dram_demand_gbps[s], vb.dram_demand_gbps[s])
                << "step " << step;
            EXPECT_EQ(va.dram_granted_gbps[s], vb.dram_granted_gbps[s])
                << "step " << step;
        }
        EXPECT_EQ(va.dram_stretch, vb.dram_stretch) << "step " << step;
        EXPECT_EQ(va.freq_ghz, vb.freq_ghz) << "step " << step;
        EXPECT_EQ(va.ht_penalty, vb.ht_penalty) << "step " << step;
        EXPECT_EQ(va.net_granted_gbps, vb.net_granted_gbps)
            << "step " << step;
        EXPECT_EQ(va.net_delay_factor, vb.net_delay_factor)
            << "step " << step;
        EXPECT_EQ(va.net_drop_prob, vb.net_drop_prob) << "step " << step;
        EXPECT_EQ(va.net_overloaded, vb.net_overloaded)
            << "step " << step;
    }
    // Noisy counters consume the machine's noise RNG — identical call
    // sequences on both rigs keep the streams aligned, so the readings
    // must match exactly too.
    for (int s = 0; s < cfg.sockets; ++s) {
        EXPECT_EQ(a.machine.MeasuredDramGbps(s),
                  b.machine.MeasuredDramGbps(s))
            << "step " << step;
        EXPECT_EQ(a.machine.MeasuredSocketPowerW(s),
                  b.machine.MeasuredSocketPowerW(s))
            << "step " << step;
    }
    EXPECT_EQ(a.machine.MeasuredFreqGhz(&a.lc),
              b.machine.MeasuredFreqGhz(&b.lc))
        << "step " << step;
    EXPECT_EQ(a.machine.LcTxGbps(), b.machine.LcTxGbps())
        << "step " << step;
    EXPECT_EQ(a.machine.BeTxGbps(), b.machine.BeTxGbps())
        << "step " << step;

    const hw::MachineTelemetry ta = a.machine.Telemetry();
    const hw::MachineTelemetry tb = b.machine.Telemetry();
    EXPECT_EQ(ta.dram_gbps, tb.dram_gbps) << "step " << step;
    EXPECT_EQ(ta.cpu_utilization, tb.cpu_utilization) << "step " << step;
    EXPECT_EQ(ta.power_w, tb.power_w) << "step " << step;
    EXPECT_EQ(ta.lc_tx_gbps, tb.lc_tx_gbps) << "step " << step;
    EXPECT_EQ(ta.be_tx_gbps, tb.be_tx_gbps) << "step " << step;
    EXPECT_EQ(ta.net_frac, tb.net_frac) << "step " << step;

    // The workloads ride on the views: identical views imply identical
    // service-time draws, so the request streams must stay in lockstep.
    EXPECT_EQ(a.lc.TotalArrived(), b.lc.TotalArrived()) << "step " << step;
    EXPECT_EQ(a.lc.TotalCompleted(), b.lc.TotalCompleted())
        << "step " << step;
    EXPECT_EQ(a.lc.CtlTailLatency(), b.lc.CtlTailLatency())
        << "step " << step;
    if (a.be != nullptr && b.be != nullptr) {
        EXPECT_EQ(a.be->AvgRate(), b.be->AvgRate()) << "step " << step;
    }
}

TEST(MachineEquivalence, SeededChurnStaysBitIdenticalToNaive)
{
    hw::MachineConfig cfg;
    cfg.seed = 1234;
    const workloads::LcParams lp = workloads::Websearch();
    const workloads::BeProfile bp = workloads::Brain();

    Rig inc(/*naive=*/false, cfg, lp, bp);
    Rig naive(/*naive=*/true, cfg, lp, bp);

    // One decision stream, applied identically to both rigs. The op mix
    // covers every actuator the controller uses, BE phase changes, the
    // busy-probing utilization read, and plain time advancement.
    sim::Rng churn(99);
    const int total_cores = cfg.TotalCores();
    const int total_ways = cfg.llc_ways;
    for (int step = 0; step < 120; ++step) {
        const int op = static_cast<int>(churn.UniformInt(8));
        switch (op) {
        case 0: {
            const int cores =
                static_cast<int>(churn.UniformInt(total_cores));
            inc.plat.SetBeCores(cores);
            naive.plat.SetBeCores(cores);
            break;
        }
        case 1: {
            const int ways =
                static_cast<int>(churn.UniformInt(total_ways));
            inc.plat.SetBeWays(ways);
            naive.plat.SetBeWays(ways);
            break;
        }
        case 2: {
            const double ghz =
                churn.Uniform(cfg.min_ghz, cfg.turbo_1c_ghz);
            inc.plat.SetBeFreqCapGhz(ghz);
            naive.plat.SetBeFreqCapGhz(ghz);
            break;
        }
        case 3: {
            const double ceil = churn.Bernoulli(0.3)
                                    ? -1.0
                                    : churn.Uniform(0.5, cfg.nic_gbps);
            inc.plat.SetBeNetCeilGbps(ceil);
            naive.plat.SetBeNetCeilGbps(ceil);
            break;
        }
        case 4: {
            const double scale = churn.Uniform(0.2, 1.5);
            if (inc.be != nullptr) {
                inc.be->SetDemandScale(scale);
                naive.be->SetDemandScale(scale);
            }
            break;
        }
        case 5: {
            // Busy-probing reads between resolves: LcCpuUtilization
            // resets the LC measurement window, which a pending resolve
            // must observe first.
            EXPECT_EQ(inc.plat.LcCpuUtilization(),
                      naive.plat.LcCpuUtilization())
                << "step " << step;
            break;
        }
        case 6: {
            // Same-instant pile-up: several actuations with no time in
            // between exercises the coalescing path.
            const int cores =
                static_cast<int>(churn.UniformInt(total_cores));
            const int ways =
                static_cast<int>(churn.UniformInt(total_ways));
            inc.plat.SetBeCores(cores);
            inc.plat.SetBeWays(ways);
            naive.plat.SetBeCores(cores);
            naive.plat.SetBeWays(ways);
            break;
        }
        default: {
            // Job churn: unregistering and re-registering a client is
            // the sharpest demand change (the client set itself moves).
            if (inc.be != nullptr) {
                inc.Detach();
                naive.Detach();
            } else {
                const int cores = 1 + static_cast<int>(
                                      churn.UniformInt(total_cores - 1));
                inc.Attach(bp, cores);
                naive.Attach(bp, cores);
            }
            break;
        }
        }
        const sim::Duration gap =
            sim::Millis(1 + static_cast<int>(churn.UniformInt(400)));
        inc.queue.RunFor(gap);
        naive.queue.RunFor(gap);
        if (step % 10 == 9) ExpectIdentical(inc, naive, step);
    }
    ExpectIdentical(inc, naive, 120);

    // The incremental rig must actually have been incremental: the
    // demand phases recompute only when demand inputs changed, while
    // the naive reference recomputes them on every resolve.
    EXPECT_LT(inc.machine.demand_recomputes(), inc.machine.resolves());
    EXPECT_EQ(naive.machine.demand_recomputes(),
              naive.machine.resolves());
    EXPECT_GT(inc.machine.resolves(), 0u);
}

}  // namespace
}  // namespace heracles
