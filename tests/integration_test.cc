/**
 * @file
 * End-to-end property tests: the paper's headline claims expressed as
 * invariants over sweeps of workload x BE x load, plus the future-work
 * extensions (hardware bandwidth accounting, centralized cluster
 * targets).
 */
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "exp/experiment.h"

namespace heracles {
namespace {

// --------------------------------------------------------------------------
// Property: Heracles never violates the SLO (Figure 4's headline).

struct ColocationCase {
    int lc;          // index into AllLcWorkloads()
    const char* be;
    double load;
};

class HeraclesNoViolation
    : public ::testing::TestWithParam<ColocationCase>
{
};

TEST_P(HeraclesNoViolation, SloHolds)
{
    const auto p = GetParam();
    exp::ExperimentConfig cfg;
    cfg.lc = workloads::AllLcWorkloads()[p.lc];
    cfg.be = workloads::BeProfileByName(cfg.machine, p.be);
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(150);
    cfg.measure = sim::Seconds(90);
    exp::Experiment e(cfg);
    const auto r = e.RunAt(p.load);
    EXPECT_FALSE(r.slo_violated)
        << cfg.lc.name << "+" << p.be << " @ " << p.load << ": tail "
        << r.tail_frac_slo * 100 << "% of SLO";
    // And colocation must actually produce useful BE work at low load.
    if (p.load <= 0.5) {
        EXPECT_GT(r.be_throughput, 0.05)
            << cfg.lc.name << "+" << p.be << " @ " << p.load;
    }
}

std::string
CaseName(const ::testing::TestParamInfo<ColocationCase>& info)
{
    static const char* kLc[] = {"websearch", "ml_cluster", "memkeyval"};
    std::string be = info.param.be;
    for (auto& c : be) {
        if (c == '-') c = '_';
    }
    return std::string(kLc[info.param.lc]) + "_" + be + "_" +
           std::to_string(static_cast<int>(info.param.load * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeraclesNoViolation,
    ::testing::Values(
        ColocationCase{0, "brain", 0.3}, ColocationCase{0, "brain", 0.7},
        ColocationCase{0, "stream-dram", 0.4},
        ColocationCase{0, "cpu_pwr", 0.3},
        ColocationCase{0, "streetview", 0.6},
        ColocationCase{1, "brain", 0.4},
        ColocationCase{1, "stream-llc", 0.5},
        ColocationCase{1, "streetview", 0.3},
        ColocationCase{2, "brain", 0.3},
        ColocationCase{2, "iperf", 0.4},
        ColocationCase{2, "stream-dram", 0.5}),
    CaseName);

// --------------------------------------------------------------------------
// Property: EMU under Heracles dominates the no-colocation baseline.

class HeraclesEmuGain : public ::testing::TestWithParam<double>
{
};

TEST_P(HeraclesEmuGain, EmuExceedsBaseline)
{
    const double load = GetParam();
    exp::ExperimentConfig cfg;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(150);
    cfg.measure = sim::Seconds(90);
    exp::Experiment e(cfg);
    const auto r = e.RunAt(load);
    // Baseline EMU == load; Heracles must add meaningful BE throughput
    // at every load below the disable threshold.
    EXPECT_GT(r.emu, load + 0.10) << "load " << load;
}

INSTANTIATE_TEST_SUITE_P(Loads, HeraclesEmuGain,
                         ::testing::Values(0.2, 0.4, 0.6));

// --------------------------------------------------------------------------
// Future work: hardware DRAM bandwidth accounting (Section 7).

TEST(HwBwAccounting, NoViolationWithoutOfflineModel)
{
    exp::ExperimentConfig cfg;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::BeProfileByName(cfg.machine, "stream-dram");
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.heracles.use_hw_bw_accounting = true;
    cfg.heracles.use_bw_model = false;  // no offline information at all
    cfg.warmup = sim::Seconds(150);
    cfg.measure = sim::Seconds(90);
    exp::Experiment e(cfg);
    const auto r = e.RunAt(0.4);
    EXPECT_FALSE(r.slo_violated);
    EXPECT_GT(r.be_throughput, 0.05);
    // The DRAM limit must still be respected.
    EXPECT_LE(r.telemetry.dram_frac, 0.95);
}

TEST(HwBwAccounting, MatchesModelBasedEmu)
{
    exp::ExperimentConfig cfg;
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::BeProfileByName(cfg.machine, "streetview");
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(150);
    cfg.measure = sim::Seconds(90);
    exp::Experiment model_based(cfg);
    cfg.heracles.use_hw_bw_accounting = true;
    exp::Experiment hw_based(cfg);
    const double emu_model = model_based.RunAt(0.4).emu;
    const double emu_hw = hw_based.RunAt(0.4).emu;
    // Hardware accounting should do at least as well as the offline
    // model (it has strictly better information), within noise.
    EXPECT_GE(emu_hw, emu_model - 0.12);
}

// --------------------------------------------------------------------------
// Future work: centralized cluster controller (Section 5.3).

TEST(CentralController, RaisesEmuWithoutRootViolation)
{
    cluster::ClusterConfig cfg;
    cfg.leaves = 3;
    cfg.duration = sim::Minutes(8);
    cfg.seed = 11;

    cluster::ClusterExperiment uniform(cfg);
    const auto r_uniform = uniform.Run();

    cfg.central_controller = true;
    cluster::ClusterExperiment central(cfg);
    const auto r_central = central.Run();

    EXPECT_FALSE(r_central.slo_violated)
        << "worst " << r_central.worst_latency_frac;
    // Dynamic per-leaf targets harvest root slack into extra BE work.
    EXPECT_GE(r_central.avg_emu, r_uniform.avg_emu - 0.02);
}

// --------------------------------------------------------------------------
// Safety net: the high-load safeguard across all workloads.

class HighLoadSafeguard : public ::testing::TestWithParam<int>
{
};

TEST_P(HighLoadSafeguard, BeDisabledAboveThreshold)
{
    exp::ExperimentConfig cfg;
    cfg.lc = workloads::AllLcWorkloads()[GetParam()];
    cfg.be = workloads::Brain();
    cfg.policy = exp::PolicyKind::kHeracles;
    cfg.warmup = sim::Seconds(60);
    cfg.measure = sim::Seconds(60);
    exp::Experiment e(cfg);
    const auto r = e.RunAt(0.93);
    EXPECT_EQ(r.be_cores, 0);
    EXPECT_LT(r.be_throughput, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, HighLoadSafeguard,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace heracles
