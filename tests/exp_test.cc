/**
 * @file
 * Tests for the experiment harness: policies, EMU accounting, the
 * characterization rig and the reporting utilities.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "exp/characterization.h"
#include "exp/experiment.h"
#include "exp/reporting.h"

namespace heracles::exp {
namespace {

ExperimentConfig
QuickConfig()
{
    ExperimentConfig cfg;
    cfg.warmup = sim::Seconds(90);
    cfg.measure = sim::Seconds(60);
    return cfg;
}

// --------------------------------------------------------------------------
// Reporting

TEST(Reporting, TableAlignsColumns)
{
    Table t({"a", "bbbb"});
    t.AddRow({"xx", "y"});
    std::ostringstream os;
    t.Print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a   bbbb"), std::string::npos);
    EXPECT_NE(out.find("xx  y"), std::string::npos);
}

TEST(Reporting, TableCsv)
{
    Table t({"a", "b"});
    t.AddRow({"1", "2"});
    std::ostringstream os;
    t.PrintCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ReportingDeath, RowWidthMismatchAborts)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.AddRow({"only-one"}), "width");
}

TEST(Reporting, Formatters)
{
    EXPECT_EQ(FormatPct(0.87), "87%");
    EXPECT_EQ(FormatPct(0.875, 1), "87.5%");
    EXPECT_EQ(FormatTailFrac(0.5), "50%");
    EXPECT_EQ(FormatTailFrac(3.5), ">300%");
    EXPECT_EQ(FormatDouble(1.2345, 2), "1.23");
}

TEST(Reporting, PolicyNames)
{
    EXPECT_EQ(PolicyName(PolicyKind::kNoColocation), "baseline");
    EXPECT_EQ(PolicyName(PolicyKind::kHeracles), "heracles");
    EXPECT_EQ(PolicyName(PolicyKind::kOsOnly), "os-only");
    EXPECT_EQ(PolicyName(PolicyKind::kStaticPartition), "static");
}

// --------------------------------------------------------------------------
// Experiment runner

TEST(Experiment, PaperLoadsCoverRange)
{
    const auto loads = Experiment::PaperLoads(0.10);
    EXPECT_NEAR(loads.front(), 0.05, 1e-9);
    EXPECT_GE(loads.back(), 0.90);
}

TEST(Experiment, BaselineMeetsSlo)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.lc = workloads::Websearch();
    cfg.policy = PolicyKind::kNoColocation;
    Experiment e(cfg);
    const auto r = e.RunAt(0.5);
    EXPECT_FALSE(r.slo_violated);
    EXPECT_NEAR(r.lc_throughput, 0.5, 0.05);
    EXPECT_NEAR(r.emu, 0.5, 0.05);  // no BE: EMU is just the LC load
    EXPECT_EQ(r.be_cores, 0);
}

TEST(Experiment, OsOnlyPolicyViolates)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = PolicyKind::kOsOnly;
    Experiment e(cfg);
    const auto r = e.RunAt(0.5);
    EXPECT_TRUE(r.slo_violated);
}

TEST(Experiment, HeraclesBeatsOsOnlyAndMeetsSlo)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.warmup = sim::Seconds(150);
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = PolicyKind::kHeracles;
    Experiment e(cfg);
    const auto r = e.RunAt(0.4);
    EXPECT_FALSE(r.slo_violated);
    EXPECT_GT(r.emu, 0.6);  // well above the 0.4 baseline
    EXPECT_GT(r.be_throughput, 0.1);
}

TEST(Experiment, StaticPartitionSafeButLowEmuAtHighLoad)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = PolicyKind::kStaticPartition;
    Experiment e(cfg);
    // At high load half the cores cannot carry websearch: violation —
    // the static split is either wasteful or unsafe, never both right.
    const auto high = e.RunAt(0.85);
    EXPECT_TRUE(high.slo_violated);
}

TEST(Experiment, BeAloneRateComputedOnce)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.lc = workloads::Websearch();
    cfg.be = workloads::Brain();
    cfg.policy = PolicyKind::kHeracles;
    Experiment e(cfg);
    EXPECT_GT(e.BeAloneRate(), 1.0);
}

TEST(Experiment, SweepReturnsOnePerLoad)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.warmup = sim::Seconds(30);
    cfg.measure = sim::Seconds(30);
    cfg.lc = workloads::Websearch();
    cfg.policy = PolicyKind::kNoColocation;
    Experiment e(cfg);
    const auto rs = e.Sweep({0.2, 0.5, 0.8});
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_DOUBLE_EQ(rs[0].load, 0.2);
    EXPECT_DOUBLE_EQ(rs[2].load, 0.8);
    EXPECT_LT(rs[0].telemetry.cpu_utilization,
              rs[2].telemetry.cpu_utilization);
}

TEST(Experiment, ResultsDeterministicForSeed)
{
    ExperimentConfig cfg = QuickConfig();
    cfg.warmup = sim::Seconds(20);
    cfg.measure = sim::Seconds(20);
    cfg.lc = workloads::Websearch();
    cfg.policy = PolicyKind::kNoColocation;
    cfg.seed = 99;
    Experiment a(cfg), b(cfg);
    EXPECT_EQ(a.RunAt(0.5).worst_tail, b.RunAt(0.5).worst_tail);
}

// --------------------------------------------------------------------------
// Characterization rig

TEST(Characterization, NamesAndOrder)
{
    const auto all = AllAntagonists();
    ASSERT_EQ(all.size(), 8u);
    EXPECT_EQ(AntagonistName(all[0]), "LLC (small)");
    EXPECT_EQ(AntagonistName(all[7]), "brain");
    EXPECT_EQ(CharacterizationRig::PaperLoads().size(), 19u);
}

TEST(Characterization, BrainOsOnlyAlwaysViolates)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Websearch(),
                            sim::Seconds(10), sim::Seconds(20));
    EXPECT_GT(rig.RunCell(AntagonistKind::kBrainOsOnly, 0.3), 1.0);
}

TEST(Characterization, DramAntagonistCrushesLowLoad)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Websearch(),
                            sim::Seconds(10), sim::Seconds(20));
    EXPECT_GT(rig.RunCell(AntagonistKind::kDram, 0.2), 3.0);
}

TEST(Characterization, DramAntagonistFadesAtHighLoad)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Websearch(),
                            sim::Seconds(10), sim::Seconds(20));
    EXPECT_LT(rig.RunCell(AntagonistKind::kDram, 0.95), 1.0);
}

TEST(Characterization, WebsearchImmuneToNetworkAntagonist)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Websearch(),
                            sim::Seconds(10), sim::Seconds(20));
    EXPECT_LT(rig.RunCell(AntagonistKind::kNetwork, 0.5), 1.0);
}

TEST(Characterization, MemkeyvalKilledByNetworkAntagonist)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Memkeyval(),
                            sim::Seconds(10), sim::Seconds(15));
    EXPECT_LT(rig.RunCell(AntagonistKind::kNetwork, 0.25), 1.0);
    EXPECT_GT(rig.RunCell(AntagonistKind::kNetwork, 0.5), 3.0);
}

TEST(Characterization, ParallelRowsIdenticalToPerCellRuns)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Websearch(),
                            sim::Seconds(5), sim::Seconds(10));
    const std::vector<double> loads = {0.3, 0.7};

    const auto row = rig.RunRow(AntagonistKind::kDram, loads, /*jobs=*/4);
    ASSERT_EQ(row.size(), loads.size());
    for (size_t i = 0; i < loads.size(); ++i) {
        EXPECT_DOUBLE_EQ(row[i],
                         rig.RunCell(AntagonistKind::kDram, loads[i]));
    }

    const auto grid = rig.RunGrid(
        {AntagonistKind::kDram, AntagonistKind::kHyperThread}, loads,
        /*jobs=*/4);
    ASSERT_EQ(grid.size(), 2u);
    EXPECT_EQ(grid[0], row);
    EXPECT_EQ(grid[1], rig.RunRow(AntagonistKind::kHyperThread, loads, 1));

    const auto base = rig.RunBaselineRow(loads, /*jobs=*/4);
    ASSERT_EQ(base.size(), loads.size());
    EXPECT_DOUBLE_EQ(base[0], rig.RunBaseline(loads[0]));
}

TEST(Characterization, BaselineComfortableAtMidLoad)
{
    CharacterizationRig rig(hw::MachineConfig{}, workloads::Websearch(),
                            sim::Seconds(10), sim::Seconds(20));
    const double b = rig.RunBaseline(0.5);
    EXPECT_GT(b, 0.3);
    EXPECT_LT(b, 1.0);
}

}  // namespace
}  // namespace heracles::exp
