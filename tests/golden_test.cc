/**
 * @file
 * Golden-metrics regression harness over the scenario catalog.
 *
 * Every registered scenario runs at reduced scale (RunOptions::Golden())
 * and its canonical metrics record is pinned against a checked-in
 * baseline in tests/golden/<name>.json with per-metric tolerances. The
 * harness also asserts the catalog's structural guarantees: at least 12
 * scenarios spanning the workload/trace/policy/topology matrix, records
 * bit-identical between --jobs 1 and --jobs 4 fan-out, and exact
 * reproducibility from a seed.
 *
 * After an *intentional* behavior change, regenerate the baselines:
 *
 *   build/golden_test --update-golden
 *
 * and commit the tests/golden/ diff alongside the change. On an
 * unchanged tree, regeneration must produce zero diff.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "scenarios/registry.h"
#include "scenarios/runner.h"

namespace heracles::scenarios {
namespace {

bool g_update_golden = false;

std::string
GoldenPath(const std::string& scenario)
{
    return std::string(HERACLES_GOLDEN_DIR) + "/" + scenario + ".json";
}

/**
 * The catalog's reduced-scale results for a given fan-out width, run
 * once per width and cached: the baseline comparison and the
 * jobs-invariance check share the same records.
 */
const std::vector<ScenarioMetrics>&
ResultsFor(int jobs)
{
    static std::map<int, std::vector<ScenarioMetrics>> cache;
    auto it = cache.find(jobs);
    if (it == cache.end()) {
        it = cache
                 .emplace(jobs, RunScenarios(AllScenarios(),
                                             RunOptions::Golden(), jobs))
                 .first;
    }
    return it->second;
}

TEST(Catalog, SpansTheEvaluationMatrix)
{
    const auto& all = AllScenarios();
    EXPECT_GE(all.size(), 12u);

    std::set<std::string> names, lcs, policies;
    std::set<Topology> topologies;
    std::set<TraceKind> traces;
    for (const auto& s : all) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate scenario name: " << s.name;
        EXPECT_FALSE(s.description.empty()) << s.name;
        lcs.insert(s.lc);
        policies.insert(exp::PolicyName(s.policy));
        topologies.insert(s.topology);
        traces.insert(s.trace);
    }
    EXPECT_EQ(lcs.size(), 3u) << "catalog must cover all LC workloads";
    EXPECT_GE(policies.size(), 3u);
    EXPECT_EQ(topologies.size(), 2u)
        << "catalog must cover single-server and cluster";
    EXPECT_EQ(traces.size(), 4u)
        << "catalog must cover constant, step, diurnal and flash-crowd";

    // The chaos family: enough scenarios to cover actuator, telemetry,
    // interference and cluster-layer degradation, all carrying a plan.
    size_t chaos_scenarios = 0;
    for (const auto& s : all) {
        if (s.name.rfind("chaos_", 0) != 0) continue;
        ++chaos_scenarios;
        EXPECT_FALSE(s.faults.empty())
            << s.name << " must carry a fault plan";
    }
    EXPECT_GE(chaos_scenarios, 6u);
}

TEST(Catalog, ControllerIsSafeOnEveryScenario)
{
    // The invariant harness rides along on every Heracles run (clean
    // and chaotic alike); any recorded violation is a controller-safety
    // regression regardless of how the other metrics look.
    const auto& results = ResultsFor(4);
    for (const auto& m : results) {
        EXPECT_EQ(m.invariant_violations, 0.0) << m.scenario;
    }
}

TEST(Catalog, LookupByName)
{
    const ScenarioSpec* s = FindScenario("websearch_brain_heracles");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->lc, "websearch");
    EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(Golden, MatchesBaselines)
{
    const auto& results = ResultsFor(4);
    ASSERT_EQ(results.size(), AllScenarios().size());

    if (g_update_golden) {
        for (const auto& m : results) {
            std::ofstream out(GoldenPath(m.scenario));
            ASSERT_TRUE(out.good())
                << "cannot write " << GoldenPath(m.scenario);
            out << MetricsToJson(m);
        }
        std::printf("[golden] wrote %zu baselines to %s\n", results.size(),
                    HERACLES_GOLDEN_DIR);
        return;
    }

    for (const auto& m : results) {
        std::ifstream in(GoldenPath(m.scenario));
        ASSERT_TRUE(in.good())
            << "missing baseline " << GoldenPath(m.scenario)
            << " — run `golden_test --update-golden` and commit it";
        std::stringstream buf;
        buf << in.rdbuf();

        ScenarioMetrics golden;
        ASSERT_TRUE(MetricsFromJson(buf.str(), &golden))
            << "stale or malformed baseline " << GoldenPath(m.scenario)
            << " — regenerate with `golden_test --update-golden`";
        EXPECT_EQ(golden.scenario, m.scenario);

        std::vector<std::string> mismatches;
        if (!WithinTolerance(m, golden, &mismatches)) {
            for (const auto& line : mismatches) {
                ADD_FAILURE() << line;
            }
        }
    }
}

TEST(Golden, ParallelFanOutIsBitIdentical)
{
    const auto& serial = ResultsFor(1);
    const auto& parallel = ResultsFor(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i].ExactlyEquals(parallel[i]))
            << "jobs=4 diverged from jobs=1 for " << serial[i].scenario;
    }
}

TEST(Golden, SameSeedSameMetrics)
{
    // Any run is exactly reproducible from its command line: the same
    // (scenario, scale, seed) triple yields the same record bit for bit,
    // and a different seed yields a genuinely different simulation.
    const ScenarioSpec* spec = FindScenario("websearch_brain_heracles");
    ASSERT_NE(spec, nullptr);
    RunOptions opts = RunOptions::Golden();
    opts.seed = 1234;
    const ScenarioMetrics a = RunScenario(*spec, opts);
    const ScenarioMetrics b = RunScenario(*spec, opts);
    EXPECT_TRUE(a.ExactlyEquals(b));

    opts.seed = 4321;
    const ScenarioMetrics c = RunScenario(*spec, opts);
    EXPECT_FALSE(a.ExactlyEquals(c));
}

TEST(Golden, JsonRoundTripsExactly)
{
    const auto& results = ResultsFor(4);
    ASSERT_FALSE(results.empty());
    for (const auto& m : results) {
        ScenarioMetrics back;
        ASSERT_TRUE(MetricsFromJson(MetricsToJson(m), &back)) << m.scenario;
        EXPECT_TRUE(back.ExactlyEquals(m)) << m.scenario;
    }
}

}  // namespace
}  // namespace heracles::scenarios

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden") {
            heracles::scenarios::g_update_golden = true;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
