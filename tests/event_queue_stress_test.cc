/**
 * @file
 * Randomized stress test for sim::EventQueue.
 *
 * Seeded random interleavings of Schedule / SchedulePeriodic / Cancel /
 * RunFor are executed against both the real queue and a deliberately
 * naive reference implementation (a flat vector scanned for the minimum
 * (time, insertion-seq) on every pop). The firing logs must match token
 * for token and timestamp for timestamp — in particular across the O(1)
 * Cancel bookkeeping: cancelling pending, fired, periodic and
 * already-cancelled events must never change what else fires.
 *
 * Failures shrink: the harness bisects the op sequence to the shortest
 * failing prefix and reports the seed plus that length, so a regression
 * reproduces from two integers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace heracles::sim {
namespace {

// --------------------------------------------------------------------------
// Naive reference model

/** Mirrors EventQueue semantics with O(n) scans instead of a heap. */
class RefQueue
{
  public:
    void
    Schedule(SimTime when, Duration period, uint64_t token)
    {
        evs_.push_back(Ev{when, next_seq_++, token, period});
    }

    void
    Cancel(uint64_t token)
    {
        for (auto it = evs_.begin(); it != evs_.end(); ++it) {
            if (it->token == token) {
                evs_.erase(it);
                return;
            }
        }
    }

    void
    RunUntil(SimTime until, std::vector<std::pair<uint64_t, SimTime>>* log)
    {
        for (;;) {
            size_t best = evs_.size();
            for (size_t i = 0; i < evs_.size(); ++i) {
                if (evs_[i].when > until) continue;
                if (best == evs_.size() || evs_[i].when < evs_[best].when ||
                    (evs_[i].when == evs_[best].when &&
                     evs_[i].seq < evs_[best].seq)) {
                    best = i;
                }
            }
            if (best == evs_.size()) break;
            const Ev e = evs_[best];
            evs_.erase(evs_.begin() + best);
            now_ = e.when;
            log->emplace_back(e.token, e.when);
            if (e.period > 0) {
                Schedule(now_ + e.period, e.period, e.token);
            }
        }
        if (now_ < until) now_ = until;
    }

    SimTime now() const { return now_; }
    size_t pending() const { return evs_.size(); }

  private:
    struct Ev {
        SimTime when;
        uint64_t seq;
        uint64_t token;
        Duration period;
    };
    std::vector<Ev> evs_;
    SimTime now_ = 0;
    uint64_t next_seq_ = 0;
};

// --------------------------------------------------------------------------
// Op-sequence generation and execution

struct Op {
    enum Kind { kOneShot, kPeriodic, kCancel, kRun } kind;
    Duration a = 0;       // delay / period / run span
    Duration b = 0;       // phase
    uint64_t target = 0;  // token picked for kCancel (modulo count so far)
};

std::vector<Op>
GenOps(uint64_t seed, size_t n)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        Op op;
        const uint64_t dice = rng.UniformInt(100);
        if (dice < 35) {
            op.kind = Op::kOneShot;
            op.a = static_cast<Duration>(rng.UniformInt(100));  // incl. 0
        } else if (dice < 50) {
            op.kind = Op::kPeriodic;
            op.a = static_cast<Duration>(1 + rng.UniformInt(20));
            op.b = static_cast<Duration>(rng.UniformInt(10));
        } else if (dice < 75) {
            op.kind = Op::kCancel;
            op.target = rng.Next64();  // resolved modulo live tokens
        } else {
            op.kind = Op::kRun;
            op.a = static_cast<Duration>(rng.UniformInt(50));  // incl. 0
        }
        ops.push_back(op);
    }
    return ops;
}

/**
 * Executes the first @p n ops against both queues, then drains. Returns
 * an empty string on agreement, else a description of the divergence.
 */
std::string
RunOps(const std::vector<Op>& ops, size_t n)
{
    EventQueue q;
    RefQueue ref;
    std::vector<std::pair<uint64_t, SimTime>> got, want;
    std::vector<EventQueue::EventId> real_ids;  // index = token
    std::vector<Duration> periods;              // 0 for one-shots

    auto fire = [&got, &q](uint64_t token) {
        got.emplace_back(token, q.Now());
    };

    for (size_t i = 0; i < n; ++i) {
        const Op& op = ops[i];
        switch (op.kind) {
          case Op::kOneShot: {
            const uint64_t token = real_ids.size();
            real_ids.push_back(
                q.ScheduleAfter(op.a, [fire, token] { fire(token); }));
            periods.push_back(0);
            ref.Schedule(q.Now() + op.a, 0, token);
            break;
          }
          case Op::kPeriodic: {
            const uint64_t token = real_ids.size();
            real_ids.push_back(q.SchedulePeriodic(
                op.a, op.b, [fire, token] { fire(token); }));
            periods.push_back(op.a);
            ref.Schedule(q.Now() + op.b, op.a, token);
            break;
          }
          case Op::kCancel: {
            if (real_ids.empty()) break;
            const uint64_t token = op.target % real_ids.size();
            q.Cancel(real_ids[token]);
            ref.Cancel(token);
            break;
          }
          case Op::kRun:
            q.RunFor(op.a);
            ref.RunUntil(q.Now(), &want);
            break;
        }
        if (q.Now() != ref.now()) {
            return "clock divergence after op " + std::to_string(i);
        }
        if (got.size() != want.size() || got != want) {
            return "firing-log divergence after op " + std::to_string(i);
        }
    }

    // Cancel every periodic event, then drain: the heap must empty and
    // the O(1)-cancel backlog must be fully reclaimed.
    for (uint64_t token = 0; token < real_ids.size(); ++token) {
        if (periods[token] > 0) {
            q.Cancel(real_ids[token]);
            ref.Cancel(token);
        }
    }
    q.RunFor(Duration{1} << 20);
    ref.RunUntil(q.Now(), &want);
    if (got != want) return "firing-log divergence after drain";
    if (q.pending() != 0) {
        return "queue not drained: " + std::to_string(q.pending());
    }
    if (q.cancelled_backlog() != 0) {
        return "cancel bookkeeping leaked: " +
               std::to_string(q.cancelled_backlog());
    }
    if (q.pool_free() != q.pool_slots()) {
        // Every slab slot must be back on the free list once the heap
        // drains: a fired or cancelled event that never releases its
        // slot is a pool leak even when the firing log agrees.
        return "event pool leaked: " + std::to_string(q.pool_slots()) +
               " slots, " + std::to_string(q.pool_free()) + " free";
    }
    if (ref.pending() != 0) return "reference not drained";
    return "";
}

/** Shrinks a failing op count to the smallest failing prefix. */
size_t
Shrink(const std::vector<Op>& ops, size_t failing_n)
{
    size_t lo = 0, hi = failing_n;  // invariant: hi fails
    while (lo + 1 < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (RunOps(ops, mid).empty()) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return hi;
}

TEST(EventQueueStress, RandomInterleavingsMatchNaiveReference)
{
    constexpr size_t kOps = 400;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        const std::vector<Op> ops = GenOps(seed, kOps);
        const std::string failure = RunOps(ops, ops.size());
        if (!failure.empty()) {
            const size_t minimal = Shrink(ops, ops.size());
            FAIL() << failure << " (seed " << seed
                   << ", shrinks to first " << minimal << " of " << kOps
                   << " ops: rerun RunOps(GenOps(" << seed << ", " << kOps
                   << "), " << minimal << "))";
        }
    }
}

TEST(EventQueueStress, SameSeedSameLog)
{
    // The harness itself must be deterministic, or a reported (seed,
    // prefix) pair would not reproduce.
    const std::vector<Op> a = GenOps(7, 200);
    const std::vector<Op> b = GenOps(7, 200);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].a, b[i].a);
        EXPECT_EQ(a[i].b, b[i].b);
        EXPECT_EQ(a[i].target, b[i].target);
    }
}

TEST(EventQueueStress, CancelInsideCallbackIsCleanNoOp)
{
    // A one-shot cancelling itself mid-fire, and a periodic cancelled
    // from another callback at the same timestamp, leave no bookkeeping.
    EventQueue q;
    int fired = 0;
    EventQueue::EventId self = 0;
    self = q.ScheduleAfter(10, [&] {
        ++fired;
        q.Cancel(self);  // already fired: must be a no-op
    });
    EventQueue::EventId periodic =
        q.SchedulePeriodic(5, 0, [&] { ++fired; });
    q.ScheduleAfter(10, [&] { q.Cancel(periodic); });
    q.RunFor(100);
    // Periodic fires at t=0 and t=5; its t=10 occurrence was rescheduled
    // at t=5 so it sorts after the canceller at the same timestamp and is
    // dropped. The self-canceller fires once at t=10.
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.cancelled_backlog(), 0u);
}

}  // namespace
}  // namespace heracles::sim
