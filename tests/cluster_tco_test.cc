/**
 * @file
 * Tests for the fan-out cluster simulator and the TCO model.
 */
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "tco/tco.h"

namespace heracles {
namespace {

// --------------------------------------------------------------------------
// TCO model

TEST(Tco, PowerLinearInUtilization)
{
    tco::TcoModel m;
    EXPECT_DOUBLE_EQ(m.ServerPowerW(0.0), m.params().idle_power_w);
    EXPECT_DOUBLE_EQ(m.ServerPowerW(1.0), m.params().peak_power_w);
    EXPECT_NEAR(m.ServerPowerW(0.5),
                0.5 * (m.params().idle_power_w + m.params().peak_power_w),
                1e-9);
}

TEST(Tco, TcoIncreasesWithUtilization)
{
    tco::TcoModel m;
    EXPECT_LT(m.MonthlyTcoPerServer(0.2), m.MonthlyTcoPerServer(0.9));
}

TEST(Tco, ThroughputPerTcoIncreasesWithUtilization)
{
    tco::TcoModel m;
    double prev = 0.0;
    for (double u = 0.1; u <= 1.0; u += 0.1) {
        const double v = m.ThroughputPerTco(u);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(Tco, PaperGainBusyCluster)
{
    // 75% -> 90%: the paper reports ~15%.
    tco::TcoModel m;
    EXPECT_NEAR(m.GainFromUtilization(0.75, 0.90), 0.15, 0.04);
}

TEST(Tco, PaperGainIdleCluster)
{
    // 20% -> 90%: the paper reports ~306%; the linear-power model lands
    // in the same regime (roughly 3-4x).
    tco::TcoModel m;
    const double gain = m.GainFromUtilization(0.20, 0.90);
    EXPECT_GT(gain, 2.2);
    EXPECT_LT(gain, 3.5);
}

TEST(Tco, EnergyProportionalityGainsAreSmall)
{
    tco::TcoModel m;
    EXPECT_LT(m.EnergyProportionalityGain(0.75), 0.07);
    EXPECT_LT(m.EnergyProportionalityGain(0.20), 0.12);
    EXPECT_GT(m.EnergyProportionalityGain(0.20),
              m.EnergyProportionalityGain(0.75));
}

TEST(Tco, ClusterScalesByServerCount)
{
    tco::TcoModel m;
    EXPECT_NEAR(m.ClusterTcoMonth(0.5),
                m.MonthlyTcoPerServer(0.5) * m.params().servers, 1e-6);
}

TEST(Tco, EnergyCostUsesPue)
{
    tco::TcoParams p;
    p.pue = 1.0;
    tco::TcoModel base(p);
    p.pue = 2.0;
    tco::TcoModel doubled(p);
    EXPECT_NEAR(doubled.EnergyCostMonth(0.5),
                2.0 * base.EnergyCostMonth(0.5), 1e-9);
}

TEST(TcoDeath, RejectsIdleAbovePeak)
{
    tco::TcoParams p;
    p.idle_power_w = 600.0;
    EXPECT_DEATH(tco::TcoModel{p}, "peak_power_w");
}

// --------------------------------------------------------------------------
// Cluster simulator (small configs to stay fast)

cluster::ClusterConfig
TinyCluster()
{
    cluster::ClusterConfig cfg;
    cfg.leaves = 3;
    cfg.duration = sim::Minutes(4);
    cfg.seed = 7;
    return cfg;
}

TEST(Cluster, TargetIsMeasuredAndPlausible)
{
    cluster::ClusterExperiment e(TinyCluster());
    const sim::Duration target = e.MeasureTarget();
    // Root latency at 90% load: above the leaf mean service time and
    // below the leaf SLO (it is a mean, not a tail).
    EXPECT_GT(target, sim::Millis(4));
    EXPECT_LT(target, sim::Millis(20));
}

TEST(Cluster, BaselineRunsWithoutViolation)
{
    cluster::ClusterConfig cfg = TinyCluster();
    cfg.colocate = false;
    cluster::ClusterExperiment e(cfg);
    const auto r = e.Run();
    EXPECT_FALSE(r.slo_violated);
    EXPECT_GT(r.latency_frac.size(), 3u);
    // Baseline EMU equals the offered load.
    EXPECT_NEAR(r.avg_emu, r.load.MeanValue(), 0.1);
}

TEST(Cluster, HeraclesRaisesEmuWithoutViolation)
{
    cluster::ClusterConfig cfg = TinyCluster();
    cfg.duration = sim::Minutes(8);
    cluster::ClusterExperiment e(cfg);
    const auto r = e.Run();
    EXPECT_FALSE(r.slo_violated) << "worst " << r.worst_latency_frac;
    EXPECT_GT(r.avg_emu, r.load.MeanValue() + 0.15);
}

TEST(Cluster, LoadSeriesFollowsDiurnalShape)
{
    cluster::ClusterConfig cfg = TinyCluster();
    cfg.colocate = false;
    cluster::ClusterExperiment e(cfg);
    const auto r = e.Run();
    EXPECT_GT(r.load.MaxValue(), 0.6);
    EXPECT_LT(r.load.MinValue(), 0.5);
}

}  // namespace
}  // namespace heracles
