/**
 * @file
 * The epoch engine's two contracts, asserted directly:
 *
 *  1. Thread-count invariance: every cluster scenario in the catalog
 *     (clean weather and chaos alike) produces a bit-identical metrics
 *     record with the leaf fan-out serial (cluster_jobs=1) and parallel
 *     (cluster_jobs=4). The golden harness separately pins *what* those
 *     records contain; this suite pins that parallelism cannot change
 *     them.
 *
 *  2. The barrier clock: every instant where cross-leaf state may move
 *     (SLO window closes, scheduler ticks, leaf crash/recover and
 *     slack-freeze boundaries, end of run) is a barrier, the schedule
 *     is sorted and duplicate-free, and it depends only on the
 *     configuration — never on thread count or event timing.
 */
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "cluster/epoch.h"
#include "scenarios/registry.h"
#include "scenarios/runner.h"

namespace heracles {
namespace {

using cluster::BarrierClock;

/** Every cluster scenario in the catalog, by name — one test case
 *  each, so a divergence names its scenario and a slow run doesn't
 *  hide behind one monolithic test. */
std::vector<std::string>
ClusterScenarioNames()
{
    std::vector<std::string> names;
    for (const scenarios::ScenarioSpec& s : scenarios::AllScenarios()) {
        if (s.topology == scenarios::Topology::kCluster) {
            names.push_back(s.name);
        }
    }
    return names;
}

class JobsInvariance : public ::testing::TestWithParam<std::string>
{
};

TEST_P(JobsInvariance, SerialAndParallelRunsAreBitIdentical)
{
    const scenarios::ScenarioSpec& spec =
        scenarios::MustFindScenario(GetParam());

    scenarios::RunOptions serial = scenarios::RunOptions::Golden();
    serial.cluster_jobs = 1;
    scenarios::RunOptions parallel = scenarios::RunOptions::Golden();
    parallel.cluster_jobs = 4;

    const scenarios::ScenarioMetrics a =
        scenarios::RunScenario(spec, serial);
    const scenarios::ScenarioMetrics b =
        scenarios::RunScenario(spec, parallel);
    EXPECT_TRUE(a.ExactlyEquals(b))
        << spec.name << ": cluster_jobs=4 diverged from cluster_jobs=1\n"
        << "jobs=1:\n"
        << scenarios::MetricsToJson(a) << "jobs=4:\n"
        << scenarios::MetricsToJson(b);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, JobsInvariance,
    ::testing::ValuesIn(ClusterScenarioNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        return info.param;
    });

class BatchingInvariance : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BatchingInvariance, BatchedParallelMatchesUnbatchedSerial)
{
    // The strongest pairing of the engine's two scheduling knobs: a
    // serial unbatched run against a parallel run with leaf batching
    // forced on (batch of 2 over the golden harness's 3 leaves exercises
    // an uneven final batch). Any leakage of the batch mapping or the
    // batch submission order into simulation state shows up here.
    const scenarios::ScenarioSpec& spec =
        scenarios::MustFindScenario(GetParam());

    scenarios::RunOptions serial = scenarios::RunOptions::Golden();
    serial.cluster_jobs = 1;
    serial.cluster_leaf_batch = 1;
    scenarios::RunOptions batched = scenarios::RunOptions::Golden();
    batched.cluster_jobs = 4;
    batched.cluster_leaf_batch = 2;

    const scenarios::ScenarioMetrics a =
        scenarios::RunScenario(spec, serial);
    const scenarios::ScenarioMetrics b =
        scenarios::RunScenario(spec, batched);
    EXPECT_TRUE(a.ExactlyEquals(b))
        << spec.name
        << ": jobs=4 leaf_batch=2 diverged from jobs=1 leaf_batch=1\n"
        << "serial:\n"
        << scenarios::MetricsToJson(a) << "batched:\n"
        << scenarios::MetricsToJson(b);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, BatchingInvariance,
    ::testing::ValuesIn(ClusterScenarioNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        return info.param;
    });

TEST(LeafBatching, AutoPolicyBatchesOnlyLargeClusters)
{
    // The mapping is configuration-only: leaf count + configured size.
    EXPECT_EQ(cluster::LeafBatching::Resolve(3, 0).batch_size, 1u);
    EXPECT_EQ(cluster::LeafBatching::Resolve(63, 0).batch_size, 1u);
    EXPECT_EQ(cluster::LeafBatching::Resolve(64, 0).batch_size, 8u);
    EXPECT_EQ(cluster::LeafBatching::Resolve(1024, 0).batch_size, 8u);
}

TEST(LeafBatching, ExplicitSizeIsClampedToLeafCount)
{
    EXPECT_EQ(cluster::LeafBatching::Resolve(3, 8).batch_size, 3u);
    EXPECT_EQ(cluster::LeafBatching::Resolve(100, 16).batch_size, 16u);
    EXPECT_EQ(cluster::LeafBatching::Resolve(0, 5).batches(), 0u);
}

TEST(LeafBatching, MappingPinsContiguousBatches)
{
    // 10 leaves in batches of 4: [0..3], [4..7], [8..9]. This exact
    // mapping is what makes a batched run reproducible — pin it.
    const cluster::LeafBatching b = cluster::LeafBatching::Resolve(10, 4);
    EXPECT_EQ(b.batches(), 3u);
    EXPECT_EQ(b.BatchOf(0), 0u);
    EXPECT_EQ(b.BatchOf(3), 0u);
    EXPECT_EQ(b.BatchOf(4), 1u);
    EXPECT_EQ(b.BatchOf(7), 1u);
    EXPECT_EQ(b.BatchOf(9), 2u);
    EXPECT_EQ(b.BatchBegin(1), 4u);
    EXPECT_EQ(b.BatchEnd(1), 8u);
    EXPECT_EQ(b.BatchEnd(2), 10u);  // final batch is short
    for (size_t leaf = 0; leaf < 10; ++leaf) {
        const size_t batch = b.BatchOf(leaf);
        EXPECT_GE(leaf, b.BatchBegin(batch));
        EXPECT_LT(leaf, b.BatchEnd(batch));
    }
}

TEST(BarrierClock, ContainsEveryWindowAndSchedulerTick)
{
    const sim::Duration duration = sim::Seconds(200);
    const sim::Duration window = sim::Seconds(30);
    const sim::Duration period = sim::Seconds(45);
    const BarrierClock clock =
        BarrierClock::Build(duration, window, period, {});

    for (sim::SimTime t = window; t <= duration; t += window) {
        EXPECT_TRUE(clock.IsBarrier(t)) << "missing window close at " << t;
    }
    for (sim::SimTime t = period; t <= duration; t += period) {
        EXPECT_TRUE(clock.IsBarrier(t))
            << "missing scheduler tick at " << t;
    }
    // The run's final instant is always a barrier, even when (as here,
    // 200s) it is a multiple of neither period.
    EXPECT_EQ(clock.barriers.back(), duration);
    EXPECT_TRUE(clock.IsBarrier(duration));
    EXPECT_FALSE(clock.IsBarrier(0));
    EXPECT_FALSE(clock.IsBarrier(sim::Seconds(29)));
}

TEST(BarrierClock, IsSortedAndUnique)
{
    // window and scheduler share multiples (60, 120, ...) — each must
    // appear exactly once, in order.
    const BarrierClock clock = BarrierClock::Build(
        sim::Seconds(180), sim::Seconds(30), sim::Seconds(60), {});
    for (size_t i = 1; i < clock.barriers.size(); ++i) {
        EXPECT_LT(clock.barriers[i - 1], clock.barriers[i]);
    }
}

TEST(BarrierClock, FaultBoundariesLandOnExactBarriers)
{
    // The scenario-layer guarantee behind chaos_cluster_*: a leaf crash
    // or slack-freeze window resolved from plan fractions begins and
    // ends exactly at a barrier, so liveness and frozen exports change
    // only between epochs — never inside one — and the parallel run
    // cannot order a crash against in-flight leaf events differently
    // than the serial run.
    const sim::Duration duration = sim::Minutes(8);
    chaos::FaultPlan plan;
    plan.faults = {chaos::LeafCrash(1, 0.55, 0.85),
                   chaos::SlackFreeze(0, 0.25, 0.75)};
    std::vector<chaos::TimedFault> resolved;
    for (const chaos::FaultSpec& f : plan.faults) {
        resolved.push_back(chaos::ResolveWindow(f, duration));
    }

    const BarrierClock clock = BarrierClock::Build(
        duration, sim::Seconds(30), sim::Seconds(30), resolved);
    for (const chaos::TimedFault& f : resolved) {
        EXPECT_TRUE(clock.IsBarrier(f.begin))
            << "fault begin " << f.begin << " is not a barrier";
        EXPECT_TRUE(clock.IsBarrier(f.end))
            << "fault end " << f.end << " is not a barrier";
    }
}

TEST(BarrierClock, IgnoresFaultBoundariesOutsideTheRun)
{
    std::vector<chaos::TimedFault> faults(1);
    faults[0].kind = chaos::FaultKind::kLeafCrash;
    faults[0].leaf = 0;
    faults[0].begin = 0;                  // applied before the first epoch
    faults[0].end = sim::Seconds(999);    // beyond the run: never recovers
    const BarrierClock clock = BarrierClock::Build(
        sim::Seconds(90), sim::Seconds(30), 0, faults);
    EXPECT_FALSE(clock.IsBarrier(0));
    EXPECT_FALSE(clock.IsBarrier(sim::Seconds(999)));
    EXPECT_EQ(clock.barriers.back(), sim::Seconds(90));
}

}  // namespace
}  // namespace heracles
