/**
 * @file
 * A scriptable Platform implementation for controller unit tests: every
 * monitor reading is a settable field, every actuator call is recorded.
 */
#ifndef HERACLES_TESTS_FAKE_PLATFORM_H
#define HERACLES_TESTS_FAKE_PLATFORM_H

#include <algorithm>

#include "platform/iface.h"

namespace heracles::testing {

class FakePlatform : public platform::Platform
{
  public:
    // Monitor values (fields are the test's script).
    sim::Duration tail = sim::Millis(6);
    sim::Duration fast_tail = sim::Millis(6);
    sim::Duration slo = sim::Millis(12);
    double load = 0.4;
    double lc_cpu_util = 0.4;
    double dram_gbps = 20.0;
    double dram_peak = 100.0;
    double be_dram = 5.0;
    double socket_power[2] = {80.0, 80.0};
    double tdp = 145.0;
    double lc_freq = 2.5;
    double guaranteed = 2.5;
    double lc_tx = 1.0;
    double link_rate = 10.0;
    double be_rate = 10.0;
    bool has_be = true;

    // Actuator state.
    int be_cores = 0;
    int be_ways = 0;
    double be_freq_cap = 0.0;
    double be_net_ceil = -1.0;

    // Call counters.
    int set_cores_calls = 0;
    int set_ways_calls = 0;
    int set_cap_calls = 0;
    int set_ceil_calls = 0;

    // Optional hooks applied on actuation (simulate plant response).
    std::function<void(int)> on_set_cores;
    std::function<void(int)> on_set_ways;

    sim::EventQueue& queue() override { return queue_; }

    sim::Duration LcTailLatency() override { return tail; }
    sim::Duration LcFastTailLatency() override { return fast_tail; }
    sim::Duration LcSlo() override { return slo; }
    double LcLoad() override { return load; }
    double LcCpuUtilization() override { return lc_cpu_util; }

    double MeasuredDramGbps() override { return dram_gbps; }
    double DramPeakGbps() override { return dram_peak; }
    double BeDramEstimateGbps() override { return be_dram; }

    int Sockets() override { return 2; }
    double SocketPowerW(int s) override { return socket_power[s]; }
    double TdpW() override { return tdp; }
    double LcFreqGhz() override { return lc_freq; }
    double GuaranteedLcFreqGhz() override { return guaranteed; }
    double MinGhz() override { return 1.2; }
    double MaxGhz() override { return 3.6; }
    double FreqStepGhz() override { return 0.1; }
    double BeFreqCapGhz() override { return be_freq_cap; }
    void
    SetBeFreqCapGhz(double ghz) override
    {
        be_freq_cap = ghz;
        ++set_cap_calls;
    }

    double LcTxGbps() override { return lc_tx; }
    double LinkRateGbps() override { return link_rate; }
    void
    SetBeNetCeilGbps(double gbps) override
    {
        be_net_ceil = gbps;
        ++set_ceil_calls;
    }

    int TotalPhysCores() override { return 36; }
    int BeCores() override { return be_cores; }
    void
    SetBeCores(int cores) override
    {
        be_cores = std::clamp(cores, 0, 35);
        ++set_cores_calls;
        if (on_set_cores) on_set_cores(be_cores);
    }
    int TotalLlcWays() override { return 20; }
    int BeWays() override { return be_ways; }
    void
    SetBeWays(int ways) override
    {
        be_ways = std::clamp(ways, 0, 16);
        ++set_ways_calls;
        if (on_set_ways) on_set_ways(be_ways);
    }

    bool HasBeJob() override { return has_be; }
    double BeRate() override { return be_rate; }

  private:
    sim::EventQueue queue_;
};

}  // namespace heracles::testing

#endif  // HERACLES_TESTS_FAKE_PLATFORM_H
