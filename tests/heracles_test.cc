/**
 * @file
 * Tests for the Heracles controller: the offline bandwidth model, each
 * subcontroller against a scripted FakePlatform, the top-level state
 * machine, and closed-loop integration with the simulated server.
 */
#include <gtest/gtest.h>

#include "fake_platform.h"
#include "heracles/bw_model.h"
#include "heracles/controller.h"
#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "workloads/antagonists.h"
#include "workloads/lc_configs.h"

namespace heracles::ctl {
namespace {

using heracles::testing::FakePlatform;

hw::MachineConfig
Cfg()
{
    return hw::MachineConfig{};
}

// --------------------------------------------------------------------------
// LcBwModel

TEST(BwModel, EmptyPredictsZero)
{
    LcBwModel m;
    EXPECT_TRUE(m.empty());
    EXPECT_DOUBLE_EQ(m.Evaluate(0.5, 18, 10), 0.0);
}

TEST(BwModel, ProfileMatchesAnalyticCurve)
{
    const auto p = workloads::Websearch();
    const LcBwModel m = LcBwModel::Profile(p, Cfg());
    EXPECT_FALSE(m.empty());
    for (double load : {0.1, 0.4, 0.8, 1.0}) {
        // Full-cache column: the model should match the warm curve.
        const double expect = workloads::LcApp::AnalyticDramGbps(
            p, Cfg(), load,
            p.cache.instr_mb + workloads::LcApp::DataFootprintMb(p, load));
        EXPECT_NEAR(m.Evaluate(load, 36, 20), expect, 1.5) << load;
    }
}

TEST(BwModel, MonotoneInLoad)
{
    const LcBwModel m = LcBwModel::Profile(workloads::Websearch(), Cfg());
    double prev = -1.0;
    for (double load = 0.0; load <= 1.0; load += 0.05) {
        const double v = m.Evaluate(load, 36, 16);
        EXPECT_GE(v, prev - 1e-9);
        prev = v;
    }
}

TEST(BwModel, FewerWaysMoreBandwidth)
{
    const LcBwModel m = LcBwModel::Profile(workloads::Websearch(), Cfg());
    EXPECT_GT(m.Evaluate(0.8, 36, 2), m.Evaluate(0.8, 36, 20));
}

TEST(BwModel, ClampsOutOfRangeInputs)
{
    const LcBwModel m = LcBwModel::Profile(workloads::Websearch(), Cfg());
    EXPECT_DOUBLE_EQ(m.Evaluate(-0.5, 36, 10), m.Evaluate(0.0, 36, 10));
    EXPECT_DOUBLE_EQ(m.Evaluate(2.0, 36, 10), m.Evaluate(1.0, 36, 10));
    EXPECT_DOUBLE_EQ(m.Evaluate(0.5, 36, 100), m.Evaluate(0.5, 36, 20));
}

TEST(BwModel, ZeroLoadPredictsNearZero)
{
    // An idle service streams (almost) nothing; the zero-load column
    // must be finite, non-negative and far below the loaded curve for
    // every profiled LC workload.
    for (const auto& p : workloads::AllLcWorkloads()) {
        const LcBwModel m = LcBwModel::Profile(p, Cfg());
        const double idle = m.Evaluate(0.0, 36, 16);
        EXPECT_GE(idle, 0.0) << p.name;
        EXPECT_LT(idle, 0.25 * m.Evaluate(1.0, 36, 16)) << p.name;
    }
}

TEST(BwModel, SaturatesNearTheWorkloadPeakFraction)
{
    // At full load with a warm cache the prediction lands near the
    // characterized peak_dram_frac of the machine's streaming peak
    // (Section 3.1), and never above the machine's physical peak.
    for (const auto& p : workloads::AllLcWorkloads()) {
        const LcBwModel m = LcBwModel::Profile(p, Cfg());
        const double peak = Cfg().TotalDramGbps();
        const double full = m.Evaluate(1.0, 36, 20);
        EXPECT_LE(full, peak) << p.name;
        EXPECT_NEAR(full, p.peak_dram_frac * peak,
                    0.25 * p.peak_dram_frac * peak)
            << p.name;
    }
}

TEST(BwModel, PredictionInvariantInCoreCount)
{
    // The documented contract: cores is accepted for interface fidelity
    // but the profiled bandwidth depends on (load, ways) only — the
    // prediction must be exactly flat (hence trivially monotone) as the
    // LC core count varies at a fixed load.
    const LcBwModel m = LcBwModel::Profile(workloads::Websearch(), Cfg());
    for (double load : {0.0, 0.3, 0.7, 1.0}) {
        const double base = m.Evaluate(load, 1, 12);
        for (int cores : {2, 8, 18, 35, 36}) {
            EXPECT_DOUBLE_EQ(m.Evaluate(load, cores, 12), base)
                << "load " << load << " cores " << cores;
        }
    }
}

// --------------------------------------------------------------------------
// Network subcontroller (Algorithm 4)

TEST(NetCtl, AppliesPaperFormula)
{
    FakePlatform p;
    p.lc_tx = 4.0;
    NetworkController net(p, HeraclesConfig{});
    net.Tick();
    // 10 - 4 - max(0.5, 0.4) = 5.5
    EXPECT_NEAR(p.be_net_ceil, 5.5, 1e-9);
}

TEST(NetCtl, LinkFractionHeadroomDominatesAtLowLcBw)
{
    FakePlatform p;
    p.lc_tx = 1.0;
    NetworkController net(p, HeraclesConfig{});
    net.Tick();
    // 10 - 1 - max(0.5, 0.1) = 8.5
    EXPECT_NEAR(p.be_net_ceil, 8.5, 1e-9);
}

TEST(NetCtl, NeverNegative)
{
    FakePlatform p;
    p.lc_tx = 9.9;
    NetworkController net(p, HeraclesConfig{});
    net.Tick();
    EXPECT_GE(p.be_net_ceil, 0.0);
}

// --------------------------------------------------------------------------
// Power subcontroller (Algorithm 3)

TEST(PowerCtl, LowersBeFrequencyWhenHotAndSlow)
{
    FakePlatform p;
    p.be_cores = 10;
    p.socket_power[0] = 140.0;  // > 0.9 * 145
    p.lc_freq = 2.0;            // below guaranteed 2.5
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_GT(p.set_cap_calls, 0);
    EXPECT_LT(p.be_freq_cap, 3.6);
    EXPECT_GE(p.be_freq_cap, 1.2);
}

TEST(PowerCtl, RepeatedTicksReachFloor)
{
    FakePlatform p;
    p.be_cores = 10;
    p.socket_power[0] = 140.0;
    p.lc_freq = 2.0;
    PowerController ctl(p, HeraclesConfig{});
    for (int i = 0; i < 30; ++i) ctl.Tick();
    EXPECT_NEAR(p.be_freq_cap, 1.2, 1e-9);
}

TEST(PowerCtl, RaisesBeFrequencyWithHeadroom)
{
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 1.2;
    p.socket_power[0] = p.socket_power[1] = 100.0;
    p.lc_freq = 2.6;  // above guaranteed
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_GT(p.be_freq_cap, 1.2);
}

TEST(PowerCtl, FullyUncapsAtMax)
{
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 3.5;
    p.socket_power[0] = p.socket_power[1] = 100.0;
    p.lc_freq = 2.6;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 0.0);  // uncapped
}

TEST(PowerCtl, NoActionWhenConditionsConflict)
{
    // Hot but LC already at guaranteed frequency: leave caps alone
    // (avoids confusion from active-idle frequency readings).
    FakePlatform p;
    p.be_cores = 10;
    p.be_freq_cap = 2.0;
    p.socket_power[0] = 140.0;
    p.lc_freq = 2.6;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 2.0);
}

TEST(PowerCtl, WorstSocketDrives)
{
    FakePlatform p;
    p.be_cores = 10;
    p.socket_power[0] = 80.0;
    p.socket_power[1] = 141.0;  // only socket 1 is hot
    p.lc_freq = 2.0;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_GT(p.set_cap_calls, 0);
}

TEST(PowerCtl, ReleasesCapWhenBeDisabled)
{
    FakePlatform p;
    p.be_cores = 0;
    p.be_freq_cap = 1.5;
    PowerController ctl(p, HeraclesConfig{});
    ctl.Tick();
    EXPECT_DOUBLE_EQ(p.be_freq_cap, 0.0);
}

// --------------------------------------------------------------------------
// Core & memory subcontroller (Algorithm 2)

HeraclesConfig
NoFastSlack()
{
    HeraclesConfig c;
    c.use_fast_slack = false;
    c.fast_shrink = false;
    return c;
}

TEST(CoreMem, StartsWithInitialAllocation)
{
    FakePlatform p;
    CoreMemController ctl(p, HeraclesConfig{}, LcBwModel{});
    ctl.OnBeEnabled();
    EXPECT_EQ(p.be_cores, 1);
    EXPECT_EQ(p.be_ways, 2);  // 10% of 20 ways
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowLlc);
}

TEST(CoreMem, DramSaturationRemovesCores)
{
    FakePlatform p;
    p.be_cores = 10;
    p.dram_gbps = 95.0;  // above the 90 GB/s limit
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(/*can_grow=*/true, /*slack=*/0.3);
    EXPECT_LT(p.be_cores, 10);
}

TEST(CoreMem, SaturationRemovalScalesWithOverage)
{
    FakePlatform p;
    p.be_cores = 20;
    p.dram_gbps = 110.0;  // 20 GB/s over the limit
    // BeBw = 110 - 0 (empty model) => per-core 5.5 => remove ceil(20/5.5)=4
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_cores, 16);
}

TEST(CoreMem, GrowCoresWithSlack)
{
    FakePlatform p;
    p.be_cores = 5;
    p.be_ways = 16;  // LLC phase exhausted
    p.dram_gbps = 30.0;
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.OnBeEnabled();
    p.be_cores = 5;
    p.be_ways = 16;
    // First tick leaves GROW_LLC (ways at cap).
    ctl.Tick(true, 0.3);
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowCores);
    const int before = p.be_cores;
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_cores, before + 1);
}

TEST(CoreMem, NoGrowthWithoutPermission)
{
    FakePlatform p;
    p.be_cores = 5;
    p.dram_gbps = 30.0;
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    const int cores = p.be_cores, ways = p.be_ways;
    ctl.Tick(/*can_grow=*/false, 0.3);
    EXPECT_EQ(p.be_cores, cores);
    EXPECT_EQ(p.be_ways, ways);
}

TEST(CoreMem, NoGrowthWithThinSlack)
{
    FakePlatform p;
    p.be_cores = 5;
    p.be_ways = 16;
    p.dram_gbps = 30.0;
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.3);  // move to GROW_CORES
    const int before = p.be_cores;
    ctl.Tick(true, /*slack=*/0.07);  // below the 10% growth threshold
    EXPECT_EQ(p.be_cores, before);
}

TEST(CoreMem, LlcGrowKeptWhenBandwidthDrops)
{
    FakePlatform p;
    p.be_cores = 4;
    p.dram_gbps = 40.0;
    // Growing the BE partition reduces measured bandwidth (more hits)
    // and speeds the BE task up.
    p.on_set_ways = [&p](int ways) {
        p.dram_gbps = 40.0 - ways;
        p.be_rate = 10.0 + ways;
    };
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.OnBeEnabled();
    p.be_cores = 4;
    const int ways = p.be_ways;
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_ways, ways + 1);
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowLlc);
}

TEST(CoreMem, LlcGrowRolledBackWhenBandwidthRises)
{
    FakePlatform p;
    p.be_cores = 4;
    p.dram_gbps = 40.0;
    p.on_set_ways = [&p](int ways) { p.dram_gbps = 40.0 + ways; };
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.OnBeEnabled();
    p.be_cores = 4;
    const int ways = p.be_ways;
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_ways, ways);  // rolled back
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowCores);
}

TEST(CoreMem, LlcPhaseEndsWithoutBeBenefit)
{
    FakePlatform p;
    p.be_cores = 4;
    p.dram_gbps = 40.0;
    p.be_rate = 10.0;  // never improves
    p.on_set_ways = [&p](int ways) { p.dram_gbps = 40.0 - ways; };
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.OnBeEnabled();
    p.be_cores = 4;
    ctl.Tick(true, 0.3);
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowCores);
}

TEST(CoreMem, ReturnsToLlcPhaseWhenNextCoreWouldSaturate)
{
    FakePlatform p;
    p.be_cores = 10;
    p.be_ways = 16;
    p.dram_gbps = 88.0;  // close to the 90 limit; per-core ~8.8
    CoreMemController ctl(p, NoFastSlack(), LcBwModel{});
    ctl.Tick(true, 0.3);  // leaves GROW_LLC (ways capped)
    ctl.Tick(true, 0.3);  // GROW_CORES: needed = 88 + 8.8 > 90
    EXPECT_EQ(ctl.state(), CoreMemController::State::kGrowLlc);
}

TEST(CoreMem, FastSlackBlocksGrowth)
{
    FakePlatform p;
    p.be_cores = 5;
    p.be_ways = 16;
    p.dram_gbps = 30.0;
    p.fast_tail = sim::Millis(11);  // fast slack = 8% < 20% margin
    HeraclesConfig cfg;  // fast slack enabled by default
    CoreMemController ctl(p, cfg, LcBwModel{});
    ctl.Tick(true, 0.3);
    const int before = p.be_cores;
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_cores, before);
}

TEST(CoreMem, FastShrinkOnImminentViolation)
{
    FakePlatform p;
    p.be_cores = 10;
    p.dram_gbps = 30.0;
    p.fast_tail = sim::Millis(11.8);  // slack ~5.6%... just above shrink
    HeraclesConfig cfg;
    CoreMemController ctl(p, cfg, LcBwModel{});
    p.fast_tail = sim::Millis(11.5);  // slack 4.2% < 5%
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_cores, 9);
}

TEST(CoreMem, FastShrinkHardOnActualViolation)
{
    FakePlatform p;
    p.be_cores = 10;
    p.fast_tail = sim::Millis(15);  // over the 12 ms SLO
    CoreMemController ctl(p, HeraclesConfig{}, LcBwModel{});
    ctl.Tick(true, 0.3);
    EXPECT_EQ(p.be_cores, 6);  // removes 4
}

TEST(CoreMem, UsesModelToEstimateBeBandwidth)
{
    FakePlatform p;
    p.be_cores = 4;
    p.dram_gbps = 50.0;
    p.load = 1.0;
    const LcBwModel model =
        LcBwModel::Profile(workloads::Websearch(), Cfg());
    CoreMemController ctl(p, NoFastSlack(), model);
    // LC model at full load, warm cache: ~40. BE = 50 - 40 = ~10.
    EXPECT_NEAR(ctl.BeBwGbps(), 10.0, 2.5);
}

// --------------------------------------------------------------------------
// Top-level controller (Algorithm 1)

struct TopRig {
    explicit TopRig(HeraclesConfig cfg = {})
        : controller(plat, cfg, LcBwModel{})
    {
        controller.Start();
    }
    FakePlatform plat;
    HeraclesController controller;
};

TEST(TopLevel, EnablesBeUnderLowLoadAndHealthySlack)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    EXPECT_TRUE(rig.controller.BeEnabled());
    EXPECT_TRUE(rig.controller.CanGrowBe());
    EXPECT_GE(rig.plat.be_cores, 1);
}

TEST(TopLevel, DoesNothingBeforeFirstLatencyWindow)
{
    TopRig rig;
    rig.plat.tail = 0;  // no window completed yet
    rig.plat.queue().RunFor(sim::Seconds(31));
    EXPECT_FALSE(rig.controller.BeEnabled());
}

TEST(TopLevel, DisablesBeOnSloViolationAndEntersCooldown)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    ASSERT_TRUE(rig.controller.BeEnabled());
    rig.plat.tail = sim::Millis(13);  // above 12 ms SLO
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_FALSE(rig.controller.BeEnabled());
    EXPECT_TRUE(rig.controller.InCooldown());
    EXPECT_EQ(rig.plat.be_cores, 0);
    EXPECT_EQ(rig.controller.stats().be_disables_slack, 1u);
}

TEST(TopLevel, CooldownBlocksReenable)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    rig.plat.tail = sim::Millis(13);
    rig.plat.queue().RunFor(sim::Seconds(15));
    rig.plat.tail = sim::Millis(6);  // healthy again
    rig.plat.queue().RunFor(sim::Minutes(2));  // still inside 5 min
    EXPECT_FALSE(rig.controller.BeEnabled());
    rig.plat.queue().RunFor(sim::Minutes(4));  // past the cooldown
    EXPECT_TRUE(rig.controller.BeEnabled());
}

TEST(TopLevel, HighLoadDisablesWithHysteresis)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    ASSERT_TRUE(rig.controller.BeEnabled());
    rig.plat.load = 0.87;
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_FALSE(rig.controller.BeEnabled());
    EXPECT_EQ(rig.controller.stats().be_disables_load, 1u);
    // Load in the hysteresis band [0.80, 0.85]: stays disabled.
    rig.plat.load = 0.82;
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_FALSE(rig.controller.BeEnabled());
    // Below 0.80: re-enabled (no cooldown for load disables).
    rig.plat.load = 0.78;
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_TRUE(rig.controller.BeEnabled());
}

TEST(TopLevel, ThinSlackDisallowsGrowth)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    rig.plat.tail = sim::Millis(11);  // slack ~8%
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_TRUE(rig.controller.BeEnabled());
    EXPECT_FALSE(rig.controller.CanGrowBe());
}

TEST(TopLevel, CriticalSlackStripsCoresToTwo)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    rig.plat.be_cores = 20;
    rig.plat.tail = sim::Millis(11.5);  // slack ~4%
    rig.plat.queue().RunFor(sim::Seconds(15));
    EXPECT_EQ(rig.plat.be_cores, 2);
    EXPECT_EQ(rig.controller.stats().core_shrinks, 1u);
}

TEST(TopLevel, NoBeJobNoEnable)
{
    TopRig rig;
    rig.plat.has_be = false;
    rig.plat.queue().RunFor(sim::Seconds(31));
    EXPECT_FALSE(rig.controller.BeEnabled());
}

TEST(TopLevel, StopCancelsLoops)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(16));
    rig.controller.Stop();
    const auto polls = rig.controller.stats().polls;
    rig.plat.queue().RunFor(sim::Minutes(2));
    EXPECT_EQ(rig.controller.stats().polls, polls);
}

TEST(TopLevel, SubcontrollerLoopsRespectAblationFlags)
{
    HeraclesConfig cfg;
    cfg.enable_net = false;
    TopRig rig(cfg);
    rig.plat.queue().RunFor(sim::Seconds(20));
    EXPECT_EQ(rig.plat.set_ceil_calls, 0);
}

TEST(TopLevel, NetworkCeilUpdatesEverySecond)
{
    TopRig rig;
    rig.plat.queue().RunFor(sim::Seconds(10));
    EXPECT_GE(rig.plat.set_ceil_calls, 9);
}

// --------------------------------------------------------------------------
// Closed-loop integration with the simulated server

struct LoopRig {
    LoopRig(const workloads::LcParams& lc_params,
            const workloads::BeProfile& be_profile,
            HeraclesConfig cfg = {})
        : machine(Cfg(), queue),
          lc(machine, lc_params, 5),
          be(machine, be_profile),
          plat(machine, lc, &be)
    {
        plat.ApplyInitialPlacement();
        controller = std::make_unique<HeraclesController>(
            plat, cfg, LcBwModel::Profile(lc_params, Cfg()));
        controller->Start();
    }

    sim::EventQueue queue;
    hw::Machine machine;
    workloads::LcApp lc;
    workloads::BeTask be;
    platform::SimPlatform plat;
    std::unique_ptr<HeraclesController> controller;
};

TEST(Integration, WebsearchBrainNoViolationAndBeGrows)
{
    LoopRig rig(workloads::Websearch(), workloads::Brain());
    rig.lc.SetLoad(0.4);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(120));
    rig.lc.ResetStats();
    rig.queue.RunFor(sim::Seconds(90));
    EXPECT_LE(rig.lc.WorstReportTail(),
              rig.lc.params().slo_latency);
    EXPECT_GE(rig.plat.BeCores(), 10);
    EXPECT_GT(rig.be.AvgRate(), 0.0);
}

TEST(Integration, BeDisabledAtHighLoad)
{
    LoopRig rig(workloads::Websearch(), workloads::Brain());
    rig.lc.SetLoad(0.92);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(60));
    EXPECT_EQ(rig.plat.BeCores(), 0);
    EXPECT_FALSE(rig.controller->BeEnabled());
}

TEST(Integration, LoadSpikeTriggersBackoffThenRecovery)
{
    LoopRig rig(workloads::Websearch(), workloads::Brain());
    sim::StepTrace trace({{0, 0.3}, {sim::Seconds(120), 0.9}});
    rig.lc.SetTrace(&trace);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(110));
    EXPECT_GE(rig.plat.BeCores(), 8);  // colocation established
    rig.queue.RunFor(sim::Seconds(80));
    // After the spike the controller must have pulled BE off.
    EXPECT_EQ(rig.plat.BeCores(), 0);
}

TEST(Integration, PowerVirusLcKeepsGuaranteedFrequency)
{
    LoopRig rig(workloads::Websearch(), workloads::CpuPowerVirus());
    rig.lc.SetLoad(0.5);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(180));
    rig.lc.ResetStats();
    rig.queue.RunFor(sim::Seconds(60));
    EXPECT_LE(rig.lc.WorstReportTail(), rig.lc.params().slo_latency);
    if (rig.plat.BeCores() > 0) {
        // If the virus is running, the LC frequency must be protected.
        EXPECT_GE(rig.plat.LcFreqGhz(),
                  rig.plat.GuaranteedLcFreqGhz() - 0.11);
    }
}

TEST(Integration, IperfShapedMemkeyvalMeetsSlo)
{
    LoopRig rig(workloads::Memkeyval(), workloads::Iperf());
    rig.lc.SetLoad(0.5);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(120));
    rig.lc.ResetStats();
    rig.queue.RunFor(sim::Seconds(60));
    EXPECT_LE(rig.lc.WorstReportTail(), rig.lc.params().slo_latency);
    // The BE ceil must be active and leave headroom for the LC flows.
    EXPECT_GE(rig.machine.BeNetCeilGbps(), 0.0);
    EXPECT_LT(rig.machine.BeNetCeilGbps(), 10.0);
}

TEST(Integration, StaleBwModelStillSafe)
{
    // Build the model from a perturbed workload (the paper: the binary
    // and shard changed between profiling and the experiment).
    workloads::LcParams stale = workloads::Websearch();
    stale.peak_dram_frac *= 1.10;
    stale.cache.data_slope_mb *= 0.9;
    LoopRig rig(workloads::Websearch(), workloads::StreamDram());
    rig.controller->Stop();
    rig.controller = std::make_unique<HeraclesController>(
        rig.plat, HeraclesConfig{}, LcBwModel::Profile(stale, Cfg()));
    rig.controller->Start();
    rig.lc.SetLoad(0.4);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(150));
    rig.lc.ResetStats();
    rig.queue.RunFor(sim::Seconds(60));
    EXPECT_LE(rig.lc.WorstReportTail(), rig.lc.params().slo_latency);
}

TEST(Integration, DramBandwidthKeptBelowLimit)
{
    LoopRig rig(workloads::Websearch(), workloads::StreamDram());
    rig.lc.SetLoad(0.3);
    rig.lc.Start();
    rig.queue.RunFor(sim::Seconds(150));
    rig.machine.ResetTelemetryAverages();
    rig.queue.RunFor(sim::Seconds(60));
    const auto t = rig.machine.AveragedTelemetry();
    EXPECT_LE(t.dram_gbps, 0.95 * Cfg().TotalDramGbps());
    EXPECT_LE(rig.lc.WorstReportTail(), rig.lc.params().slo_latency);
}

}  // namespace
}  // namespace heracles::ctl
