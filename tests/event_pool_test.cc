/**
 * @file
 * Tests for the pooled event representation behind sim::EventQueue:
 * slab slots must be recycled through the free list after fire and
 * cancel (the pool stays as small as the peak pending count under
 * unbounded throughput), generation tags must turn stale EventIds into
 * no-ops even after their slot is reused, and the small-buffer callback
 * storage must keep the hot path allocation-free while still accepting
 * over-sized captures through the heap fallback.
 */
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/inline_fn.h"

namespace heracles::sim {
namespace {

// --------------------------------------------------------------------------
// InlineFn storage

TEST(InlineFn, SmallCaptureStaysInline)
{
    int hits = 0;
    struct Cap {
        int* p;
        uint64_t pad[4];
    } cap{&hits, {}};
    InlineFn fn([cap] { ++*cap.p; });  // 40 bytes: fits the 48-byte buffer
    EXPECT_FALSE(fn.heap_allocated());
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap)
{
    int hits = 0;
    std::array<uint64_t, 16> big{};  // 128 bytes > kInlineBytes
    InlineFn fn([&hits, big] { hits += static_cast<int>(big[0]) + 1; });
    EXPECT_TRUE(fn.heap_allocated());
    fn();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, MoveTransfersAndEmptiesSource)
{
    int hits = 0;
    InlineFn a([&hits] { ++hits; });
    InlineFn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);
}

TEST(InlineFn, DestroysCapturedResources)
{
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> watch = token;
    {
        InlineFn fn([token] { (void)*token; });
        token.reset();
        EXPECT_FALSE(watch.expired());  // the closure keeps it alive
    }
    EXPECT_TRUE(watch.expired());  // destroyed with the InlineFn
}

TEST(InlineFn, MoveAssignReleasesPreviousCallable)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    InlineFn fn([token] { (void)*token; });
    token.reset();
    fn = InlineFn([] {});
    EXPECT_TRUE(watch.expired());
}

// --------------------------------------------------------------------------
// Slot recycling

TEST(EventPool, SteadyChurnReusesOneSlot)
{
    // A self-rescheduling timer has exactly one pending event at any
    // moment; a million fires must keep reusing the same slot instead of
    // growing the slab.
    EventQueue q;
    uint64_t fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 100000) q.ScheduleAfter(1, tick);
    };
    q.ScheduleAfter(1, tick);
    q.RunFor(1 << 20);
    EXPECT_EQ(fired, 100000u);
    // tick itself is a std::function (32 bytes) plus the capture: still
    // one slot, reused throughout (a second slot may appear transiently
    // but the pool must stay O(peak pending), not O(throughput)).
    EXPECT_LE(q.pool_slots(), 2u);
}

TEST(EventPool, CancelledSlotsReturnToFreeList)
{
    EventQueue q;
    std::vector<EventQueue::EventId> ids;
    for (int i = 0; i < 64; ++i) {
        ids.push_back(q.ScheduleAt(10 + i, [] {}));
    }
    EXPECT_EQ(q.pool_slots(), 64u);
    EXPECT_EQ(q.pool_free(), 0u);
    for (auto id : ids) q.Cancel(id);
    EXPECT_EQ(q.cancelled_backlog(), 64u);
    q.RunFor(1000);  // pops the heap records, releasing the slots
    EXPECT_EQ(q.cancelled_backlog(), 0u);
    EXPECT_EQ(q.pool_free(), 64u);

    // The next burst must consume the free list, not extend the slab.
    for (int i = 0; i < 64; ++i) {
        q.ScheduleAfter(5, [] {});
    }
    EXPECT_EQ(q.pool_slots(), 64u);
    EXPECT_EQ(q.pool_free(), 0u);
    q.RunFor(1000);
    EXPECT_EQ(q.pool_free(), 64u);
}

TEST(EventPool, FiredSlotIsImmediatelyReusableInsideCallback)
{
    // A one-shot's slot is released before its callback runs, so an
    // event scheduled from inside the callback reuses it: the pool never
    // grows past one slot for a fire-then-schedule chain.
    EventQueue q;
    int fired = 0;
    q.ScheduleAfter(1, [&] {
        ++fired;
        q.ScheduleAfter(1, [&] { ++fired; });
        EXPECT_EQ(q.pool_slots(), 1u);
    });
    q.RunFor(10);
    EXPECT_EQ(fired, 2);
}

// --------------------------------------------------------------------------
// Generation tags

TEST(EventPool, StaleIdAfterFireIsNoOp)
{
    EventQueue q;
    const auto id = q.ScheduleAt(10, [] {});
    q.RunFor(20);
    EXPECT_EQ(q.executed(), 1u);
    q.Cancel(id);  // fired: slot is free, id is stale
    EXPECT_EQ(q.cancelled_backlog(), 0u);
}

TEST(EventPool, StaleIdCannotCancelSlotReuser)
{
    EventQueue q;
    bool first = false, second = false;
    const auto stale = q.ScheduleAt(10, [&] { first = true; });
    q.RunFor(20);
    // The slot is recycled by the next event; its generation advanced.
    const auto fresh = q.ScheduleAt(30, [&] { second = true; });
    EXPECT_EQ(q.pool_slots(), 1u);  // same slot, reused
    q.Cancel(stale);                // must NOT kill the new occupant
    q.RunFor(40);
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
    (void)fresh;
}

TEST(EventPool, StaleIdAfterCancelAndReuseIsNoOp)
{
    EventQueue q;
    bool fired = false;
    const auto victim = q.ScheduleAt(10, [] {});
    q.Cancel(victim);
    q.Cancel(victim);  // double cancel: no-op
    q.RunFor(20);      // heap record pops, slot freed
    const auto fresh = q.ScheduleAt(30, [&] { fired = true; });
    q.Cancel(victim);  // three generations stale by now
    q.RunFor(40);
    EXPECT_TRUE(fired);
    (void)fresh;
}

TEST(EventPool, ZeroIdIsNeverValid)
{
    // Members holding a not-yet-scheduled EventId are zero-initialized
    // and cancelled in destructors; id 0 must never alias slot 0.
    EventQueue q;
    bool fired = false;
    q.ScheduleAt(10, [&] { fired = true; });  // lives in slot 0
    q.Cancel(0);
    q.RunFor(20);
    EXPECT_TRUE(fired);
}

TEST(EventPool, PeriodicSlotPersistsAcrossFires)
{
    EventQueue q;
    int count = 0;
    const auto id = q.SchedulePeriodic(10, 10, [&] { ++count; });
    q.RunFor(100);
    EXPECT_EQ(count, 10);
    EXPECT_EQ(q.pool_slots(), 1u);  // one slot for the periodic's lifetime
    q.Cancel(id);
    q.RunFor(20);  // final heap record pops and frees the slot
    EXPECT_EQ(q.pool_free(), 1u);
    EXPECT_EQ(count, 10);
}

}  // namespace
}  // namespace heracles::sim
