/**
 * @file
 * Tests for the shared server assembly: component wiring under every
 * PolicyKind, and the shared-bandwidth-model path used by cluster
 * leaves.
 */
#include <gtest/gtest.h>

#include "exp/server_sim.h"
#include "workloads/antagonists.h"

namespace heracles::exp {
namespace {

ServerSpec
BaseSpec(PolicyKind policy)
{
    ServerSpec spec;
    spec.machine.seed = 1234;
    spec.lc = workloads::Websearch();
    spec.lc_seed = 99;
    spec.be = workloads::Brain();
    spec.policy = policy;
    return spec;
}

TEST(ServerSim, NoColocationOmitsBeAndController)
{
    sim::EventQueue queue;
    ServerSim server(BaseSpec(PolicyKind::kNoColocation), queue);
    EXPECT_EQ(server.be(), nullptr);
    EXPECT_EQ(server.controller(), nullptr);
    EXPECT_FALSE(server.colocated());
    // Initial placement: every core belongs to the LC workload.
    EXPECT_EQ(server.machine().CpusOf(&server.lc()).Count(),
              server.machine().config().LogicalCpus());
}

TEST(ServerSim, HeraclesWiresControllerAndBe)
{
    sim::EventQueue queue;
    ServerSim server(BaseSpec(PolicyKind::kHeracles), queue);
    ASSERT_NE(server.be(), nullptr);
    ASSERT_NE(server.controller(), nullptr);
    EXPECT_TRUE(server.colocated());
    // Initial placement gives the LC workload the whole machine; the
    // controller then grows BE from zero.
    EXPECT_EQ(server.platform().BeCores(), 0);
    // The controller's loops were scheduled by assembly.
    EXPECT_GT(queue.pending(), 0u);
    server.StopController();
    server.StopController();  // idempotent
}

TEST(ServerSim, OsOnlySharesEveryCpu)
{
    sim::EventQueue queue;
    ServerSim server(BaseSpec(PolicyKind::kOsOnly), queue);
    ASSERT_NE(server.be(), nullptr);
    EXPECT_EQ(server.controller(), nullptr);
    const hw::CpuSet& lc_cpus = server.machine().CpusOf(&server.lc());
    const hw::CpuSet& be_cpus = server.machine().CpusOf(server.be());
    EXPECT_EQ(lc_cpus.Count(), be_cpus.Count());
    EXPECT_EQ(lc_cpus.Intersect(be_cpus).Count(), lc_cpus.Count());
}

TEST(ServerSim, StaticPartitionSplitsCoresAndCache)
{
    sim::EventQueue queue;
    ServerSpec spec = BaseSpec(PolicyKind::kStaticPartition);
    ServerSim server(spec, queue);
    ASSERT_NE(server.be(), nullptr);
    EXPECT_EQ(server.controller(), nullptr);
    const auto& topo = server.machine().topology();
    const int lc_cores = topo.PhysicalCoreCount(
        server.machine().CpusOf(&server.lc()));
    const int be_cores = topo.PhysicalCoreCount(
        server.machine().CpusOf(server.be()));
    const int total = spec.machine.TotalCores();
    EXPECT_EQ(lc_cores, total / 2);
    EXPECT_EQ(be_cores, total - total / 2);
    // Disjoint halves.
    EXPECT_TRUE(server.machine()
                    .CpusOf(&server.lc())
                    .Intersect(server.machine().CpusOf(server.be()))
                    .Empty());
}

TEST(ServerSim, BeProfileIgnoredWithoutColocation)
{
    sim::EventQueue queue;
    ServerSpec spec = BaseSpec(PolicyKind::kNoColocation);
    ASSERT_TRUE(spec.be.has_value());
    ServerSim server(spec, queue);
    EXPECT_EQ(server.be(), nullptr);
}

TEST(ServerSim, SharedBwModelMatchesProfiledOne)
{
    // A cluster hands every leaf one pre-profiled model; the assembled
    // controller must behave exactly as if it profiled its own.
    ServerSpec spec = BaseSpec(PolicyKind::kHeracles);
    const ctl::LcBwModel shared =
        ctl::LcBwModel::Profile(spec.lc, spec.machine);

    sim::EventQueue q1;
    ServerSim own(spec, q1);
    spec.bw_model = &shared;
    sim::EventQueue q2;
    ServerSim given(spec, q2);

    ASSERT_NE(own.controller(), nullptr);
    ASSERT_NE(given.controller(), nullptr);
    // Same event schedule out of assembly.
    EXPECT_EQ(q1.pending(), q2.pending());
}

}  // namespace
}  // namespace heracles::exp
