/**
 * @file
 * Total-cost-of-ownership model (Section 5.3).
 *
 * Reimplements the spirit of the Barroso et al. TCO calculator with the
 * paper's case-study parameters: $2,000 servers, PUE 2.0, 500 W peak
 * draw, $0.10/kWh, 10,000 servers. Monthly per-server TCO splits into a
 * utilization-independent part (server + facility capital amortization
 * and fixed opex) and energy, which grows with utilization. Raising
 * utilization via colocation therefore raises throughput/TCO almost
 * proportionally, paying only for the extra energy.
 */
#ifndef HERACLES_TCO_TCO_H
#define HERACLES_TCO_TCO_H

namespace heracles::tco {

/** Parameters of the datacenter cost model. */
struct TcoParams {
    int servers = 10000;
    double server_cost_usd = 2000.0;
    double server_amortization_months = 36.0;
    /** Facility capital + fixed opex per server-month (power delivery,
     *  cooling, space, staff), fitted to the paper's case study. */
    double facility_fixed_usd_month = 116.0;
    double peak_power_w = 500.0;
    double idle_power_w = 150.0;
    double pue = 2.0;
    double electricity_usd_kwh = 0.10;
    /** Hours in an average month. */
    double hours_per_month = 730.0;
};

/** Barroso-style TCO calculator. */
class TcoModel
{
  public:
    explicit TcoModel(const TcoParams& params = TcoParams());

    /** Average wall power of one server at @p utilization (W, pre-PUE). */
    double ServerPowerW(double utilization) const;

    /** Monthly energy cost for one server at @p utilization. */
    double EnergyCostMonth(double utilization) const;

    /** Monthly per-server TCO at @p utilization. */
    double MonthlyTcoPerServer(double utilization) const;

    /** Cluster-wide monthly TCO. */
    double ClusterTcoMonth(double utilization) const;

    /** Throughput per dollar, normalized units (throughput = util). */
    double ThroughputPerTco(double utilization) const;

    /**
     * Relative throughput/TCO gain from raising utilization (e.g.
     * Heracles raising a 20%-utilized cluster to 90% -> ~3x).
     */
    double GainFromUtilization(double base_util, double new_util) const;

    /**
     * Throughput/TCO gain from ideal energy proportionality alone at
     * @p utilization (no throughput change, lower energy) — the paper's
     * comparison point of roughly 3-7%.
     */
    double EnergyProportionalityGain(double utilization) const;

    const TcoParams& params() const { return params_; }

  private:
    TcoParams params_;
};

}  // namespace heracles::tco

#endif  // HERACLES_TCO_TCO_H
