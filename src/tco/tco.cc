#include "tco/tco.h"

#include <algorithm>

#include "sim/log.h"

namespace heracles::tco {

TcoModel::TcoModel(const TcoParams& params) : params_(params)
{
    HERACLES_CHECK(params_.peak_power_w >= params_.idle_power_w);
    HERACLES_CHECK(params_.server_amortization_months > 0);
}

double
TcoModel::ServerPowerW(double utilization) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    return params_.idle_power_w +
           (params_.peak_power_w - params_.idle_power_w) * utilization;
}

double
TcoModel::EnergyCostMonth(double utilization) const
{
    const double kwh = ServerPowerW(utilization) * params_.pue *
                       params_.hours_per_month / 1000.0;
    return kwh * params_.electricity_usd_kwh;
}

double
TcoModel::MonthlyTcoPerServer(double utilization) const
{
    const double server_capex =
        params_.server_cost_usd / params_.server_amortization_months;
    return server_capex + params_.facility_fixed_usd_month +
           EnergyCostMonth(utilization);
}

double
TcoModel::ClusterTcoMonth(double utilization) const
{
    return MonthlyTcoPerServer(utilization) * params_.servers;
}

double
TcoModel::ThroughputPerTco(double utilization) const
{
    return utilization / MonthlyTcoPerServer(utilization);
}

double
TcoModel::GainFromUtilization(double base_util, double new_util) const
{
    return ThroughputPerTco(new_util) / ThroughputPerTco(base_util) - 1.0;
}

double
TcoModel::EnergyProportionalityGain(double utilization) const
{
    // Ideal proportionality: power scales linearly through the origin.
    const double prop_power =
        params_.peak_power_w * std::clamp(utilization, 0.0, 1.0);
    const double prop_energy = prop_power * params_.pue *
                               params_.hours_per_month / 1000.0 *
                               params_.electricity_usd_kwh;
    const double server_capex =
        params_.server_cost_usd / params_.server_amortization_months;
    const double prop_tco =
        server_capex + params_.facility_fixed_usd_month + prop_energy;
    return MonthlyTcoPerServer(utilization) / prop_tco - 1.0;
}

}  // namespace heracles::tco
