/**
 * @file
 * Deterministic thread pool for fanning out independent simulations.
 *
 * Every simulation in this library is single-threaded and self-contained
 * (its own EventQueue, machine, workloads, RNG streams), which makes load
 * sweeps, characterization grids and per-leaf profiling embarrassingly
 * parallel. The pool is deliberately work-stealing-free: tasks are
 * dispatched FIFO from one queue and each task writes only its own
 * result slot, so a parallel run produces output bit-identical to the
 * serial path regardless of thread count or scheduling.
 */
#ifndef HERACLES_RUNNER_POOL_H
#define HERACLES_RUNNER_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace heracles::runner {

/** Hardware concurrency with a floor of one. */
int HardwareJobs();

/**
 * Worker count when the caller gives no --jobs flag: the HERACLES_JOBS
 * environment variable when set to a positive integer, else
 * HardwareJobs(). The single home of that policy for benches and tools.
 */
int DefaultJobs();

/**
 * Fixed-size FIFO thread pool. Tasks must be independent: they may not
 * touch shared mutable state (simulations in this library never do).
 */
class Pool
{
  public:
    /** Spawns @p threads workers (clamped to at least one). */
    explicit Pool(int threads);

    /** Waits for submitted work, then joins the workers. */
    ~Pool();

    Pool(const Pool&) = delete;
    Pool& operator=(const Pool&) = delete;

    /** Enqueues one task. */
    void Submit(std::function<void()> fn);

    /** Blocks until every submitted task has completed. */
    void Wait();

    /** Number of worker threads (fixed at construction). */
    int threads() const { return static_cast<int>(workers_.size()); }

  private:
    void WorkerLoop();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< Signals workers: task or stop.
    std::condition_variable done_cv_;  ///< Signals Wait(): all drained.
    std::deque<std::function<void()>> tasks_;
    int in_flight_ = 0;  ///< Queued + currently-executing tasks.
    bool stop_ = false;
};

/**
 * Runs fn(0) .. fn(n-1). With @p jobs <= 1 (or a single item) the calls
 * run inline on the calling thread in index order — the serial reference
 * path; otherwise they fan out over a Pool of min(jobs, n) threads.
 */
void ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& fn);

/**
 * ParallelFor over an existing pool, for callers that fan out repeatedly
 * (the epoch engine dispatches its leaves every barrier interval — a
 * thread spawn per epoch would dominate short intervals). @p pool may be
 * nullptr, which runs inline in index order like jobs <= 1. Blocks until
 * every index has completed; the caller must not submit other work to
 * @p pool concurrently.
 */
void ParallelFor(Pool* pool, size_t n, const std::function<void(size_t)>& fn);

/**
 * ParallelFor over an explicit submission order: runs fn(i) for every i
 * in @p order, submitting (or, with a null/single-thread pool, running
 * inline) in that sequence. The epoch engine submits its largest leaf
 * batches first so the pool's FIFO dispatch starts the long poles before
 * the stragglers — pure scheduling: tasks must be independent, so the
 * order can never change results. Blocks until every entry has run.
 */
void ParallelFor(Pool* pool, const std::vector<size_t>& order,
                 const std::function<void(size_t)>& fn);

/**
 * ParallelFor that collects fn(i) into a vector indexed by i. Results
 * are merged in submission (index) order, so the output is identical for
 * every jobs value.
 */
template <typename Fn>
auto
ParallelMap(int jobs, size_t n, Fn&& fn)
{
    std::vector<decltype(fn(size_t{0}))> out(n);
    ParallelFor(jobs, n, [&](size_t i) { out[i] = fn(i); });
    return out;
}

}  // namespace heracles::runner

#endif  // HERACLES_RUNNER_POOL_H
