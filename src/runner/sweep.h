/**
 * @file
 * Scenario fan-out on top of runner::Pool.
 *
 * A sweep is a flat list of (experiment configuration, load) jobs — a
 * whole figure's worth of independent single-server simulations. RunSweep
 * fans them across a pool, preserves each job's derived seeds (they are a
 * pure function of the config and load, never of scheduling), and merges
 * results in submission order, so parallel output is bit-identical to
 * serial.
 */
#ifndef HERACLES_RUNNER_SWEEP_H
#define HERACLES_RUNNER_SWEEP_H

#include <string>
#include <vector>

#include "exp/experiment.h"

namespace heracles::runner {

/** One independent simulation: a full experiment config at one load. */
struct SweepJob {
    exp::ExperimentConfig cfg;  ///< Server + workload + policy blueprint.
    double load = 0.0;          ///< LC load fraction for this point.
    /** Optional caller tag (row label, variant name); carried through. */
    std::string tag;
    /**
     * Jobs with the same non-negative row share one config and hence
     * one Experiment (so the BE alone-rate baseline is measured once
     * per row, not once per load point). AppendLoadJobs assigns rows;
     * -1 means "standalone job, build its own Experiment".
     */
    int row = -1;
};

/**
 * Runs every job across @p jobs threads, building one Experiment per
 * row (or per stand-alone job). Results arrive in submission order;
 * jobs <= 1 is the serial reference path producing identical bytes.
 */
std::vector<exp::LoadPointResult> RunSweep(
    const std::vector<SweepJob>& sweep, int jobs);

/**
 * Fans one experiment's load points across @p jobs threads, sharing the
 * already-measured BE-alone rate. Equivalent to Experiment::Sweep.
 */
std::vector<exp::LoadPointResult> RunSweep(const exp::Experiment& e,
                                           const std::vector<double>& loads,
                                           int jobs);

/**
 * Expands one config over many loads into jobs tagged with @p tag,
 * appending to @p sweep. Convenience for building figure-bench job
 * lists.
 */
void AppendLoadJobs(std::vector<SweepJob>& sweep,
                    const exp::ExperimentConfig& cfg,
                    const std::vector<double>& loads,
                    const std::string& tag);

}  // namespace heracles::runner

#endif  // HERACLES_RUNNER_SWEEP_H
