#include "runner/sweep.h"

#include <memory>
#include <unordered_map>

#include "runner/pool.h"

namespace heracles::runner {

std::vector<exp::LoadPointResult>
RunSweep(const std::vector<SweepJob>& sweep, int jobs)
{
    // One Experiment per row: jobs appended together share a config, so
    // the BE alone-rate baseline in the Experiment constructor runs once
    // per row instead of once per load point. Row-less jobs (-1) each
    // get their own.
    std::vector<size_t> exp_of(sweep.size());
    std::vector<size_t> owners;  // job index whose cfg builds Experiment e
    std::unordered_map<int, size_t> row_to_exp;
    for (size_t i = 0; i < sweep.size(); ++i) {
        const int row = sweep[i].row;
        if (row < 0) {
            exp_of[i] = owners.size();
            owners.push_back(i);
        } else {
            const auto [it, inserted] =
                row_to_exp.emplace(row, owners.size());
            if (inserted) owners.push_back(i);
            exp_of[i] = it->second;
        }
    }

    // The constructors run alone-rate simulations; fan them out too.
    std::vector<std::unique_ptr<exp::Experiment>> experiments(
        owners.size());
    ParallelFor(jobs, owners.size(), [&](size_t e) {
        experiments[e] =
            std::make_unique<exp::Experiment>(sweep[owners[e]].cfg);
    });

    return ParallelMap(jobs, sweep.size(), [&](size_t i) {
        return experiments[exp_of[i]]->RunAt(sweep[i].load);
    });
}

std::vector<exp::LoadPointResult>
RunSweep(const exp::Experiment& e, const std::vector<double>& loads,
         int jobs)
{
    return ParallelMap(jobs, loads.size(),
                       [&](size_t i) { return e.RunAt(loads[i]); });
}

void
AppendLoadJobs(std::vector<SweepJob>& sweep,
               const exp::ExperimentConfig& cfg,
               const std::vector<double>& loads, const std::string& tag)
{
    // The pre-append size is unique per block, so it serves as the
    // shared row id for every load point of this config.
    const int row = static_cast<int>(sweep.size());
    for (double load : loads) {
        sweep.push_back(SweepJob{cfg, load, tag, row});
    }
}

}  // namespace heracles::runner
