#include "runner/pool.h"

#include <algorithm>
#include <cstdlib>

namespace heracles::runner {

int
HardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
DefaultJobs()
{
    if (const char* v = std::getenv("HERACLES_JOBS")) {
        const int n = std::atoi(v);
        if (n > 0) return n;
    }
    return HardwareJobs();
}

Pool::Pool(int threads)
{
    const int n = std::max(1, threads);
    workers_.reserve(n);
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

Pool::~Pool()
{
    Wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void
Pool::Submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        tasks_.push_back(std::move(fn));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void
Pool::Wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
Pool::WorkerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock,
                          [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty()) return;  // stop_ and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--in_flight_ == 0) done_cv_.notify_all();
        }
    }
}

void
ParallelFor(int jobs, size_t n, const std::function<void(size_t)>& fn)
{
    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    Pool pool(std::min<size_t>(static_cast<size_t>(jobs), n));
    for (size_t i = 0; i < n; ++i) {
        pool.Submit([&fn, i] { fn(i); });
    }
    pool.Wait();
}

void
ParallelFor(Pool* pool, size_t n, const std::function<void(size_t)>& fn)
{
    if (pool == nullptr || pool->threads() <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    for (size_t i = 0; i < n; ++i) {
        pool->Submit([&fn, i] { fn(i); });
    }
    pool->Wait();
}

void
ParallelFor(Pool* pool, const std::vector<size_t>& order,
            const std::function<void(size_t)>& fn)
{
    if (pool == nullptr || pool->threads() <= 1 || order.size() <= 1) {
        for (size_t i : order) fn(i);
        return;
    }
    for (size_t i : order) {
        pool->Submit([&fn, i] { fn(i); });
    }
    pool->Wait();
}

}  // namespace heracles::runner
