/**
 * @file
 * Platform implementation bound to the simulated server.
 *
 * Owns the placement policy for the LC/BE core split: the LC workload
 * gets physical cores from the bottom of the machine (spread across both
 * sockets), BE jobs get whole physical cores from the top of the highest
 * socket downwards (mirroring the paper's use of numactl to confine BE
 * jobs). Both hardware threads of a physical core always belong to the
 * same task — Section 3's characterization shows cross-workload
 * HyperThread sharing is never acceptable.
 */
#ifndef HERACLES_PLATFORM_SIM_PLATFORM_H
#define HERACLES_PLATFORM_SIM_PLATFORM_H

#include "hw/machine.h"
#include "platform/iface.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"

namespace heracles::platform {

/**
 * How often each isolation mechanism was actuated. The scenario harness
 * records these counts in its canonical metrics: a controller change
 * that leaves tails intact but doubles the actuation rate is still a
 * behavioral regression worth catching.
 */
struct ActuationCounts {
    uint64_t set_cores = 0;     ///< cpuset resizes.
    uint64_t set_ways = 0;      ///< CAT repartitions.
    uint64_t set_freq_cap = 0;  ///< DVFS cap changes.
    uint64_t set_net_ceil = 0;  ///< HTB ceil updates.
};

/** Binds the Platform interface to hw::Machine + workload models. */
class SimPlatform : public Platform
{
  public:
    /**
     * @param machine the server.
     * @param lc the latency-critical workload (required).
     * @param be the best-effort job, or nullptr when none is colocated.
     */
    SimPlatform(hw::Machine& machine, workloads::LcApp& lc,
                workloads::BeTask* be);

    /** Applies the initial placement: all cores to LC, BE disabled. */
    void ApplyInitialPlacement();

    /**
     * Rebinds the platform to a different (or no) BE job at runtime —
     * the hook a cluster-level scheduler uses to move jobs between
     * leaves. The caller must have released the outgoing job's
     * allocations first (HeraclesController::OnBeJobRemoved does);
     * the incoming job starts with zero cores/ways until the local
     * controller admits it.
     */
    void AttachBeJob(workloads::BeTask* be);

    // --- Platform ------------------------------------------------------------
    sim::EventQueue& queue() override { return machine_.queue(); }

    sim::Duration LcTailLatency() override { return lc_.CtlTailLatency(); }
    sim::Duration LcFastTailLatency() override {
        return lc_.FastTailLatency();
    }
    sim::Duration LcSlo() override { return lc_.params().slo_latency; }
    double LcLoad() override { return lc_.LoadFraction(); }
    double LcCpuUtilization() override {
        // The busy query resets the LC app's measurement window, which a
        // pending machine resolve must observe first.
        machine_.EnsureResolved();
        return lc_.CpuBusyFraction();
    }

    double MeasuredDramGbps() override {
        return machine_.MeasuredTotalDramGbps();
    }
    double DramPeakGbps() override {
        return machine_.config().TotalDramGbps();
    }
    double BeDramEstimateGbps() override;

    int Sockets() override { return machine_.config().sockets; }
    double SocketPowerW(int socket) override {
        return machine_.MeasuredSocketPowerW(socket);
    }
    double TdpW() override { return machine_.config().tdp_w; }
    double LcFreqGhz() override { return machine_.MeasuredFreqGhz(&lc_); }
    double GuaranteedLcFreqGhz() override;
    double MinGhz() override { return machine_.config().min_ghz; }
    double MaxGhz() override { return machine_.config().turbo_1c_ghz; }
    double FreqStepGhz() override { return machine_.config().dvfs_step_ghz; }
    double BeFreqCapGhz() override;
    void SetBeFreqCapGhz(double ghz) override;

    double LcTxGbps() override { return machine_.LcTxGbps(); }
    double LinkRateGbps() override { return machine_.config().nic_gbps; }
    void SetBeNetCeilGbps(double gbps) override {
        ++actuations_.set_net_ceil;
        machine_.SetBeNetCeilGbps(gbps);
    }

    int TotalPhysCores() override { return machine_.config().TotalCores(); }
    int BeCores() override { return be_cores_; }
    void SetBeCores(int cores) override;
    int TotalLlcWays() override { return machine_.config().llc_ways; }
    int BeWays() override { return be_ways_; }
    void SetBeWays(int ways) override;

    bool HasBeJob() override { return be_ != nullptr; }
    double BeRate() override;

    /** Cumulative actuator call counts since construction. */
    const ActuationCounts& actuations() const { return actuations_; }

  private:
    void ApplyCpusets();
    void ApplyCat();

    hw::Machine& machine_;
    workloads::LcApp& lc_;
    workloads::BeTask* be_;
    mutable sim::Rng noise_;

    int be_cores_ = 0;
    int be_ways_ = 0;
    ActuationCounts actuations_;
};

}  // namespace heracles::platform

#endif  // HERACLES_PLATFORM_SIM_PLATFORM_H
