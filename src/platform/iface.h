/**
 * @file
 * The platform interface: everything the Heracles controller can monitor
 * or actuate.
 *
 * The controller never touches the hardware models directly — it sees the
 * system only through this interface, exactly as the paper's controller
 * sees Linux: tail latency and load from the LC application's metrics
 * endpoint, DRAM bandwidth from IMC performance counters, package power
 * from RAPL, frequencies from aperf/mperf, and the four actuators
 * (cgroup cpusets, CAT MSRs, per-core DVFS, tc/HTB qdiscs). A real
 * deployment would implement this interface over procfs/resctrl/msr; this
 * repository ships SimPlatform, which binds it to the simulated server.
 */
#ifndef HERACLES_PLATFORM_IFACE_H
#define HERACLES_PLATFORM_IFACE_H

#include "sim/event_queue.h"
#include "sim/time.h"

namespace heracles::platform {

/** Monitor + actuator surface for one server. All methods are cheap. */
class Platform
{
  public:
    virtual ~Platform() = default;

    /** Event queue used to schedule the control loops. */
    virtual sim::EventQueue& queue() = 0;

    // --- Latency-critical workload monitors --------------------------------

    /** Tail latency over the last controller window (0 if none yet). */
    virtual sim::Duration LcTailLatency() = 0;

    /**
     * Approximate tail latency over a short (~2 s) window. Statistically
     * weaker than LcTailLatency but fresh enough for the subcontrollers
     * to judge whether the system is "close to an SLO violation" between
     * top-level polls (Section 4.3).
     */
    virtual sim::Duration LcFastTailLatency() = 0;

    /** The LC workload's SLO latency target. */
    virtual sim::Duration LcSlo() = 0;

    /** Current load as a fraction of the LC workload's peak rate. */
    virtual double LcLoad() = 0;

    /**
     * Busy fraction of the LC workload's own cpus (procfs-style). CPU
     * utilization cannot *guarantee* the SLO (Section 4.2 cites [47]),
     * but it is a sound safety bound: a service whose threads are nearly
     * all busy is one core-removal away from collapse regardless of how
     * healthy its tail currently looks.
     */
    virtual double LcCpuUtilization() = 0;

    // --- Memory bandwidth ----------------------------------------------------

    /** Measured total DRAM bandwidth (GB/s), from IMC counters. */
    virtual double MeasuredDramGbps() = 0;

    /** Peak streaming DRAM bandwidth of the machine (GB/s). */
    virtual double DramPeakGbps() = 0;

    /**
     * Rough estimate of the BE jobs' DRAM bandwidth (GB/s), from counters
     * proportional to per-core memory traffic (noisier than the total).
     */
    virtual double BeDramEstimateGbps() = 0;

    // --- Power ----------------------------------------------------------------

    virtual int Sockets() = 0;
    virtual double SocketPowerW(int socket) = 0;   ///< RAPL reading.
    virtual double TdpW() = 0;                     ///< Per-socket TDP.
    virtual double LcFreqGhz() = 0;  ///< Mean frequency of LC cores.
    /** Frequency the LC workload sustains running alone at full load. */
    virtual double GuaranteedLcFreqGhz() = 0;
    virtual double MinGhz() = 0;
    virtual double MaxGhz() = 0;
    virtual double FreqStepGhz() = 0;
    virtual double BeFreqCapGhz() = 0;  ///< 0 = uncapped.
    virtual void SetBeFreqCapGhz(double ghz) = 0;

    // --- Network -----------------------------------------------------------------

    virtual double LcTxGbps() = 0;     ///< LC egress bandwidth.
    virtual double LinkRateGbps() = 0;
    virtual void SetBeNetCeilGbps(double gbps) = 0;  ///< HTB ceil.

    // --- Cores and cache ---------------------------------------------------------

    virtual int TotalPhysCores() = 0;
    virtual int BeCores() = 0;               ///< 0 = BE disabled.
    virtual void SetBeCores(int cores) = 0;  ///< LC gets the rest.
    virtual int TotalLlcWays() = 0;
    virtual int BeWays() = 0;
    virtual void SetBeWays(int ways) = 0;

    // --- Best-effort job probe ------------------------------------------------------

    /** Whether a BE job is attached at all (colocation possible). */
    virtual bool HasBeJob() = 0;

    /** BE throughput estimate in arbitrary units (for BeBenefit tests). */
    virtual double BeRate() = 0;
};

}  // namespace heracles::platform

#endif  // HERACLES_PLATFORM_IFACE_H
