#include "platform/sim_platform.h"

#include <algorithm>

#include "hw/power.h"

namespace heracles::platform {

SimPlatform::SimPlatform(hw::Machine& machine, workloads::LcApp& lc,
                         workloads::BeTask* be)
    : machine_(machine), lc_(lc), be_(be), noise_(machine.config().seed ^ 99)
{
}

void
SimPlatform::ApplyInitialPlacement()
{
    be_cores_ = 0;
    be_ways_ = 0;
    ApplyCpusets();
    ApplyCat();
    machine_.SetBeNetCeilGbps(-1.0);
    machine_.ResolveNow();
}

void
SimPlatform::AttachBeJob(workloads::BeTask* be)
{
    be_ = be;
    be_cores_ = 0;
    be_ways_ = 0;
}

void
SimPlatform::ApplyCpusets()
{
    const auto& topo = machine_.topology();
    const int total = machine_.config().TotalCores();
    const int lc_cores = total - be_cores_;
    // Vacate the BE cpuset first so the LC set never transiently overlaps
    // it while the partition point moves (cpusets are exclusive).
    if (be_ != nullptr) be_->SetCpus(hw::CpuSet());
    lc_.SetCpus(topo.PhysicalCores(0, lc_cores));
    if (be_ != nullptr && be_cores_ > 0) {
        be_->SetCpus(topo.PhysicalCores(lc_cores, be_cores_));
    }
}

void
SimPlatform::ApplyCat()
{
    const int total_ways = machine_.config().llc_ways;
    if (be_ != nullptr && be_cores_ > 0 && be_ways_ > 0) {
        machine_.SetCatWays(be_, be_ways_);
        machine_.SetCatWays(&lc_, total_ways - be_ways_);
    } else {
        if (be_ != nullptr) machine_.SetCatWays(be_, 0);
        machine_.SetCatWays(&lc_, 0);
    }
}

void
SimPlatform::SetBeCores(int cores)
{
    ++actuations_.set_cores;
    // The LC workload always keeps at least one physical core.
    const int total = machine_.config().TotalCores();
    be_cores_ = std::clamp(cores, 0, total - 1);
    if (be_ == nullptr) be_cores_ = 0;
    ApplyCpusets();
    ApplyCat();
    // Coalesces with any other same-instant actuations into one resolve.
    machine_.RequestResolve();
}

void
SimPlatform::SetBeWays(int ways)
{
    ++actuations_.set_ways;
    // BE never gets every way: the LC partition keeps at least 4 ways
    // (its hot working set), mirroring production resctrl configs.
    const int total_ways = machine_.config().llc_ways;
    be_ways_ = std::clamp(ways, 0, total_ways - 4);
    ApplyCat();
    machine_.RequestResolve();
}

double
SimPlatform::BeDramEstimateGbps()
{
    if (be_ == nullptr) return 0.0;
    // The paper estimates BE bandwidth from counters proportional to
    // per-core memory traffic; model that as a noisier reading of the
    // true grant.
    const hw::TaskView& view = machine_.ViewOf(be_);
    const double jitter = 1.0 + noise_.Uniform(-0.05, 0.05);
    return view.TotalDramGrantedGbps() * jitter;
}

double
SimPlatform::GuaranteedLcFreqGhz()
{
    // The frequency the LC task sustains alone at 100% load: all cores
    // busy at the workload's power intensity, no DVFS caps.
    const auto& cfg = machine_.config();
    std::vector<hw::CorePowerRequest> cores(cfg.cores_per_socket);
    for (auto& c : cores) {
        c.busy = 1.0;
        c.intensity = lc_.params().power_intensity;
    }
    const hw::PowerOutcome out = hw::ResolvePower(cfg, cores);
    double mean = 0.0;
    for (double f : out.freq_ghz) mean += f;
    return mean / cores.size();
}

double
SimPlatform::BeFreqCapGhz()
{
    return be_ != nullptr ? machine_.FreqCapOf(be_) : 0.0;
}

void
SimPlatform::SetBeFreqCapGhz(double ghz)
{
    ++actuations_.set_freq_cap;
    if (be_ != nullptr) {
        machine_.SetFreqCapGhz(be_, ghz);
        machine_.RequestResolve();
    }
}

double
SimPlatform::BeRate()
{
    if (be_ == nullptr) return 0.0;
    const double jitter = 1.0 + noise_.Uniform(-0.02, 0.02);
    return be_->CurrentRate() * jitter;
}

}  // namespace heracles::platform
