#include "heracles/controller.h"

#include <algorithm>

namespace heracles::ctl {

HeraclesController::HeraclesController(platform::Platform& platform,
                                       HeraclesConfig cfg, LcBwModel model)
    : platform_(platform), cfg_(cfg)
{
    core_mem_ = std::make_unique<CoreMemController>(platform_, cfg_,
                                                    std::move(model));
    power_ = std::make_unique<PowerController>(platform_, cfg_);
    network_ = std::make_unique<NetworkController>(platform_, cfg_);
}

HeraclesController::~HeraclesController()
{
    Stop();
}

void
HeraclesController::Start()
{
    HERACLES_CHECK_MSG(!started_, "controller started twice");
    started_ = true;
    auto& q = platform_.queue();
    top_event_ = q.SchedulePeriodic(cfg_.top_period, cfg_.top_period,
                                    [this] { TopTick(); });
    if (cfg_.enable_core_mem) {
        core_mem_event_ = q.SchedulePeriodic(
            cfg_.core_mem_period, cfg_.core_mem_period,
            [this] { core_mem_->Tick(can_grow_be_, last_slack_); });
    }
    if (cfg_.enable_power) {
        power_event_ =
            q.SchedulePeriodic(cfg_.power_period, cfg_.power_period,
                               [this] { power_->Tick(); });
    }
    if (cfg_.enable_net) {
        net_event_ = q.SchedulePeriodic(cfg_.net_period, cfg_.net_period,
                                        [this] { network_->Tick(); });
    }
}

void
HeraclesController::Stop()
{
    if (!started_) return;
    auto& q = platform_.queue();
    q.Cancel(top_event_);
    if (core_mem_event_) q.Cancel(core_mem_event_);
    if (power_event_) q.Cancel(power_event_);
    if (net_event_) q.Cancel(net_event_);
    started_ = false;
}

bool
HeraclesController::InCooldown() const
{
    return platform_.queue().Now() < cooldown_until_;
}

SlackExport
HeraclesController::ExportSlack() const
{
    SlackExport e;
    e.slack = last_slack_;
    e.be_enabled = be_enabled_;
    e.in_cooldown = InCooldown();
    e.has_signal = has_signal_;
    return e;
}

void
HeraclesController::OnBeJobRemoved()
{
    DisableBE();
}

void
HeraclesController::DisableBE()
{
    if (be_enabled_) {
        platform_.SetBeCores(0);
        platform_.SetBeWays(0);
        platform_.SetBeFreqCapGhz(0.0);
        core_mem_->OnBeDisabled();
        be_enabled_ = false;
    }
    can_grow_be_ = false;
}

void
HeraclesController::EnableBE()
{
    if (be_enabled_ || !platform_.HasBeJob() || InCooldown()) return;
    be_enabled_ = true;
    core_mem_->OnBeEnabled();
    ++stats_.be_enables;
}

void
HeraclesController::TopTick()
{
    ++stats_.polls;
    const sim::Duration latency = platform_.LcTailLatency();
    const double load = platform_.LcLoad();
    const double target = static_cast<double>(platform_.LcSlo());
    // Before the first latency window completes there is nothing to act
    // on; leave BE disabled rather than guessing.
    if (latency <= 0) return;
    has_signal_ = true;

    const double slack =
        (target - static_cast<double>(latency)) / target;
    last_slack_ = slack;

    if (slack < 0.0) {
        // SLO violation: give everything to the LC workload for a while.
        if (be_enabled_) ++stats_.be_disables_slack;
        DisableBE();
        cooldown_until_ = platform_.queue().Now() + cfg_.cooldown;
        return;
    }
    if (load > cfg_.load_disable) {
        if (be_enabled_) ++stats_.be_disables_load;
        DisableBE();
        return;
    }
    if (load < cfg_.load_enable) {
        EnableBE();
    }
    if (!be_enabled_) return;

    if (slack < cfg_.slack_disallow_growth) {
        can_grow_be_ = false;
        if (slack < cfg_.slack_shrink && platform_.BeCores() > 2) {
            // be_cores.Remove(be_cores.Size() - 2): keep two BE cores.
            platform_.SetBeCores(2);
            ++stats_.core_shrinks;
        }
    } else {
        can_grow_be_ = true;
    }
}

}  // namespace heracles::ctl
