/**
 * @file
 * Network subcontroller (Algorithm 4).
 *
 * Prevents saturation of the egress link: measures the LC workload's
 * transmit bandwidth and sets the HTB ceil of the BE traffic class to
 *
 *   LinkRate - LCBandwidth - max(0.05 * LinkRate, 0.10 * LCBandwidth)
 *
 * reserving a small headroom for LC traffic spikes. The LC class is
 * never limited.
 */
#ifndef HERACLES_HERACLES_NET_CTL_H
#define HERACLES_HERACLES_NET_CTL_H

#include "heracles/config.h"
#include "platform/iface.h"

namespace heracles::ctl {

/** HTB-based egress bandwidth subcontroller. */
class NetworkController
{
  public:
    NetworkController(platform::Platform& platform,
                      const HeraclesConfig& cfg);

    /** One 1-second control step. */
    void Tick();

    /** Last ceil applied (Gb/s), for inspection. */
    double LastCeilGbps() const { return last_ceil_; }

  private:
    platform::Platform& platform_;
    HeraclesConfig cfg_;
    double last_ceil_ = -1.0;
};

}  // namespace heracles::ctl

#endif  // HERACLES_HERACLES_NET_CTL_H
