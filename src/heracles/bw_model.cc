#include "heracles/bw_model.h"

#include <algorithm>

#include "sim/log.h"

namespace heracles::ctl {

LcBwModel
LcBwModel::Profile(const workloads::LcParams& params,
                   const hw::MachineConfig& cfg)
{
    LcBwModel m;
    for (double l = 0.0; l <= 1.001; l += 0.05) m.loads_.push_back(l);
    for (int w = 2; w <= cfg.llc_ways; w += 2) m.ways_.push_back(w);

    m.table_.resize(m.loads_.size());
    for (size_t i = 0; i < m.loads_.size(); ++i) {
        m.table_[i].resize(m.ways_.size());
        for (size_t j = 0; j < m.ways_.size(); ++j) {
            // Effective resident cache: the smaller of the partition and
            // the workload's footprint at this load, per socket.
            const double load = m.loads_[i];
            const double part = m.ways_[j] * cfg.MbPerWay();
            const double footprint =
                params.cache.instr_mb +
                workloads::LcApp::DataFootprintMb(params, load);
            const double eff = std::min(part, footprint);
            m.table_[i][j] = workloads::LcApp::AnalyticDramGbps(
                params, cfg, load, eff);
        }
    }
    return m;
}

double
LcBwModel::Evaluate(double load, int cores, int lc_ways) const
{
    (void)cores;  // see header: core count does not change LC bandwidth
    if (table_.empty()) return 0.0;

    load = std::clamp(load, loads_.front(), loads_.back());
    lc_ways = std::clamp(lc_ways, ways_.front(), ways_.back());

    // Bilinear interpolation on the (load, ways) grid.
    const auto li = std::upper_bound(loads_.begin(), loads_.end(), load);
    const size_t i1 = std::min(
        loads_.size() - 1, static_cast<size_t>(li - loads_.begin()));
    const size_t i0 = i1 > 0 ? i1 - 1 : 0;
    const auto wi = std::upper_bound(ways_.begin(), ways_.end(), lc_ways);
    const size_t j1 =
        std::min(ways_.size() - 1, static_cast<size_t>(wi - ways_.begin()));
    const size_t j0 = j1 > 0 ? j1 - 1 : 0;

    const double tx =
        i1 > i0 ? (load - loads_[i0]) / (loads_[i1] - loads_[i0]) : 0.0;
    const double ty =
        j1 > j0 ? static_cast<double>(lc_ways - ways_[j0]) /
                      (ways_[j1] - ways_[j0])
                : 0.0;

    const double a = table_[i0][j0] * (1 - ty) + table_[i0][j1] * ty;
    const double b = table_[i1][j0] * (1 - ty) + table_[i1][j1] * ty;
    return a * (1 - tx) + b * tx;
}

}  // namespace heracles::ctl
