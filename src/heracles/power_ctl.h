/**
 * @file
 * CPU power subcontroller (Algorithm 3).
 *
 * Ensures there is enough power headroom for the LC workload to run at
 * its guaranteed frequency (the frequency it sustains running alone at
 * full load). When the package is near TDP *and* the LC cores are below
 * guaranteed frequency, the subcontroller lowers the per-core DVFS cap of
 * BE cores, shifting power budget to the LC cores; with headroom and a
 * healthy LC frequency it raises the BE cap to maximize BE performance.
 * Both conditions must hold to avoid confusion when LC cores enter
 * active-idle states (which also lowers frequency readings).
 */
#ifndef HERACLES_HERACLES_POWER_CTL_H
#define HERACLES_HERACLES_POWER_CTL_H

#include "heracles/config.h"
#include "platform/iface.h"

namespace heracles::ctl {

/** DVFS-based power-shifting subcontroller. */
class PowerController
{
  public:
    PowerController(platform::Platform& platform, const HeraclesConfig& cfg);

    /** One 2-second control step. */
    void Tick();

    /** Guaranteed LC frequency captured at construction (GHz). */
    double GuaranteedGhz() const { return guaranteed_ghz_; }

  private:
    platform::Platform& platform_;
    HeraclesConfig cfg_;
    double guaranteed_ghz_;
};

}  // namespace heracles::ctl

#endif  // HERACLES_HERACLES_POWER_CTL_H
