#include "heracles/power_ctl.h"

#include <algorithm>

namespace heracles::ctl {

PowerController::PowerController(platform::Platform& platform,
                                 const HeraclesConfig& cfg)
    : platform_(platform),
      cfg_(cfg),
      guaranteed_ghz_(platform.GuaranteedLcFreqGhz())
{
}

void
PowerController::Tick()
{
    if (platform_.BeCores() <= 0) {
        // No BE cores to throttle; make sure the cap is released.
        if (platform_.BeFreqCapGhz() != 0.0) {
            platform_.SetBeFreqCapGhz(0.0);
        }
        return;
    }

    // Worst socket drives the decision (the loop runs per socket on real
    // hardware; both conditions below must hold).
    double power_frac = 0.0;
    for (int s = 0; s < platform_.Sockets(); ++s) {
        power_frac =
            std::max(power_frac, platform_.SocketPowerW(s) / platform_.TdpW());
    }
    const double lc_freq = platform_.LcFreqGhz();
    const double step =
        cfg_.dvfs_steps_per_tick * platform_.FreqStepGhz();

    double cap = platform_.BeFreqCapGhz();
    if (cap == 0.0) cap = platform_.MaxGhz();  // uncapped

    if (power_frac > cfg_.tdp_threshold &&
        lc_freq < guaranteed_ghz_ - 1e-3) {
        // LowerFrequency(be_cores): shift power budget to LC cores.
        const double next = std::max(platform_.MinGhz(), cap - step);
        platform_.SetBeFreqCapGhz(next);
    } else if (power_frac <= cfg_.tdp_raise_threshold &&
               lc_freq >= guaranteed_ghz_ - 1e-3) {
        // IncreaseFrequency(be_cores): comfortable headroom available.
        const double next = cap + step;
        if (next >= platform_.MaxGhz() - 1e-9) {
            platform_.SetBeFreqCapGhz(0.0);  // fully uncapped
        } else {
            platform_.SetBeFreqCapGhz(next);
        }
    }
    // Between the thresholds: hold the current cap (hysteresis).
}

}  // namespace heracles::ctl
