/**
 * @file
 * The top-level Heracles controller (Algorithm 1).
 *
 * Polls the LC workload's tail latency and load every 15 seconds and
 * computes the latency slack (target - latency) / target. Safeguards:
 * negative slack disables BE execution and enters a cooldown during which
 * all resources belong to the LC job; load above 85% of peak disables BE
 * (re-enabled below 80%, hysteresis). Otherwise the slack steers the
 * subcontrollers: below 10% growth is disallowed; below 5% cores are
 * taken from BE immediately; above 10% the subcontrollers may grow BE
 * allocations, each within its own saturation constraint.
 */
#ifndef HERACLES_HERACLES_CONTROLLER_H
#define HERACLES_HERACLES_CONTROLLER_H

#include <memory>

#include "heracles/bw_model.h"
#include "heracles/config.h"
#include "heracles/core_mem.h"
#include "heracles/net_ctl.h"
#include "heracles/power_ctl.h"
#include "platform/iface.h"

namespace heracles::ctl {

/** Counters exposed for experiments and debugging. */
struct ControllerStats {
    uint64_t polls = 0;
    uint64_t be_disables_slack = 0;  ///< Negative-slack emergencies.
    uint64_t be_disables_load = 0;   ///< High-load safeguards.
    uint64_t be_enables = 0;
    uint64_t core_shrinks = 0;       ///< slack < 5% core removals.
};

/**
 * Snapshot of the controller's latest poll, exported for cluster-level
 * schedulers: per-leaf latency slack plus the BE-occupancy facts a
 * placement policy needs (is BE actually running here, is the leaf in a
 * post-violation cooldown, has the controller seen latency data yet).
 */
struct SlackExport {
    double slack = 1.0;        ///< (target - tail) / target, last poll.
    bool be_enabled = false;   ///< BE currently admitted on this server.
    bool in_cooldown = false;  ///< LC-only recovery window active.
    bool has_signal = false;   ///< At least one poll saw latency data.
};

/**
 * The per-server Heracles instance: one LC workload, one (elastic) BE
 * job, four isolation mechanisms.
 */
class HeraclesController
{
  public:
    /**
     * @param platform monitors and actuators for this server.
     * @param cfg controller tunables (paper defaults).
     * @param model offline LC DRAM bandwidth model.
     */
    HeraclesController(platform::Platform& platform, HeraclesConfig cfg,
                       LcBwModel model);

    ~HeraclesController();
    HeraclesController(const HeraclesController&) = delete;
    HeraclesController& operator=(const HeraclesController&) = delete;

    /** Schedules the control loops; call once. */
    void Start();

    /** Cancels all control loops. */
    void Stop();

    /**
     * Notifies the controller that its BE job is being taken away by a
     * cluster-level scheduler (migration / reclaim): releases every BE
     * allocation exactly like a safeguard disable, but without counting
     * as one — the decision came from above, not from this controller.
     * The platform's BE job must still be attached when called.
     */
    void OnBeJobRemoved();

    // --- Inspection ---------------------------------------------------------
    bool BeEnabled() const { return be_enabled_; }
    bool InCooldown() const;
    bool CanGrowBe() const { return can_grow_be_; }
    double LastSlack() const { return last_slack_; }
    /** Slack + BE-occupancy snapshot for cluster-level scheduling. */
    SlackExport ExportSlack() const;
    const ControllerStats& stats() const { return stats_; }
    const CoreMemController& core_mem() const { return *core_mem_; }
    const PowerController& power() const { return *power_; }
    const NetworkController& network() const { return *network_; }
    const HeraclesConfig& config() const { return cfg_; }

  private:
    void TopTick();
    void DisableBE();
    void EnableBE();

    platform::Platform& platform_;
    HeraclesConfig cfg_;
    std::unique_ptr<CoreMemController> core_mem_;
    std::unique_ptr<PowerController> power_;
    std::unique_ptr<NetworkController> network_;

    bool started_ = false;
    bool be_enabled_ = false;
    bool can_grow_be_ = false;
    double last_slack_ = 1.0;
    bool has_signal_ = false;
    sim::SimTime cooldown_until_ = 0;
    ControllerStats stats_;

    sim::EventQueue::EventId top_event_ = 0;
    sim::EventQueue::EventId core_mem_event_ = 0;
    sim::EventQueue::EventId power_event_ = 0;
    sim::EventQueue::EventId net_event_ = 0;
};

}  // namespace heracles::ctl

#endif  // HERACLES_HERACLES_CONTROLLER_H
