#include "heracles/core_mem.h"

#include <algorithm>
#include <cmath>

namespace heracles::ctl {

CoreMemController::CoreMemController(platform::Platform& platform,
                                     const HeraclesConfig& cfg,
                                     LcBwModel model)
    : platform_(platform), cfg_(cfg), model_(std::move(model))
{
}

double
CoreMemController::DramLimitGbps() const
{
    return cfg_.dram_limit_frac * platform_.DramPeakGbps();
}

double
CoreMemController::LcModelGbps() const
{
    if (cfg_.use_hw_bw_accounting) {
        // With per-task accounting the LC bandwidth is simply what is
        // left after subtracting the measured BE bandwidth.
        return std::max(0.0, platform_.MeasuredDramGbps() -
                                 platform_.BeDramEstimateGbps());
    }
    if (!cfg_.use_bw_model || model_.empty()) return 0.0;
    const int lc_cores =
        platform_.TotalPhysCores() - platform_.BeCores();
    const int lc_ways =
        platform_.TotalLlcWays() - platform_.BeWays();
    return model_.Evaluate(platform_.LcLoad(), lc_cores, lc_ways);
}

double
CoreMemController::BeBwGbps() const
{
    if (cfg_.use_hw_bw_accounting) {
        // Future-work hardware (Section 7): per-task bandwidth counters.
        return platform_.BeDramEstimateGbps();
    }
    // Paper hardware: BE bandwidth = measured total minus the offline LC
    // model; the chip cannot attribute bandwidth per core (Section 4.2).
    return std::max(0.0,
                    platform_.MeasuredDramGbps() - LcModelGbps());
}

double
CoreMemController::BeBwPerCoreGbps() const
{
    const int cores = std::max(platform_.BeCores(), 1);
    return std::max(BeBwGbps() / cores, 0.3);
}

void
CoreMemController::OnBeEnabled()
{
    state_ = State::kGrowLlc;
    const int ways = std::max(
        1, static_cast<int>(std::round(cfg_.initial_be_llc_frac *
                                       platform_.TotalLlcWays())));
    platform_.SetBeCores(cfg_.initial_be_cores);
    platform_.SetBeWays(ways);
    last_total_bw_ = platform_.MeasuredDramGbps();
    bw_derivative_ = 0.0;
}

void
CoreMemController::OnBeDisabled()
{
    state_ = State::kGrowLlc;
    bw_derivative_ = 0.0;
}

void
CoreMemController::Tick(bool can_grow_be, double slack)
{
    if (platform_.BeCores() <= 0) return;  // BE disabled

    // Fresh (approximate) slack between top-level polls.
    double fast_slack = 1.0;
    if (cfg_.use_fast_slack) {
        const double target = static_cast<double>(platform_.LcSlo());
        const sim::Duration fast = platform_.LcFastTailLatency();
        if (fast > 0) {
            fast_slack = (target - static_cast<double>(fast)) / target;
        }
    }
    if (cfg_.fast_shrink && fast_slack < cfg_.slack_shrink &&
        platform_.BeCores() > 1) {
        // Already violating: back off hard; merely close: back off by one.
        const int remove = fast_slack < 0.0 ? 4 : 1;
        platform_.SetBeCores(std::max(1, platform_.BeCores() - remove));
        return;
    }

    // Leading-signal guard: LC thread utilization. Near the capacity
    // cliff the tail looks healthy until the very step that collapses
    // the service, so slack alone (even the fast estimate) reacts too
    // late for workloads with large latency slack (memkeyval).
    const double lc_util = platform_.LcCpuUtilization();
    if (lc_util > cfg_.lc_util_shrink_limit && platform_.BeCores() > 1) {
        platform_.SetBeCores(platform_.BeCores() - 2);
        return;
    }

    // MeasureDRAMBw(): total bandwidth and its derivative since the
    // previous step.
    const double total_bw = platform_.MeasuredDramGbps();
    bw_derivative_ = total_bw - last_total_bw_;
    last_total_bw_ = total_bw;

    // First priority: never let DRAM saturate. Remove however many BE
    // cores the overage corresponds to.
    if (total_bw > DramLimitGbps()) {
        const double overage = total_bw - DramLimitGbps();
        const int remove = std::max(
            1, static_cast<int>(std::ceil(overage / BeBwPerCoreGbps())));
        platform_.SetBeCores(std::max(1, platform_.BeCores() - remove));
        return;
    }

    if (!can_grow_be) return;

    if (state_ == State::kGrowLlc) {
        // PredictedTotalBW(): the model plus the current BE bandwidth
        // plus the trend from the last reallocation.
        const double predicted =
            LcModelGbps() + BeBwGbps() + bw_derivative_;
        if (predicted > DramLimitGbps()) {
            state_ = State::kGrowCores;
            return;
        }
        const int max_be_ways = platform_.TotalLlcWays() - 4;
        if (platform_.BeWays() >= max_be_ways) {
            state_ = State::kGrowCores;
            return;
        }
        // GrowCacheForBE(), then re-measure. Growing the BE partition
        // should *reduce* total traffic (more BE hits); if bandwidth did
        // not drop, the grow hurt (e.g. it squeezed the LC partition) and
        // is rolled back.
        const double rate_before = platform_.BeRate();
        const double bw_before = platform_.MeasuredDramGbps();
        platform_.SetBeWays(platform_.BeWays() + 1);
        const double bw_after = platform_.MeasuredDramGbps();
        if (bw_after - bw_before >= 0.0) {
            platform_.SetBeWays(platform_.BeWays() - 1);  // Rollback()
            state_ = State::kGrowCores;
            return;
        }
        // BeBenefit(): keep the way, but stop pushing cache if the BE
        // task no longer speeds up.
        const double rate_after = platform_.BeRate();
        if (rate_after <
            rate_before * (1.0 + cfg_.be_benefit_eps)) {
            state_ = State::kGrowCores;
        }
    } else {  // State::kGrowCores
        const double needed =
            LcModelGbps() + BeBwGbps() + BeBwPerCoreGbps();
        if (needed > DramLimitGbps()) {
            state_ = State::kGrowLlc;
            return;
        }
        // Predictive utilization check: growing BE removes one LC core,
        // concentrating the LC load on the rest. At small LC core counts
        // the jump is large, so gate on the post-removal utilization to
        // avoid oscillating across the guard band.
        const int lc_cores =
            platform_.TotalPhysCores() - platform_.BeCores();
        const double util_after =
            lc_cores > 1 ? lc_util * lc_cores / (lc_cores - 1) : 1.0;
        if (slack > cfg_.slack_disallow_growth &&
            fast_slack > cfg_.fast_growth_margin &&
            util_after < cfg_.lc_util_grow_limit &&
            platform_.BeCores() < platform_.TotalPhysCores() - 1) {
            platform_.SetBeCores(platform_.BeCores() + 1);
        }
    }
}

}  // namespace heracles::ctl
