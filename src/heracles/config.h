/**
 * @file
 * Heracles controller configuration.
 *
 * Defaults are the constants from the paper's Algorithms 1-4 and the
 * surrounding text of Section 4.3. Everything is configurable so the
 * ablation benches can study each choice.
 */
#ifndef HERACLES_HERACLES_CONFIG_H
#define HERACLES_HERACLES_CONFIG_H

#include "sim/time.h"

namespace heracles::ctl {

/** Tunables of the Heracles controller. */
struct HeraclesConfig {
    // --- Top-level controller (Algorithm 1) ----------------------------------
    /** Poll period: "every 15 seconds ... sufficient queries to calculate
     *  statistically meaningful tail latencies". */
    sim::Duration top_period = sim::Seconds(15);
    /** Disable BE when LC load exceeds this fraction of peak. */
    double load_disable = 0.85;
    /** Re-enable BE when load drops below this (hysteresis). */
    double load_enable = 0.80;
    /** Below this latency slack, BE growth is disallowed. */
    double slack_disallow_growth = 0.10;
    /** Below this slack, cores are taken away from BE immediately. */
    double slack_shrink = 0.05;
    /** After a negative-slack event, all resources go to the LC job for
     *  this long before colocation is attempted again. */
    sim::Duration cooldown = sim::Minutes(5);

    // --- Core & memory subcontroller (Algorithm 2) -----------------------------
    sim::Duration core_mem_period = sim::Seconds(2);
    /** DRAM_LIMIT as a fraction of peak streaming bandwidth. */
    double dram_limit_frac = 0.90;
    /** A new BE job starts with one core and ~10% of the LLC. */
    int initial_be_cores = 1;
    double initial_be_llc_frac = 0.10;
    /** Relative BE throughput gain below which a cache grow "did not
     *  benefit" the BE task (BeBenefit test). */
    double be_benefit_eps = 0.01;
    /**
     * Gate BE core growth on the *fast* (~2 s) tail estimate in addition
     * to the 15 s slack from the top level. The top-level slack is up to
     * 15 s stale while cores move every 2 s; without a fresh signal the
     * descent can overshoot straight into an SLO violation. This is an
     * engineering stabilizer consistent with Section 4.3's "Heracles
     * estimates whether it is close to an SLO violation based on the
     * amount of latency slack" — ablatable for study.
     */
    bool use_fast_slack = true;
    /** Remove one BE core per 2 s tick while the fast slack is below the
     *  shrink threshold (recovers before the next top-level poll). */
    bool fast_shrink = true;
    /**
     * LC CPU-utilization guard: stop giving cores to BE once the LC
     * task's own threads are this busy, and take cores back above the
     * shrink bound. Tail latency alone is a lagging signal near the
     * capacity cliff (a microsecond-scale service looks perfectly
     * healthy until one core too many is removed); thread utilization
     * is the leading one. Set the grow limit to 1.0 to disable.
     */
    double lc_util_grow_limit = 0.62;
    double lc_util_shrink_limit = 0.85;
    /**
     * Extra margin on the fast slack required to keep growing BE cores.
     * Growth stops once the fresh tail estimate is within this distance
     * of the SLO; together with fast_shrink this forms a hysteresis band
     * [slack_shrink, fast_growth_margin] where the allocation is stable
     * instead of oscillating across the saturation knife edge.
     */
    double fast_growth_margin = 0.20;

    // --- Power subcontroller (Algorithm 3) ---------------------------------------
    sim::Duration power_period = sim::Seconds(2);
    /** Power threshold as a fraction of TDP (lower BE frequency above
     *  this when the LC cores are below guaranteed frequency). */
    double tdp_threshold = 0.90;
    /**
     * Raise the BE frequency cap only while power is below this fraction
     * of TDP. The gap between the two thresholds is hysteresis: without
     * it the controller saw-tooths across the RAPL limit, dipping the LC
     * cores below guaranteed frequency every other tick.
     */
    double tdp_raise_threshold = 0.80;
    /** DVFS steps applied per tick when shifting power. */
    int dvfs_steps_per_tick = 2;

    // --- Network subcontroller (Algorithm 4) ---------------------------------------
    sim::Duration net_period = sim::Seconds(1);
    /** Headroom = max(link_frac * LinkRate, lc_frac * LCBandwidth). */
    double net_headroom_link_frac = 0.05;
    double net_headroom_lc_frac = 0.10;

    // --- Ablation switches ------------------------------------------------------------
    bool enable_core_mem = true;
    bool enable_power = true;
    bool enable_net = true;
    /** Use the offline LC bandwidth model (paper) vs assuming zero LC
     *  bandwidth (ablation A2 shows why the model matters). */
    bool use_bw_model = true;
    /**
     * Use per-task hardware DRAM bandwidth accounting instead of the
     * offline model. The paper's Section 7 calls for exactly this
     * hardware support ("can improve Heracles' accuracy and eliminate
     * the need for offline information"); the simulated platform can
     * provide it, so the ablation benches quantify the benefit.
     */
    bool use_hw_bw_accounting = false;
};

}  // namespace heracles::ctl

#endif  // HERACLES_HERACLES_CONFIG_H
