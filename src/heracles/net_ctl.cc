#include "heracles/net_ctl.h"

#include <algorithm>

namespace heracles::ctl {

NetworkController::NetworkController(platform::Platform& platform,
                                     const HeraclesConfig& cfg)
    : platform_(platform), cfg_(cfg)
{
}

void
NetworkController::Tick()
{
    const double link = platform_.LinkRateGbps();
    const double lc_bw = platform_.LcTxGbps();
    const double headroom = std::max(cfg_.net_headroom_link_frac * link,
                                     cfg_.net_headroom_lc_frac * lc_bw);
    const double be_bw = std::max(0.0, link - lc_bw - headroom);
    last_ceil_ = be_bw;
    platform_.SetBeNetCeilGbps(be_bw);
}

}  // namespace heracles::ctl
