/**
 * @file
 * Offline DRAM bandwidth model for the latency-critical workload.
 *
 * Current Intel chips cannot attribute DRAM bandwidth to cores, so
 * Heracles carries an offline profile of the LC workload's bandwidth as a
 * function of load and resource allocation (Section 4.2). The controller
 * subtracts the model from the measured total to estimate the bandwidth
 * consumed by BE jobs. The paper notes the model only needs regenerating
 * on major workload changes and that Heracles tolerates staleness; the
 * staleness test in tests/heracles_test.cc exercises exactly that.
 */
#ifndef HERACLES_HERACLES_BW_MODEL_H
#define HERACLES_HERACLES_BW_MODEL_H

#include <vector>

#include "hw/config.h"
#include "workloads/lc_app.h"

namespace heracles::ctl {

/**
 * Piecewise-linear table: (load, LLC ways available to the LC task) ->
 * expected DRAM bandwidth in GB/s. The profiled workload's bandwidth in
 * this simulator does not depend on its core count once it can sustain
 * its load, so cores is accepted for interface fidelity but does not
 * index the table.
 */
class LcBwModel
{
  public:
    /** An empty model predicts zero bandwidth (ablation mode). */
    LcBwModel() = default;

    /**
     * Builds the model by offline profiling: evaluates the workload's
     * analytic demand curve over a (load x ways) grid, exactly like the
     * paper's offline characterization runs.
     */
    static LcBwModel Profile(const workloads::LcParams& params,
                             const hw::MachineConfig& cfg);

    /** Expected LC DRAM bandwidth (GB/s). @p cores kept for fidelity. */
    double Evaluate(double load, int cores, int lc_ways) const;

    bool empty() const { return table_.empty(); }
    int load_points() const { return static_cast<int>(loads_.size()); }

  private:
    std::vector<double> loads_;           // grid, ascending
    std::vector<int> ways_;               // grid, ascending
    std::vector<std::vector<double>> table_;  // [load][ways]
};

}  // namespace heracles::ctl

#endif  // HERACLES_HERACLES_BW_MODEL_H
