/**
 * @file
 * Core & memory subcontroller (Algorithm 2).
 *
 * One subcontroller manages both cores and cache because of the strong
 * coupling between core count, LLC needs and memory bandwidth needs. Its
 * first duty is to keep total DRAM bandwidth below DRAM_LIMIT (taking
 * cores away from BE when the channels approach saturation); within that
 * constraint it runs a one-dimension-at-a-time gradient descent,
 * alternating between growing the BE task's LLC partition (GROW_LLC) and
 * its core count (GROW_CORES), exactly as the paper describes. LC
 * performance is a convex function of cores and cache (Figure 3), so the
 * descent finds the global optimum.
 */
#ifndef HERACLES_HERACLES_CORE_MEM_H
#define HERACLES_HERACLES_CORE_MEM_H

#include "heracles/bw_model.h"
#include "heracles/config.h"
#include "platform/iface.h"

namespace heracles::ctl {

/** The cores & cache gradient-descent subcontroller. */
class CoreMemController
{
  public:
    enum class State { kGrowLlc, kGrowCores };

    /** @param model offline LC bandwidth model; may be empty (ablation). */
    CoreMemController(platform::Platform& platform,
                      const HeraclesConfig& cfg, LcBwModel model);

    /**
     * One 2-second control step.
     * @param can_grow_be top-level permission to grow BE allocations.
     * @param slack current latency slack from the top-level controller.
     */
    void Tick(bool can_grow_be, double slack);

    /** Resets to the initial allocation (1 core, ~10% LLC, GROW_LLC). */
    void OnBeEnabled();

    /** Clears state when the top-level controller disables BE. */
    void OnBeDisabled();

    State state() const { return state_; }

    /** The controller's current estimate of BE DRAM bandwidth (GB/s). */
    double BeBwGbps() const;

  private:
    double DramLimitGbps() const;
    double LcModelGbps() const;
    double BeBwPerCoreGbps() const;

    platform::Platform& platform_;
    HeraclesConfig cfg_;
    LcBwModel model_;

    State state_ = State::kGrowLlc;
    double last_total_bw_ = 0.0;
    double bw_derivative_ = 0.0;
};

}  // namespace heracles::ctl

#endif  // HERACLES_HERACLES_CORE_MEM_H
