#include "exp/experiment.h"

#include <cmath>

namespace heracles::exp {

std::string
PolicyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kNoColocation: return "baseline";
      case PolicyKind::kHeracles: return "heracles";
      case PolicyKind::kOsOnly: return "os-only";
      case PolicyKind::kStaticPartition: return "static";
    }
    return "?";
}

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.be.has_value() &&
        cfg_.policy != PolicyKind::kNoColocation) {
        be_alone_rate_ =
            workloads::MeasureAloneRate(cfg_.machine, *cfg_.be);
    }
}

std::vector<double>
Experiment::PaperLoads(double step)
{
    std::vector<double> loads;
    for (double l = 0.05; l <= 0.951; l += step) loads.push_back(l);
    return loads;
}

LoadPointResult
Experiment::RunAt(double load) const
{
    sim::EventQueue queue;
    hw::MachineConfig mcfg = cfg_.machine;
    mcfg.seed = cfg_.seed * 1000003ull +
                static_cast<uint64_t>(std::lround(load * 1000));

    hw::Machine machine(mcfg, queue);
    if (cfg_.policy == PolicyKind::kOsOnly) {
        machine.AllowCpuSharing(true);
    }

    workloads::LcApp lc(machine, cfg_.lc, mcfg.seed ^ 0x5C5C5C);
    std::unique_ptr<workloads::BeTask> be;
    const bool colocated =
        cfg_.be.has_value() && cfg_.policy != PolicyKind::kNoColocation;
    if (colocated) {
        be = std::make_unique<workloads::BeTask>(machine, *cfg_.be);
    }

    platform::SimPlatform plat(machine, lc, be.get());
    std::unique_ptr<ctl::HeraclesController> controller;

    const auto& topo = machine.topology();
    const int total_cores = mcfg.TotalCores();

    switch (cfg_.policy) {
      case PolicyKind::kNoColocation:
        plat.ApplyInitialPlacement();
        break;
      case PolicyKind::kHeracles: {
        plat.ApplyInitialPlacement();
        ctl::LcBwModel model = ctl::LcBwModel::Profile(cfg_.lc, mcfg);
        controller = std::make_unique<ctl::HeraclesController>(
            plat, cfg_.heracles, std::move(model));
        controller->Start();
        break;
      }
      case PolicyKind::kOsOnly:
        // Everything shares every cpu; the BE task runs with a tiny CFS
        // shares value but still induces millisecond-scale scheduling
        // delays plus unrestricted cache/bandwidth/power interference.
        lc.SetCpus(topo.PhysicalCores(0, total_cores));
        if (be) be->SetCpus(topo.PhysicalCores(0, total_cores));
        lc.SetSchedDelayModel(0.30, sim::Micros(500), sim::Millis(10));
        break;
      case PolicyKind::kStaticPartition: {
        // Conservative static split: half the cores and half the cache.
        const int half = total_cores / 2;
        lc.SetCpus(topo.PhysicalCores(0, half));
        machine.SetCatWays(&lc, mcfg.llc_ways / 2);
        if (be) {
            be->SetCpus(topo.PhysicalCores(half, total_cores - half));
            machine.SetCatWays(be.get(), mcfg.llc_ways / 2);
        }
        break;
      }
    }

    lc.SetLoad(load);
    lc.Start();
    machine.ResolveNow();

    queue.RunFor(cfg_.warmup);

    lc.ResetStats();
    if (be) be->ResetThroughput();
    machine.ResetTelemetryAverages();
    const uint64_t completed_before = lc.TotalCompleted();

    queue.RunFor(cfg_.measure);

    LoadPointResult r;
    r.load = load;
    r.worst_tail = lc.WorstReportTail();
    r.tail_frac_slo = static_cast<double>(r.worst_tail) /
                      static_cast<double>(cfg_.lc.slo_latency);
    r.slo_violated = r.tail_frac_slo > 1.0;

    const double measure_s = sim::ToSeconds(cfg_.measure);
    r.lc_throughput =
        static_cast<double>(lc.TotalCompleted() - completed_before) /
        measure_s / cfg_.lc.peak_qps;
    r.be_throughput = be ? be->AvgRate() / be_alone_rate_ : 0.0;
    r.emu = r.lc_throughput + r.be_throughput;

    r.telemetry = machine.AveragedTelemetry();
    r.be_cores = plat.BeCores();
    r.be_ways = plat.BeWays();
    r.be_freq_cap_ghz = plat.BeFreqCapGhz();
    r.slack = controller ? controller->LastSlack() : 0.0;
    if (controller) {
        r.be_disables = controller->stats().be_disables_slack +
                        controller->stats().be_disables_load;
    }

    if (controller) controller->Stop();
    return r;
}

std::vector<LoadPointResult>
Experiment::Sweep(const std::vector<double>& loads) const
{
    std::vector<LoadPointResult> out;
    out.reserve(loads.size());
    for (double l : loads) out.push_back(RunAt(l));
    return out;
}

}  // namespace heracles::exp
