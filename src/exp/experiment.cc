#include "exp/experiment.h"

#include <cmath>

#include "runner/pool.h"

namespace heracles::exp {

Experiment::Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.be.has_value() &&
        cfg_.policy != PolicyKind::kNoColocation) {
        be_alone_rate_ =
            workloads::MeasureAloneRate(cfg_.machine, *cfg_.be);
    }
}

std::vector<double>
Experiment::PaperLoads(double step)
{
    std::vector<double> loads;
    for (double l = 0.05; l <= 0.951; l += step) loads.push_back(l);
    return loads;
}

LoadPointResult
Experiment::RunAt(double load) const
{
    sim::EventQueue queue;

    ServerSpec spec;
    spec.machine = cfg_.machine;
    spec.lc = cfg_.lc;
    spec.SeedFrom(cfg_.seed,
                  static_cast<uint64_t>(std::lround(load * 1000)));
    spec.be = cfg_.be;
    spec.policy = cfg_.policy;
    spec.heracles = cfg_.heracles;

    ServerSim server(spec, queue);
    workloads::LcApp& lc = server.lc();
    workloads::BeTask* be = server.be();
    ctl::HeraclesController* controller = server.controller();

    lc.SetLoad(load);
    lc.Start();
    server.machine().ResolveNow();

    const uint64_t completed =
        server.RunMeasured(cfg_.warmup, cfg_.measure);

    LoadPointResult r;
    r.load = load;
    r.worst_tail = lc.WorstReportTail();
    r.tail_frac_slo = static_cast<double>(r.worst_tail) /
                      static_cast<double>(cfg_.lc.slo_latency);
    r.slo_violated = r.tail_frac_slo > 1.0;

    const double measure_s = sim::ToSeconds(cfg_.measure);
    r.lc_throughput =
        static_cast<double>(completed) / measure_s / cfg_.lc.peak_qps;
    r.be_throughput = be ? be->AvgRate() / be_alone_rate_ : 0.0;
    r.emu = r.lc_throughput + r.be_throughput;

    r.telemetry = server.machine().AveragedTelemetry();
    r.be_cores = server.platform().BeCores();
    r.be_ways = server.platform().BeWays();
    r.be_freq_cap_ghz = server.platform().BeFreqCapGhz();
    r.slack = controller ? controller->LastSlack() : 0.0;
    if (controller) {
        r.be_disables = controller->stats().be_disables_slack +
                        controller->stats().be_disables_load;
    }

    server.StopController();
    return r;
}

std::vector<LoadPointResult>
Experiment::Sweep(const std::vector<double>& loads, int jobs) const
{
    // Each RunAt builds a completely fresh simulation whose seeds derive
    // only from (config, load), so fanning the points across threads
    // cannot change any result.
    return runner::ParallelMap(jobs, loads.size(),
                               [&](size_t i) { return RunAt(loads[i]); });
}

}  // namespace heracles::exp
