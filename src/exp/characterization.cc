#include "exp/characterization.h"

#include <cmath>
#include <memory>

#include "hw/machine.h"
#include "runner/pool.h"
#include "workloads/antagonists.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"

namespace heracles::exp {

std::string
AntagonistName(AntagonistKind kind)
{
    switch (kind) {
      case AntagonistKind::kLlcSmall: return "LLC (small)";
      case AntagonistKind::kLlcMedium: return "LLC (med)";
      case AntagonistKind::kLlcBig: return "LLC (big)";
      case AntagonistKind::kDram: return "DRAM";
      case AntagonistKind::kHyperThread: return "HyperThread";
      case AntagonistKind::kCpuPower: return "CPU power";
      case AntagonistKind::kNetwork: return "Network";
      case AntagonistKind::kBrainOsOnly: return "brain";
    }
    return "?";
}

std::vector<AntagonistKind>
AllAntagonists()
{
    return {AntagonistKind::kLlcSmall,    AntagonistKind::kLlcMedium,
            AntagonistKind::kLlcBig,      AntagonistKind::kDram,
            AntagonistKind::kHyperThread, AntagonistKind::kCpuPower,
            AntagonistKind::kNetwork,     AntagonistKind::kBrainOsOnly};
}

CharacterizationRig::CharacterizationRig(const hw::MachineConfig& machine,
                                         const workloads::LcParams& lc,
                                         sim::Duration warmup,
                                         sim::Duration measure, uint64_t seed)
    : machine_(machine),
      lc_(lc),
      warmup_(warmup),
      measure_(measure),
      seed_(seed)
{
}

void
CharacterizationRig::SetSizingUtil(double util)
{
    sizing_util_ = util;
}

std::vector<double>
CharacterizationRig::PaperLoads()
{
    std::vector<double> loads;
    for (int pct = 5; pct <= 95; pct += 5) loads.push_back(pct / 100.0);
    return loads;
}

double
CharacterizationRig::RunBaseline(double load) const
{
    return RunBaselineImpl(load);
}

std::vector<double>
CharacterizationRig::RunRow(AntagonistKind kind,
                            const std::vector<double>& loads,
                            int jobs) const
{
    return runner::ParallelMap(jobs, loads.size(), [&](size_t i) {
        return RunCell(kind, loads[i]);
    });
}

std::vector<double>
CharacterizationRig::RunBaselineRow(const std::vector<double>& loads,
                                    int jobs) const
{
    return runner::ParallelMap(jobs, loads.size(), [&](size_t i) {
        return RunBaselineImpl(loads[i]);
    });
}

std::vector<std::vector<double>>
CharacterizationRig::RunGrid(const std::vector<AntagonistKind>& kinds,
                             const std::vector<double>& loads,
                             int jobs) const
{
    // Flatten the matrix so the pool stays busy across row boundaries.
    const size_t cols = loads.size();
    const std::vector<double> cells =
        runner::ParallelMap(jobs, kinds.size() * cols, [&](size_t i) {
            return RunCell(kinds[i / cols], loads[i % cols]);
        });

    std::vector<std::vector<double>> grid(kinds.size());
    for (size_t k = 0; k < kinds.size(); ++k) {
        grid[k].assign(cells.begin() + k * cols,
                       cells.begin() + (k + 1) * cols);
    }
    return grid;
}

double
CharacterizationRig::RunBaselineImpl(double load) const
{
    sim::EventQueue queue;
    hw::MachineConfig mcfg = machine_;
    mcfg.seed = seed_ * 7919ull + static_cast<uint64_t>(load * 1000);
    hw::Machine machine(mcfg, queue);
    workloads::LcApp lc(machine, lc_, mcfg.seed ^ 0xAB);
    lc.SetCpus(
        machine.topology().PhysicalCores(0, mcfg.TotalCores()));
    lc.SetLoad(load);
    lc.Start();
    machine.ResolveNow();
    queue.RunFor(warmup_);
    lc.ResetStats();
    queue.RunFor(measure_);
    return static_cast<double>(lc.WorstReportTail()) /
           static_cast<double>(lc_.slo_latency);
}

double
CharacterizationRig::RunCell(AntagonistKind kind, double load) const
{
    sim::EventQueue queue;
    hw::MachineConfig mcfg = machine_;
    mcfg.seed = seed_ * 7919ull +
                static_cast<uint64_t>(load * 1000) * 31ull +
                static_cast<uint64_t>(kind);
    hw::Machine machine(mcfg, queue);
    const auto& topo = machine.topology();
    const int total = mcfg.TotalCores();

    if (kind == AntagonistKind::kBrainOsOnly) {
        machine.AllowCpuSharing(true);
    }

    workloads::LcApp lc(machine, lc_, mcfg.seed ^ 0xAB);
    std::unique_ptr<workloads::BeTask> antagonist;

    auto make = [&](const workloads::BeProfile& prof) {
        antagonist = std::make_unique<workloads::BeTask>(machine, prof);
    };

    switch (kind) {
      case AntagonistKind::kLlcSmall:
        make(workloads::StreamLlcSmall(mcfg));
        break;
      case AntagonistKind::kLlcMedium:
        make(workloads::StreamLlcMedium(mcfg));
        break;
      case AntagonistKind::kLlcBig:
        make(workloads::StreamLlcBig(mcfg));
        break;
      case AntagonistKind::kDram:
        make(workloads::StreamDram());
        break;
      case AntagonistKind::kHyperThread:
        make(workloads::Spinloop());
        break;
      case AntagonistKind::kCpuPower:
        make(workloads::CpuPowerVirus());
        break;
      case AntagonistKind::kNetwork:
        make(workloads::Iperf());
        break;
      case AntagonistKind::kBrainOsOnly:
        make(workloads::Brain());
        break;
    }

    // Placement per Section 3.2.
    switch (kind) {
      case AntagonistKind::kHyperThread: {
        // LC pinned to hardware thread 0 of every core, the antagonist
        // spinloop pinned to the sibling thread of the same cores.
        lc.SetCpus(topo.ThreadOfCores(0, total, 0));
        antagonist->SetCpus(topo.ThreadOfCores(0, total, 1));
        break;
      }
      case AntagonistKind::kNetwork: {
        // All cores but one belong to the LC workload.
        lc.SetCpus(topo.PhysicalCores(0, total - 1));
        antagonist->SetCpus(topo.PhysicalCores(total - 1, 1));
        break;
      }
      case AntagonistKind::kBrainOsOnly: {
        // OS-only isolation: both workloads run everywhere; CFS shares
        // keep brain nominally low priority but scheduling delays and
        // unmanaged shared-resource interference remain.
        lc.SetCpus(topo.PhysicalCores(0, total));
        antagonist->SetCpus(topo.PhysicalCores(0, total));
        lc.SetSchedDelayModel(0.30, sim::Micros(500), sim::Millis(10));
        break;
      }
      default: {
        // "Enough cores to satisfy the SLO at this load" for the LC
        // task, spread across both sockets the way the production
        // service is NUMA-interleaved; everything else (on both
        // sockets) goes to the antagonist.
        const int lc_cores = lc.MinPhysCoresForLoad(load, sizing_util_);
        const hw::CpuSet lc_set = topo.SpreadCores(lc_cores);
        lc.SetCpus(lc_set);
        if (lc_cores < total) {
            antagonist->SetCpus(topo.AllCpus().Minus(lc_set));
        }
        break;
      }
    }

    lc.SetLoad(load);
    lc.Start();
    machine.ResolveNow();

    queue.RunFor(warmup_);
    lc.ResetStats();
    queue.RunFor(measure_);

    return static_cast<double>(lc.WorstReportTail()) /
           static_cast<double>(lc_.slo_latency);
}

}  // namespace heracles::exp
