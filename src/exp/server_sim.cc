#include "exp/server_sim.h"

#include "sim/log.h"

namespace heracles::exp {

std::string
PolicyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kNoColocation: return "baseline";
      case PolicyKind::kHeracles: return "heracles";
      case PolicyKind::kOsOnly: return "os-only";
      case PolicyKind::kStaticPartition: return "static";
    }
    return "?";
}

ServerSim::ServerSim(const ServerSpec& spec, sim::EventQueue& queue)
    : queue_(queue)
{
    machine_ = std::make_unique<hw::Machine>(spec.machine, queue);
    if (spec.policy == PolicyKind::kOsOnly) {
        machine_->AllowCpuSharing(true);
    }

    lc_ = std::make_unique<workloads::LcApp>(*machine_, spec.lc,
                                             spec.lc_seed);
    const bool colocated =
        spec.be.has_value() && spec.policy != PolicyKind::kNoColocation;
    if (colocated) {
        be_ = std::make_unique<workloads::BeTask>(*machine_, *spec.be);
    }

    plat_ = std::make_unique<platform::SimPlatform>(*machine_, *lc_,
                                                    be_.get());

    const auto& topo = machine_->topology();
    const int total_cores = spec.machine.TotalCores();

    switch (spec.policy) {
      case PolicyKind::kNoColocation:
        plat_->ApplyInitialPlacement();
        break;
      case PolicyKind::kHeracles: {
        plat_->ApplyInitialPlacement();
        ctl::LcBwModel model =
            spec.bw_model
                ? *spec.bw_model
                : ctl::LcBwModel::Profile(spec.lc, spec.machine);
        // The controller actuates through the fault-injection decorator
        // (pass-through on an empty plan — the 22 frozen goldens pin
        // that) and is observed by the safety-invariant checker, which
        // forwards everything verbatim.
        faulty_ = std::make_unique<chaos::FaultyPlatform>(*plat_,
                                                          spec.faults);
        chaos::InvariantChecker::Options iopt;
        iopt.top_period = spec.heracles.top_period;
        iopt.tdp_frac_limit = spec.heracles.tdp_threshold;
        checker_ =
            std::make_unique<chaos::InvariantChecker>(*faulty_, iopt);
        controller_ = std::make_unique<ctl::HeraclesController>(
            *checker_, spec.heracles, std::move(model));
        controller_->Start();
        break;
      }
      case PolicyKind::kOsOnly:
        // Everything shares every cpu; the BE task runs with a tiny CFS
        // shares value but still induces millisecond-scale scheduling
        // delays plus unrestricted cache/bandwidth/power interference.
        lc_->SetCpus(topo.PhysicalCores(0, total_cores));
        if (be_) be_->SetCpus(topo.PhysicalCores(0, total_cores));
        lc_->SetSchedDelayModel(0.30, sim::Micros(500), sim::Millis(10));
        break;
      case PolicyKind::kStaticPartition: {
        // Conservative static split: half the cores and half the cache.
        const int half = total_cores / 2;
        lc_->SetCpus(topo.PhysicalCores(0, half));
        machine_->SetCatWays(lc_.get(), spec.machine.llc_ways / 2);
        if (be_) {
            be_->SetCpus(topo.PhysicalCores(half, total_cores - half));
            machine_->SetCatWays(be_.get(), spec.machine.llc_ways / 2);
        }
        break;
      }
    }

    // Antagonist bursts: timed demand phase changes on the BE job.
    // Scheduled even when no job is attached yet — a cluster-level
    // scheduler may place one later (AttachBeJob applies the ambient
    // scale), and may equally detach it before a window edge fires,
    // hence the be_ re-check in ApplyBurstScale. Every edge recomputes
    // the ambient scale from all windows, so overlapping or adjacent
    // bursts compose (concurrent phases multiply) instead of one
    // window's end wiping another still in flight.
    if (spec.faults.HasBurst()) {
        for (const chaos::TimedFault& f : spec.faults.faults) {
            if (f.kind != chaos::FaultKind::kBurst) continue;
            bursts_.push_back(f);
        }
        for (const chaos::TimedFault& f : bursts_) {
            queue_.ScheduleAt(f.begin, [this] { ApplyBurstScale(); });
            queue_.ScheduleAt(f.end, [this] { ApplyBurstScale(); });
        }
    }
}

void
ServerSim::ApplyBurstScale()
{
    double scale = 1.0;
    const sim::SimTime now = queue_.Now();
    for (const chaos::TimedFault& f : bursts_) {
        if (f.ActiveAt(now)) scale *= f.magnitude;
    }
    burst_scale_ = scale;
    if (be_) be_->SetDemandScale(scale);
}

ServerSim::~ServerSim()
{
    StopController();
}

void
ServerSim::StopController()
{
    if (controller_ && !controller_stopped_) {
        controller_->Stop();
        controller_stopped_ = true;
    }
}

workloads::BeTask*
ServerSim::AttachBeJob(const workloads::BeProfile& profile)
{
    HERACLES_CHECK_MSG(be_ == nullptr,
                       "server already hosts BE job " << be_->name());
    be_ = std::make_unique<workloads::BeTask>(*machine_, profile);
    // A job placed mid-burst inherits the ambient demand scale.
    if (burst_scale_ != 1.0) be_->SetDemandScale(burst_scale_);
    plat_->AttachBeJob(be_.get());
    return be_.get();
}

void
ServerSim::DetachBeJob()
{
    if (be_ == nullptr) return;
    if (controller_ && !controller_stopped_) {
        controller_->OnBeJobRemoved();
    }
    plat_->AttachBeJob(nullptr);
    be_.reset();
}

uint64_t
ServerSim::RunMeasured(sim::Duration warmup, sim::Duration measure)
{
    queue_.RunFor(warmup);

    lc_->ResetStats();
    if (be_) be_->ResetThroughput();
    machine_->ResetTelemetryAverages();
    const uint64_t completed_before = lc_->TotalCompleted();

    queue_.RunFor(measure);
    return lc_->TotalCompleted() - completed_before;
}

}  // namespace heracles::exp
