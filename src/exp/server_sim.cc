#include "exp/server_sim.h"

#include "sim/log.h"

namespace heracles::exp {

std::string
PolicyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::kNoColocation: return "baseline";
      case PolicyKind::kHeracles: return "heracles";
      case PolicyKind::kOsOnly: return "os-only";
      case PolicyKind::kStaticPartition: return "static";
    }
    return "?";
}

ServerSim::ServerSim(const ServerSpec& spec, sim::EventQueue& queue)
    : queue_(queue)
{
    machine_ = std::make_unique<hw::Machine>(spec.machine, queue);
    if (spec.policy == PolicyKind::kOsOnly) {
        machine_->AllowCpuSharing(true);
    }

    lc_ = std::make_unique<workloads::LcApp>(*machine_, spec.lc,
                                             spec.lc_seed);
    const bool colocated =
        spec.be.has_value() && spec.policy != PolicyKind::kNoColocation;
    if (colocated) {
        be_ = std::make_unique<workloads::BeTask>(*machine_, *spec.be);
    }

    plat_ = std::make_unique<platform::SimPlatform>(*machine_, *lc_,
                                                    be_.get());

    const auto& topo = machine_->topology();
    const int total_cores = spec.machine.TotalCores();

    switch (spec.policy) {
      case PolicyKind::kNoColocation:
        plat_->ApplyInitialPlacement();
        break;
      case PolicyKind::kHeracles: {
        plat_->ApplyInitialPlacement();
        ctl::LcBwModel model =
            spec.bw_model
                ? *spec.bw_model
                : ctl::LcBwModel::Profile(spec.lc, spec.machine);
        controller_ = std::make_unique<ctl::HeraclesController>(
            *plat_, spec.heracles, std::move(model));
        controller_->Start();
        break;
      }
      case PolicyKind::kOsOnly:
        // Everything shares every cpu; the BE task runs with a tiny CFS
        // shares value but still induces millisecond-scale scheduling
        // delays plus unrestricted cache/bandwidth/power interference.
        lc_->SetCpus(topo.PhysicalCores(0, total_cores));
        if (be_) be_->SetCpus(topo.PhysicalCores(0, total_cores));
        lc_->SetSchedDelayModel(0.30, sim::Micros(500), sim::Millis(10));
        break;
      case PolicyKind::kStaticPartition: {
        // Conservative static split: half the cores and half the cache.
        const int half = total_cores / 2;
        lc_->SetCpus(topo.PhysicalCores(0, half));
        machine_->SetCatWays(lc_.get(), spec.machine.llc_ways / 2);
        if (be_) {
            be_->SetCpus(topo.PhysicalCores(half, total_cores - half));
            machine_->SetCatWays(be_.get(), spec.machine.llc_ways / 2);
        }
        break;
      }
    }
}

ServerSim::~ServerSim()
{
    StopController();
}

void
ServerSim::StopController()
{
    if (controller_ && !controller_stopped_) {
        controller_->Stop();
        controller_stopped_ = true;
    }
}

workloads::BeTask*
ServerSim::AttachBeJob(const workloads::BeProfile& profile)
{
    HERACLES_CHECK_MSG(be_ == nullptr,
                       "server already hosts BE job " << be_->name());
    be_ = std::make_unique<workloads::BeTask>(*machine_, profile);
    plat_->AttachBeJob(be_.get());
    return be_.get();
}

void
ServerSim::DetachBeJob()
{
    if (be_ == nullptr) return;
    if (controller_ && !controller_stopped_) {
        controller_->OnBeJobRemoved();
    }
    plat_->AttachBeJob(nullptr);
    be_.reset();
}

uint64_t
ServerSim::RunMeasured(sim::Duration warmup, sim::Duration measure)
{
    queue_.RunFor(warmup);

    lc_->ResetStats();
    if (be_) be_->ResetThroughput();
    machine_->ResetTelemetryAverages();
    const uint64_t completed_before = lc_->TotalCompleted();

    queue_.RunFor(measure);
    return lc_->TotalCompleted() - completed_before;
}

}  // namespace heracles::exp
