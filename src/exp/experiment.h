/**
 * @file
 * Single-server colocation experiments.
 *
 * An Experiment builds a fresh simulated server, the LC workload, an
 * optional BE job and an isolation policy; runs warmup + measurement at a
 * given load (or over a trace); and reports tail latency, Effective
 * Machine Utilization and shared-resource telemetry — the measurements
 * behind Figures 4-7 of the paper.
 */
#ifndef HERACLES_EXP_EXPERIMENT_H
#define HERACLES_EXP_EXPERIMENT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/server_sim.h"
#include "heracles/config.h"
#include "heracles/controller.h"
#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "workloads/antagonists.h"
#include "workloads/lc_configs.h"

namespace heracles::exp {

/** Configuration of one colocation experiment. */
struct ExperimentConfig {
    hw::MachineConfig machine;
    workloads::LcParams lc = workloads::Websearch();
    std::optional<workloads::BeProfile> be;  ///< No BE when unset.
    PolicyKind policy = PolicyKind::kHeracles;
    ctl::HeraclesConfig heracles;

    sim::Duration warmup = sim::Seconds(90);
    sim::Duration measure = sim::Seconds(180);
    uint64_t seed = 1;
};

/** Results of one (load point) measurement. */
struct LoadPointResult {
    double load = 0.0;

    sim::Duration worst_tail = 0;  ///< Worst report-window tail.
    double tail_frac_slo = 0.0;    ///< worst_tail / SLO.
    bool slo_violated = false;

    double lc_throughput = 0.0;  ///< Served fraction of LC peak.
    double be_throughput = 0.0;  ///< BE rate normalized to running alone.
    double emu = 0.0;            ///< Effective Machine Utilization.

    hw::MachineTelemetry telemetry;  ///< Time-averaged over measurement.

    // Final controller state (Heracles policy only).
    int be_cores = 0;
    int be_ways = 0;
    double be_freq_cap_ghz = 0.0;
    double slack = 0.0;
    /** Emergency BE disables (slack violations + load safeguards) over
     *  the whole run including warmup — evidence of instability even
     *  when the measured window looks clean after a cooldown. */
    uint64_t be_disables = 0;
};

/**
 * Runs colocation measurements. Every RunAt builds a completely fresh
 * simulation so load points are independent and reproducible.
 */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig cfg);

    /** Runs warmup + measurement at a fixed load fraction. */
    LoadPointResult RunAt(double load) const;

    /**
     * Runs the whole sweep (one fresh simulation per point). Load points
     * are fully independent, so with @p jobs > 1 they fan out across a
     * runner::Pool; results are merged in load order and bit-identical
     * to the serial (@p jobs <= 1) path.
     */
    std::vector<LoadPointResult> Sweep(const std::vector<double>& loads,
                                       int jobs = 1) const;

    /** The BE job's standalone throughput (units/s), for normalization. */
    double BeAloneRate() const { return be_alone_rate_; }

    const ExperimentConfig& config() const { return cfg_; }

    /** Default load sweep used across the paper's figures: 5%..95%. */
    static std::vector<double> PaperLoads(double step = 0.10);

  private:
    ExperimentConfig cfg_;
    double be_alone_rate_ = 1.0;
};

}  // namespace heracles::exp

#endif  // HERACLES_EXP_EXPERIMENT_H
