/**
 * @file
 * Interference characterization rig (Figure 1).
 *
 * Reproduces the paper's methodology (Section 3.2): the LC workload is
 * pinned to just enough cores to satisfy its SLO at each load; a
 * microbenchmark antagonist stressing one shared resource runs on the
 * remaining cores; the cell value is tail latency as a fraction of the
 * SLO. The HyperThread antagonist instead occupies the sibling hardware
 * threads of the LC cores; the network antagonist gets one core and the
 * LC workload all others; the "brain" row uses OS-only isolation (shared
 * cpus, CFS shares).
 */
#ifndef HERACLES_EXP_CHARACTERIZATION_H
#define HERACLES_EXP_CHARACTERIZATION_H

#include <string>
#include <vector>

#include "hw/config.h"
#include "workloads/lc_configs.h"

namespace heracles::exp {

/** The antagonist rows of Figure 1. */
enum class AntagonistKind {
    kLlcSmall,
    kLlcMedium,
    kLlcBig,
    kDram,
    kHyperThread,
    kCpuPower,
    kNetwork,
    kBrainOsOnly,
};

/** Row label as printed in the figure. */
std::string AntagonistName(AntagonistKind kind);

/** All rows in the figure's order. */
std::vector<AntagonistKind> AllAntagonists();

/** One characterization matrix runner for one LC workload. */
class CharacterizationRig
{
  public:
    CharacterizationRig(const hw::MachineConfig& machine,
                        const workloads::LcParams& lc,
                        sim::Duration warmup = sim::Seconds(30),
                        sim::Duration measure = sim::Seconds(60),
                        uint64_t seed = 1);

    /**
     * Runs one cell: tail latency under @p kind at @p load, as a
     * fraction of the SLO (1.0 = exactly at SLO).
     */
    double RunCell(AntagonistKind kind, double load) const;

    /** Baseline (no antagonist) tail fraction at @p load. */
    double RunBaseline(double load) const;

    /**
     * Runs one row (all @p loads for @p kind), fanning the independent
     * cells across @p jobs threads. Identical to calling RunCell per
     * load; cell seeds depend only on (kind, load).
     */
    std::vector<double> RunRow(AntagonistKind kind,
                               const std::vector<double>& loads,
                               int jobs = 1) const;

    /** Baseline row over @p loads, parallel like RunRow. */
    std::vector<double> RunBaselineRow(const std::vector<double>& loads,
                                       int jobs = 1) const;

    /**
     * Runs the whole matrix: one row per antagonist in @p kinds over
     * @p loads, all cells flattened across @p jobs threads. Returned in
     * row-major (kinds) order, bit-identical to the serial path.
     */
    std::vector<std::vector<double>> RunGrid(
        const std::vector<AntagonistKind>& kinds,
        const std::vector<double>& loads, int jobs = 1) const;

    /** The paper's load grid: 5%, 10%, ..., 95%. */
    static std::vector<double> PaperLoads();

    /**
     * Target per-thread utilization used to size "enough cores for the
     * SLO" (default 0.75: tight enough that saturating antagonists
     * overwhelm the thin provisioning, as on the paper's testbed).
     */
    void SetSizingUtil(double util);

  private:
    double RunBaselineImpl(double load) const;

    double sizing_util_ = 0.75;

    hw::MachineConfig machine_;
    workloads::LcParams lc_;
    sim::Duration warmup_;
    sim::Duration measure_;
    uint64_t seed_;
};

}  // namespace heracles::exp

#endif  // HERACLES_EXP_CHARACTERIZATION_H
