/**
 * @file
 * Table formatting for bench output: aligned text tables (the figures'
 * rows/series) and CSV for downstream plotting.
 */
#ifndef HERACLES_EXP_REPORTING_H
#define HERACLES_EXP_REPORTING_H

#include <iostream>
#include <string>
#include <vector>

namespace heracles::exp {

/** A simple text table with aligned columns. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void AddRow(std::vector<std::string> cells);

    /** Prints with space-aligned columns. */
    void Print(std::ostream& os = std::cout) const;

    /** Prints as CSV (no alignment). */
    void PrintCsv(std::ostream& os = std::cout) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "87%" from 0.87. */
std::string FormatPct(double fraction, int decimals = 0);

/**
 * Latency as % of SLO, capped like the paper's figure: values above 3.0
 * print as ">300%".
 */
std::string FormatTailFrac(double tail_frac_slo);

/** Fixed-precision double. */
std::string FormatDouble(double v, int decimals = 2);

/** Prints a section banner for bench output. */
void PrintBanner(const std::string& title, std::ostream& os = std::cout);

}  // namespace heracles::exp

#endif  // HERACLES_EXP_REPORTING_H
