#include "exp/reporting.h"

#include <algorithm>
#include <cstdio>

#include "sim/log.h"

namespace heracles::exp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::AddRow(std::vector<std::string> cells)
{
    HERACLES_CHECK_MSG(cells.size() == headers_.size(),
                       "row width " << cells.size() << " != header width "
                                    << headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::Print(std::ostream& os) const
{
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c) {
        width[c] = headers_[c].size();
        for (const auto& row : rows_) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            for (size_t pad = row[c].size(); pad < width[c]; ++pad) {
                os << ' ';
            }
        }
        os << '\n';
    };
    print_row(headers_);
    size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
    for (size_t w : width) total += w;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

void
Table::PrintCsv(std::ostream& os) const
{
    auto print_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : ",") << row[c];
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
}

std::string
FormatPct(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
FormatTailFrac(double tail_frac_slo)
{
    if (tail_frac_slo > 3.0) return ">300%";
    return FormatPct(tail_frac_slo);
}

std::string
FormatDouble(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

void
PrintBanner(const std::string& title, std::ostream& os)
{
    os << "\n=== " << title << " ===\n\n";
}

}  // namespace heracles::exp
