/**
 * @file
 * Shared single-server assembly.
 *
 * Every scenario in this library — a single-server experiment load point,
 * a characterization cell, a cluster leaf — boils down to the same build:
 * a fresh machine, the LC workload, an optional BE job, the platform
 * binding and (policy permitting) a Heracles controller. ServerSim is
 * that building block, extracted from exp/experiment.cc and
 * cluster/cluster.cc so both layers compose one implementation.
 *
 * Construction order is fixed (machine, LC app, BE task, platform,
 * controller) so that, for a given spec, the events scheduled during
 * assembly land in the queue in a deterministic order.
 */
#ifndef HERACLES_EXP_SERVER_SIM_H
#define HERACLES_EXP_SERVER_SIM_H

#include <memory>
#include <optional>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/faulty_platform.h"
#include "chaos/invariants.h"
#include "heracles/bw_model.h"
#include "heracles/config.h"
#include "heracles/controller.h"
#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"
#include "workloads/lc_configs.h"

namespace heracles::exp {

/** How colocation is (or is not) managed. */
enum class PolicyKind {
    kNoColocation,     ///< LC alone on the machine (baseline).
    kHeracles,         ///< The paper's controller over all 4 mechanisms.
    kOsOnly,           ///< Linux-only: shared cpusets + CFS shares.
    kStaticPartition,  ///< Fixed half/half cores + LLC, no controller.
};

/** Human-readable policy name. */
std::string PolicyName(PolicyKind kind);

/** Blueprint for one simulated server. All seeds must be resolved. */
struct ServerSpec {
    hw::MachineConfig machine;  ///< machine.seed already derived.
    workloads::LcParams lc;
    uint64_t lc_seed = 7;

    /**
     * The one seed-derivation scheme for every assembly: machine and LC
     * streams from a run seed plus a per-run salt (e.g. the load point).
     * Experiments and scenarios must share this so identical (seed,
     * salt) pairs build bit-identical servers.
     */
    void
    SeedFrom(uint64_t seed, uint64_t salt)
    {
        machine.seed = seed * 1000003ull + salt;
        lc_seed = machine.seed ^ 0x5C5C5C;
    }
    std::optional<workloads::BeProfile> be;  ///< No BE when unset.
    PolicyKind policy = PolicyKind::kHeracles;
    ctl::HeraclesConfig heracles;
    /**
     * Pre-built LC bandwidth model for the Heracles controller (not
     * owned; may outlive profiling cost when many servers share one
     * model). When null the model is profiled during assembly.
     */
    const ctl::LcBwModel* bw_model = nullptr;

    /**
     * Resolved fault-injection plan for this server (chaos scenarios).
     * Empty by default; an empty (or never-active) plan is byte-
     * identical to no plan.
     */
    chaos::ResolvedFaultPlan faults;
};

/**
 * One assembled simulated server on a caller-owned event queue: machine +
 * LC app + optional BE task + platform + policy wiring. The BE task is
 * only instantiated when the spec carries a BE profile and the policy
 * colocates; the controller only under PolicyKind::kHeracles (started
 * during assembly).
 *
 * The caller still drives the workload (SetLoad/Start or StartExternal +
 * InjectRequest) and runs the queue; ServerSim owns assembly and
 * teardown.
 */
class ServerSim
{
  public:
    ServerSim(const ServerSpec& spec, sim::EventQueue& queue);

    sim::EventQueue& queue() { return queue_; }

    /** Stops the controller (if any); members unwind in reverse order. */
    ~ServerSim();

    ServerSim(const ServerSim&) = delete;
    ServerSim& operator=(const ServerSim&) = delete;

    hw::Machine& machine() { return *machine_; }
    workloads::LcApp& lc() { return *lc_; }
    /** Null when not colocated. */
    workloads::BeTask* be() { return be_.get(); }
    platform::SimPlatform& platform() { return *plat_; }
    /** Null unless the policy is kHeracles. */
    ctl::HeraclesController* controller() { return controller_.get(); }

    /**
     * The fault-injection decorator the controller actuates through
     * (pass-through when the spec carried no plan); null unless the
     * policy is kHeracles.
     */
    chaos::FaultyPlatform* faulty() { return faulty_.get(); }

    /**
     * The safety-invariant observer sandwiched between controller and
     * (faulty) platform; null unless the policy is kHeracles. Zero
     * recorded violations is part of the golden contract.
     */
    chaos::InvariantChecker* checker() { return checker_.get(); }

    /** True when a BE task is colocated on this server. */
    bool colocated() const { return be_ != nullptr; }

    /** Cancels the controller loops; idempotent. */
    void StopController();

    /**
     * Attaches a BE job at runtime (cluster-level scheduler placement).
     * The server must currently have no BE job. The job starts paused
     * with zero cores; the local controller admits and grows it on its
     * own polls. Returns the created task.
     */
    workloads::BeTask* AttachBeJob(const workloads::BeProfile& profile);

    /**
     * Detaches the current BE job (migration / reclaim): releases its
     * allocations through the controller, unbinds it from the platform
     * and destroys the task. No-op without a job.
     */
    void DetachBeJob();

    /**
     * The shared warmup/measure protocol: runs @p warmup, then resets
     * the LC statistics, BE throughput accounting and telemetry
     * averages, runs @p measure, and returns the number of LC requests
     * completed inside the measurement window. Both Experiment load
     * points and catalog scenarios measure through this one sequence so
     * the reset protocol can never diverge between them.
     */
    uint64_t RunMeasured(sim::Duration warmup, sim::Duration measure);

  private:
    sim::EventQueue& queue_;
    std::unique_ptr<hw::Machine> machine_;
    std::unique_ptr<workloads::LcApp> lc_;
    std::unique_ptr<workloads::BeTask> be_;
    std::unique_ptr<platform::SimPlatform> plat_;
    std::unique_ptr<chaos::FaultyPlatform> faulty_;
    std::unique_ptr<chaos::InvariantChecker> checker_;
    /** Recomputes the ambient burst scale from bursts_ at Now(). */
    void ApplyBurstScale();

    std::unique_ptr<ctl::HeraclesController> controller_;
    bool controller_stopped_ = false;
    /** Resolved burst windows (active ones multiply into the scale). */
    std::vector<chaos::TimedFault> bursts_;
    /** Current antagonist-burst demand multiplier (1.0 = no burst). */
    double burst_scale_ = 1.0;
};

}  // namespace heracles::exp

#endif  // HERACLES_EXP_SERVER_SIM_H
