#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/log.h"

namespace heracles::sim {

StepTrace::StepTrace(std::vector<Step> steps) : steps_(std::move(steps))
{
    HERACLES_CHECK_MSG(!steps_.empty(), "StepTrace needs at least one step");
    HERACLES_CHECK_MSG(steps_.front().start == 0,
                       "first step must start at t=0");
    for (size_t i = 1; i < steps_.size(); ++i) {
        HERACLES_CHECK_MSG(steps_[i].start > steps_[i - 1].start,
                           "steps must be strictly increasing in time");
    }
}

double
StepTrace::LoadAt(SimTime t) const
{
    // Last step whose start <= t.
    auto it = std::upper_bound(
        steps_.begin(), steps_.end(), t,
        [](SimTime v, const Step& s) { return v < s.start; });
    return std::prev(it)->load;
}

Duration
StepTrace::Length() const
{
    return steps_.back().start;
}

DiurnalTrace::DiurnalTrace(Duration length, double low, double high,
                           double jitter, uint64_t seed)
    : length_(length), low_(low), high_(high), jitter_(jitter)
{
    HERACLES_CHECK(length > 0);
    HERACLES_CHECK(low >= 0.0 && high <= 1.0 && low < high);
    Rng rng(seed);
    const size_t minutes =
        static_cast<size_t>(ToSeconds(length) / 60.0) + 2;
    noise_.reserve(minutes);
    double n = 0.0;
    for (size_t i = 0; i < minutes; ++i) {
        // A clipped random walk gives smoothly-varying jitter rather than
        // white noise.
        n = std::clamp(n + rng.Uniform(-jitter_, jitter_), -jitter_, jitter_);
        noise_.push_back(n);
    }
}

double
DiurnalTrace::LoadAt(SimTime t) const
{
    const double x =
        std::clamp(ToSeconds(t) / ToSeconds(length_), 0.0, 1.0);
    // Cosine valley: starts at `high`, dips to `low` mid-trace, recovers.
    const double base =
        low_ + (high_ - low_) * (0.5 + 0.5 * std::cos(2.0 * M_PI * x));
    const size_t minute =
        std::min(noise_.size() - 1,
                 static_cast<size_t>(ToSeconds(t) / 60.0));
    return std::clamp(base + noise_[minute], 0.0, 1.0);
}

FlashCrowdTrace::FlashCrowdTrace(Duration length, double base, double peak,
                                 Duration onset, Duration ramp,
                                 Duration hold, Duration decay,
                                 double jitter, uint64_t seed)
    : length_(length),
      base_(base),
      peak_(peak),
      jitter_(jitter),
      onset_(onset),
      ramp_(ramp),
      hold_(hold),
      decay_(decay)
{
    HERACLES_CHECK(length > 0 && onset >= 0 && ramp > 0 && decay > 0);
    HERACLES_CHECK(base >= 0.0 && peak <= 1.0 && base < peak);
    Rng rng(seed);
    const size_t seconds = static_cast<size_t>(ToSeconds(length)) + 2;
    noise_.reserve(seconds);
    double n = 0.0;
    for (size_t i = 0; i < seconds; ++i) {
        n = std::clamp(n + rng.Uniform(-jitter_, jitter_), -jitter_,
                       jitter_);
        noise_.push_back(n);
    }
}

double
FlashCrowdTrace::LoadAt(SimTime t) const
{
    double level;
    if (t < onset_) {
        level = base_;
    } else if (t < onset_ + ramp_) {
        const double frac = static_cast<double>(t - onset_) /
                            static_cast<double>(ramp_);
        level = base_ + (peak_ - base_) * frac;
    } else if (t < onset_ + ramp_ + hold_) {
        level = peak_;
    } else {
        const double since =
            ToSeconds(t - onset_ - ramp_ - hold_);
        const double tau = ToSeconds(decay_) / 3.0;
        level = base_ + (peak_ - base_) * std::exp(-since / tau);
    }
    const size_t second = std::min(
        noise_.size() - 1,
        static_cast<size_t>(std::max<double>(ToSeconds(t), 0.0)));
    return std::clamp(level + noise_[second], 0.0, 1.0);
}

std::unique_ptr<CsvTrace>
CsvTrace::FromString(const std::string& csv)
{
    auto trace = std::unique_ptr<CsvTrace>(new CsvTrace());
    std::istringstream in(csv);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream row(line);
        double secs = 0.0, load = 0.0;
        char comma = 0;
        if (!(row >> secs >> comma >> load) || comma != ',') {
            HERACLES_FATAL("malformed CSV trace row: '" << line << "'");
        }
        if (load > 1.5) load /= 100.0;  // percent notation
        if (!trace->times_.empty() &&
            Seconds(secs) <= trace->times_.back()) {
            HERACLES_FATAL("CSV trace times must be increasing at: " << line);
        }
        trace->times_.push_back(Seconds(secs));
        trace->loads_.push_back(std::clamp(load, 0.0, 1.0));
    }
    if (trace->times_.empty()) HERACLES_FATAL("empty CSV trace");
    return trace;
}

std::unique_ptr<CsvTrace>
CsvTrace::FromFile(const std::string& path)
{
    std::ifstream f(path);
    if (!f) HERACLES_FATAL("cannot open trace file: " << path);
    std::stringstream buf;
    buf << f.rdbuf();
    return FromString(buf.str());
}

double
CsvTrace::LoadAt(SimTime t) const
{
    if (t <= times_.front()) return loads_.front();
    if (t >= times_.back()) return loads_.back();
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    const size_t i = static_cast<size_t>(it - times_.begin());
    const double frac =
        static_cast<double>(t - times_[i - 1]) /
        static_cast<double>(times_[i] - times_[i - 1]);
    return loads_[i - 1] + frac * (loads_[i] - loads_[i - 1]);
}

Duration
CsvTrace::Length() const
{
    return times_.back();
}

}  // namespace heracles::sim
