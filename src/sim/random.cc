#include "sim/random.h"

#include "sim/log.h"

namespace heracles::sim {
namespace {

inline uint64_t
SplitMix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

inline uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

void
Rng::Seed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
    has_cached_normal_ = false;
}

uint64_t
Rng::Next64()
{
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
}

double
Rng::Uniform01()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double
Rng::Exponential(double mean)
{
    HERACLES_CHECK_MSG(mean > 0, "exponential mean must be > 0: " << mean);
    double u = Uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::Normal(double mean, double stddev)
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return mean + stddev * cached_normal_;
    }
    double u1 = Uniform01();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = Uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return mean + stddev * r * std::cos(theta);
}

double
Rng::LogNormalWithMean(double mean, double sigma)
{
    HERACLES_CHECK_MSG(mean > 0, "lognormal mean must be > 0: " << mean);
    // If X = exp(N(mu, sigma)), E[X] = exp(mu + sigma^2/2). Choose mu so
    // that E[X] == mean.
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(Normal(mu, sigma));
}

double
Rng::BoundedPareto(double lo, double hi, double alpha)
{
    HERACLES_CHECK(lo > 0 && hi > lo && alpha > 0);
    const double u = Uniform01();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng
Rng::Fork()
{
    return Rng(Next64());
}

}  // namespace heracles::sim
