/**
 * @file
 * Discrete-event simulation engine.
 *
 * The engine is a single global-order event queue: callbacks scheduled at
 * simulated times, executed in (time, insertion-order) order. All hardware
 * models, workloads and controllers in this library are driven by this
 * queue; nothing observes wall-clock time.
 */
#ifndef HERACLES_SIM_EVENT_QUEUE_H
#define HERACLES_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/log.h"
#include "sim/time.h"

namespace heracles::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Priority queue of timed events plus the simulated clock.
 *
 * Events with equal timestamps fire in insertion order, which makes
 * simulations deterministic for a fixed seed. Periodic events reschedule
 * themselves until cancelled.
 */
class EventQueue
{
  public:
    /** Opaque handle used to cancel a scheduled or periodic event. */
    using EventId = uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    SimTime Now() const { return now_; }

    /**
     * Schedules @p fn to run at absolute time @p when.
     * @pre when >= Now().
     * @return handle usable with Cancel().
     */
    EventId ScheduleAt(SimTime when, EventFn fn);

    /** Schedules @p fn to run @p delay after the current time. */
    EventId ScheduleAfter(Duration delay, EventFn fn)
    {
        HERACLES_CHECK_MSG(delay >= 0, "negative delay " << delay);
        return ScheduleAt(now_ + delay, std::move(fn));
    }

    /**
     * Schedules @p fn every @p period, first firing at Now() + @p phase.
     * The callback keeps firing until the returned id is cancelled.
     */
    EventId SchedulePeriodic(Duration period, Duration phase, EventFn fn);

    /**
     * Cancels a pending (or periodic) event in O(1). Cancelling twice, or
     * cancelling an already-fired one-shot event, is a no-op and leaves no
     * bookkeeping behind.
     */
    void Cancel(EventId id)
    {
        if (pending_ids_.erase(id) > 0) cancelled_.insert(id);
    }

    /** Runs events until the queue is empty or the clock reaches @p until. */
    void RunUntil(SimTime until);

    /** Runs events for @p span of simulated time from the current clock. */
    void RunFor(Duration span) { RunUntil(now_ + span); }

    /** Number of events executed so far (for micro-benchmarks and tests). */
    uint64_t executed() const { return executed_; }

    /** Number of events currently pending. */
    size_t pending() const { return heap_.size(); }

    /** Cancelled events not yet dropped from the heap (for tests). */
    size_t cancelled_backlog() const { return cancelled_.size(); }

  private:
    struct Item {
        SimTime when;
        uint64_t seq;   // tie-breaker: insertion order
        EventId id;
        EventFn fn;
        Duration period;   // <= 0 for one-shot events

        bool
        operator>(const Item& o) const
        {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
    /** Ids of every event still in the heap (live events). */
    std::unordered_set<EventId> pending_ids_;
    /** Live ids that were cancelled; erased when popped off the heap. */
    std::unordered_set<EventId> cancelled_;
    SimTime now_ = 0;
    uint64_t next_seq_ = 0;
    EventId next_id_ = 1;
    uint64_t executed_ = 0;
};

}  // namespace heracles::sim

#endif  // HERACLES_SIM_EVENT_QUEUE_H
