/**
 * @file
 * Discrete-event simulation engine.
 *
 * The engine is a single global-order event queue: callbacks scheduled at
 * simulated times, executed in (time, insertion-order) order. All hardware
 * models, workloads and controllers in this library are driven by this
 * queue; nothing observes wall-clock time.
 *
 * Events live in a slab pool of fixed slots with free-list reuse: the
 * callback is stored in the slot via small-buffer InlineFn storage (zero
 * heap traffic for the closures the simulation layers schedule), the
 * binary heap orders plain 24-byte (time, seq, slot) records, and
 * EventIds carry a generation tag so Cancel is an O(1) slot lookup with
 * no side-table bookkeeping — a stale id (already fired, already
 * cancelled, or from a recycled slot) simply misses its generation and
 * is a no-op.
 */
#ifndef HERACLES_SIM_EVENT_QUEUE_H
#define HERACLES_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/log.h"
#include "sim/time.h"

namespace heracles::sim {

/**
 * Priority queue of timed events plus the simulated clock.
 *
 * Events with equal timestamps fire in insertion order, which makes
 * simulations deterministic for a fixed seed. Periodic events reschedule
 * themselves until cancelled.
 */
class EventQueue
{
  public:
    /**
     * Opaque handle used to cancel a scheduled or periodic event:
     * (generation << 32) | slot index. Generations start at 1, so the
     * zero-initialized id is never valid and cancelling it is a no-op.
     */
    using EventId = uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    SimTime Now() const { return now_; }

    /**
     * Schedules @p fn to run at absolute time @p when.
     * @pre when >= Now().
     * @return handle usable with Cancel().
     */
    template <typename Fn>
    EventId
    ScheduleAt(SimTime when, Fn&& fn)
    {
        HERACLES_CHECK_MSG(
            when >= now_,
            "scheduling into the past: " << when << " < " << now_);
        return Push(when, /*period=*/0, InlineFn(std::forward<Fn>(fn)));
    }

    /** Schedules @p fn to run @p delay after the current time. */
    template <typename Fn>
    EventId
    ScheduleAfter(Duration delay, Fn&& fn)
    {
        HERACLES_CHECK_MSG(delay >= 0, "negative delay " << delay);
        return Push(now_ + delay, /*period=*/0,
                    InlineFn(std::forward<Fn>(fn)));
    }

    /**
     * Schedules @p fn every @p period, first firing at Now() + @p phase.
     * The callback keeps firing until the returned id is cancelled.
     */
    template <typename Fn>
    EventId
    SchedulePeriodic(Duration period, Duration phase, Fn&& fn)
    {
        HERACLES_CHECK_MSG(period > 0,
                           "period must be positive: " << period);
        HERACLES_CHECK(phase >= 0);
        return Push(now_ + phase, period, InlineFn(std::forward<Fn>(fn)));
    }

    /**
     * Cancels a pending (or periodic) event in O(1). Cancelling twice,
     * cancelling an already-fired one-shot event, or cancelling with a
     * stale id from a recycled slot is a no-op and leaves no bookkeeping
     * behind.
     */
    void
    Cancel(EventId id)
    {
        const uint32_t idx = SlotOf(id);
        if (idx >= slots_.size()) return;
        Slot& s = slots_[idx];
        if (s.gen != GenOf(id) || s.state != Slot::kLive) return;
        // Only mark; the callable is destroyed when the slot is released
        // (a periodic cancelling itself mid-fire must not destroy the
        // closure it is currently executing).
        s.state = Slot::kCancelled;
        ++cancelled_;
    }

    /** Runs events until the queue is empty or the clock reaches @p until. */
    void RunUntil(SimTime until);

    /**
     * Runs events strictly before @p until (when < until), then advances
     * the clock to @p until; events at exactly @p until stay pending and
     * fire on the next run. This is the epoch engine's leaf-stepping
     * primitive: on the old shared queue, root-side barrier work
     * (window close, scheduler tick, fault boundaries) was inserted
     * earlier and therefore fired *before* any leaf event carrying the
     * same timestamp — stopping each leaf short of the barrier instant
     * reproduces that order with per-leaf queues.
     */
    void RunUntilBefore(SimTime until);

    /** Runs events for @p span of simulated time from the current clock. */
    void RunFor(Duration span) { RunUntil(now_ + span); }

    /** Number of events executed so far (for micro-benchmarks and tests). */
    uint64_t executed() const { return executed_; }

    /** Number of events currently in the heap (live + cancelled). */
    size_t pending() const { return heap_.size(); }

    /** Cancelled events not yet dropped from the heap (for tests). */
    size_t cancelled_backlog() const { return cancelled_; }

    /** Total slots ever created in the pool; bounded by the peak number
     *  of simultaneously pending events, not by throughput (for tests). */
    size_t pool_slots() const { return slots_.size(); }

    /** Slots currently on the free list awaiting reuse (for tests). */
    size_t
    pool_free() const
    {
        size_t n = 0;
        for (uint32_t i = free_head_; i != kNilSlot;
             i = slots_[i].next_free) {
            ++n;
        }
        return n;
    }

  private:
    static constexpr uint32_t kNilSlot = UINT32_MAX;

    /**
     * One pooled event. The slot index plus generation is the EventId;
     * the slot is recycled (generation bumped) as soon as its heap
     * record pops, so the pool stays as small as the peak pending count.
     */
    struct Slot {
        enum State : uint8_t {
            kFree,       ///< On the free list; fn is empty.
            kLive,       ///< Scheduled (or a periodic mid-fire).
            kCancelled,  ///< Cancelled; dropped when its record pops.
        };

        InlineFn fn;
        Duration period = 0;  ///< <= 0 for one-shot events.
        uint32_t gen = 0;     ///< Bumped on every acquire; 0 never issued.
        uint32_t next_free = kNilSlot;
        State state = kFree;
    };

    /** What the binary heap orders: plain data, no callback payload. */
    struct HeapItem {
        SimTime when;
        uint64_t seq;  ///< Tie-breaker: insertion order.
        uint32_t slot;

        bool
        operator>(const HeapItem& o) const
        {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    static uint32_t SlotOf(EventId id) { return static_cast<uint32_t>(id); }
    static uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id >> 32); }

    EventId Push(SimTime when, Duration period, InlineFn fn);
    uint32_t AcquireSlot();
    void ReleaseSlot(uint32_t idx);
    void RunLoop(SimTime until, bool inclusive);

    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
        heap_;
    /** Slab pool. std::deque: slot addresses stay stable while a firing
     *  callback schedules new events (which may extend the pool). */
    std::deque<Slot> slots_;
    uint32_t free_head_ = kNilSlot;
    size_t cancelled_ = 0;  ///< Cancelled slots still referenced by heap_.
    SimTime now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t executed_ = 0;
};

}  // namespace heracles::sim

#endif  // HERACLES_SIM_EVENT_QUEUE_H
