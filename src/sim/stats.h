/**
 * @file
 * Statistics: latency histograms, windowed tail tracking, utilization
 * averaging and time series for figure generation.
 */
#ifndef HERACLES_SIM_STATS_H
#define HERACLES_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.h"

namespace heracles::sim {

/**
 * Log-bucketed latency histogram (HDR-histogram style).
 *
 * Values are bucketed with a fixed relative precision (default ~2%) over a
 * huge dynamic range, so one histogram type covers memkeyval (~100us SLO)
 * and websearch (~10ms SLO). Percentile queries return the upper edge of
 * the bucket containing the requested rank.
 *
 * The histogram tracks its occupied bucket range, so the streaming-tail
 * hot path (WindowedTailTracker closes a window every few simulated
 * seconds: one Percentile + one Reset each) touches only the few dozen
 * buckets a workload actually populates instead of the whole 2048-bucket
 * backing array.
 */
class LatencyHistogram
{
  public:
    /** @param buckets_per_octave precision knob; 32 gives ~2.2% error. */
    explicit LatencyHistogram(int buckets_per_octave = 32);

    /** Records one latency sample (@p v in nanoseconds, clamped to >= 1). */
    void Record(Duration v) { RecordN(v, 1); }

    /** Records @p n identical samples (used by batched request models). */
    void RecordN(Duration v, uint64_t n);

    /** Returns the p-quantile (p in [0,1]); 0 if the histogram is empty. */
    Duration Percentile(double p) const;

    /** Arithmetic mean of recorded samples; 0 if empty. */
    double MeanNs() const;

    /** Largest recorded sample; 0 if empty. */
    Duration MaxNs() const { return max_; }

    uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Removes all samples. */
    void Reset();

    /** Adds all samples from @p other into this histogram. */
    void Merge(const LatencyHistogram& other);

  private:
    int BucketIndex(Duration v) const;
    Duration BucketUpperEdge(int idx) const;

    int buckets_per_octave_;
    std::vector<uint64_t> buckets_;
    /** Occupied range [lo_, hi_]; lo_ > hi_ when empty. Percentile scans
     *  and Reset fills touch only this range. */
    int lo_ = 0;
    int hi_ = -1;
    uint64_t count_ = 0;
    double sum_ns_ = 0.0;
    Duration max_ = 0;
};

/**
 * Tracks tail latency over fixed windows of simulated time.
 *
 * The paper reports the worst 60-second-window tail observed during an
 * experiment, and the Heracles controller polls the tail of the most
 * recently completed window. This class supports both: it rotates a
 * histogram every @p window and remembers per-window percentiles.
 */
class WindowedTailTracker
{
  public:
    WindowedTailTracker(Duration window, double percentile);

    /** Records a sample taken at simulated time @p now. */
    void Record(SimTime now, Duration latency, uint64_t n = 1);

    /**
     * Finishes the current window if @p now passed its end. Call before
     * reading; records also roll windows automatically.
     */
    void MaybeRoll(SimTime now);

    /** Tail of the last *completed* window; 0 if none completed yet. */
    Duration LastWindowTail() const { return last_window_tail_; }

    /** Mean latency of the last completed window (ns). */
    double LastWindowMeanNs() const { return last_window_mean_; }

    /** Sample count of the last completed window. */
    uint64_t LastWindowCount() const { return last_window_count_; }

    /** Worst per-window tail across the whole run; 0 if none completed. */
    Duration WorstWindowTail() const { return worst_window_tail_; }

    /** Tail over *all* samples ever recorded. */
    Duration OverallTail() const { return all_.Percentile(percentile_); }

    /** Any percentile over *all* samples ever recorded (p in [0,1]). */
    Duration OverallPercentile(double p) const { return all_.Percentile(p); }

    /** Tail of the in-progress (partial) window; 0 if empty. */
    Duration CurrentWindowTail() const {
        return current_.Percentile(percentile_);
    }

    /** Max of the worst completed window and the current partial window. */
    Duration WorstObservedTail() const {
        return std::max(worst_window_tail_, CurrentWindowTail());
    }

    /** Number of completed windows. */
    uint64_t WindowsCompleted() const { return windows_completed_; }

    /** Forgets the worst-window statistic (e.g. after a warmup phase). */
    void ResetWorst() { worst_window_tail_ = 0; }

    double percentile() const { return percentile_; }
    Duration window() const { return window_; }

  private:
    void CloseWindow();

    Duration window_;
    double percentile_;
    SimTime window_end_;
    LatencyHistogram current_;
    LatencyHistogram all_;
    Duration last_window_tail_ = 0;
    double last_window_mean_ = 0.0;
    uint64_t last_window_count_ = 0;
    Duration worst_window_tail_ = 0;
    uint64_t windows_completed_ = 0;
};

/**
 * Time-weighted mean of a piecewise-constant signal (e.g. CPU power,
 * DRAM bandwidth). Set() records a new level at a timestamp; the mean
 * weights each level by how long it was held.
 */
class TimeWeightedMean
{
  public:
    /** Records that the signal changed to @p value at time @p now. */
    void Set(SimTime now, double value);

    /** Mean up to @p now; 0 if nothing recorded. */
    double Mean(SimTime now) const;

    /** Maximum level ever set. */
    double Max() const { return max_; }

    /** Current level. */
    double Current() const { return value_; }

  private:
    double value_ = 0.0;
    double weighted_sum_ = 0.0;
    SimTime last_change_ = 0;
    SimTime start_ = 0;
    bool started_ = false;
    double max_ = 0.0;
};

/** A (time, value) series sampled during a run, for plotting figures. */
struct TimeSeries {
    std::vector<SimTime> t;
    std::vector<double> v;

    void
    Add(SimTime now, double value)
    {
        t.push_back(now);
        v.push_back(value);
    }
    size_t size() const { return t.size(); }
    double MeanValue() const;
    double MinValue() const;
    double MaxValue() const;
};

}  // namespace heracles::sim

#endif  // HERACLES_SIM_STATS_H
