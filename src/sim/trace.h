/**
 * @file
 * Load traces: time-varying target load for latency-critical workloads.
 *
 * The paper drives single-server sweeps with fixed load points and the
 * cluster experiment with an anonymized 12-hour production trace capturing
 * diurnal variation. This module provides constant, step, CSV-playback and
 * synthetic-diurnal traces with the same interface.
 */
#ifndef HERACLES_SIM_TRACE_H
#define HERACLES_SIM_TRACE_H

#include <memory>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace heracles::sim {

/** A time-varying load signal in [0, 1] (fraction of workload peak). */
class LoadTrace
{
  public:
    virtual ~LoadTrace() = default;

    /** Target load fraction at simulated time @p t. */
    virtual double LoadAt(SimTime t) const = 0;

    /** Total trace duration (after which LoadAt holds its final value). */
    virtual Duration Length() const = 0;
};

/** Constant load forever. */
class ConstantTrace : public LoadTrace
{
  public:
    explicit ConstantTrace(double load) : load_(load) {}
    double LoadAt(SimTime) const override { return load_; }
    Duration Length() const override { return 0; }

  private:
    double load_;
};

/** Piecewise-constant schedule of (start_time, load) steps. */
class StepTrace : public LoadTrace
{
  public:
    struct Step {
        SimTime start;
        double load;
    };

    /** @pre steps sorted by start time, first at t=0. */
    explicit StepTrace(std::vector<Step> steps);

    double LoadAt(SimTime t) const override;
    Duration Length() const override;

  private:
    std::vector<Step> steps_;
};

/**
 * Synthetic diurnal trace emulating the paper's 12-hour websearch trace:
 * a smooth valley-to-peak swing between @p low and @p high with bounded
 * random jitter, starting and ending near the peak.
 */
class DiurnalTrace : public LoadTrace
{
  public:
    DiurnalTrace(Duration length, double low, double high,
                 double jitter = 0.02, uint64_t seed = 42);

    double LoadAt(SimTime t) const override;
    Duration Length() const override { return length_; }

  private:
    Duration length_;
    double low_, high_, jitter_;
    std::vector<double> noise_;  // precomputed per-minute jitter
};

/**
 * Flash-crowd (bursty) trace: steady @p base load until the crowd
 * arrives at @p onset, a steep linear ramp to @p peak over @p ramp,
 * a plateau of @p hold, then an exponential decay back towards the base
 * (time constant decay/3, so the burst is ~95% drained after @p decay).
 * A clipped per-second random-walk jitter models the arrival noise of a
 * real crowd. This is the shape the paper's load safeguards exist for:
 * load crossing the disable threshold within one controller period.
 */
class FlashCrowdTrace : public LoadTrace
{
  public:
    FlashCrowdTrace(Duration length, double base, double peak,
                    Duration onset, Duration ramp = Seconds(5),
                    Duration hold = Seconds(25),
                    Duration decay = Seconds(45), double jitter = 0.02,
                    uint64_t seed = 42);

    double LoadAt(SimTime t) const override;
    Duration Length() const override { return length_; }

  private:
    Duration length_;
    double base_, peak_, jitter_;
    SimTime onset_;
    Duration ramp_, hold_, decay_;
    std::vector<double> noise_;  // precomputed per-second jitter
};

/**
 * Plays back "seconds,load" CSV rows (load either fraction or percent —
 * values > 1.5 are treated as percent). Linear interpolation between rows.
 */
class CsvTrace : public LoadTrace
{
  public:
    /** Parses CSV text. Throws HERACLES_FATAL on malformed input. */
    static std::unique_ptr<CsvTrace> FromString(const std::string& csv);

    /** Loads and parses a CSV file. */
    static std::unique_ptr<CsvTrace> FromFile(const std::string& path);

    double LoadAt(SimTime t) const override;
    Duration Length() const override;

  private:
    std::vector<SimTime> times_;
    std::vector<double> loads_;
};

}  // namespace heracles::sim

#endif  // HERACLES_SIM_TRACE_H
