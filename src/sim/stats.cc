#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace heracles::sim {

namespace {
// 64 octaves (1ns .. ~584 years) is more than enough dynamic range.
constexpr int kOctaves = 64;
}  // namespace

LatencyHistogram::LatencyHistogram(int buckets_per_octave)
    : buckets_per_octave_(buckets_per_octave),
      buckets_(static_cast<size_t>(kOctaves) * buckets_per_octave, 0)
{
    HERACLES_CHECK(buckets_per_octave >= 1);
}

int
LatencyHistogram::BucketIndex(Duration v) const
{
    if (v < 1) v = 1;
    const double lg = std::log2(static_cast<double>(v));
    int idx = static_cast<int>(lg * buckets_per_octave_);
    const int max_idx = static_cast<int>(buckets_.size()) - 1;
    return std::min(idx, max_idx);
}

Duration
LatencyHistogram::BucketUpperEdge(int idx) const
{
    const double edge =
        std::exp2(static_cast<double>(idx + 1) / buckets_per_octave_);
    return static_cast<Duration>(edge);
}

void
LatencyHistogram::RecordN(Duration v, uint64_t n)
{
    if (n == 0) return;
    const int idx = BucketIndex(v);
    buckets_[idx] += n;
    if (idx < lo_ || lo_ > hi_) lo_ = idx;
    if (idx > hi_) hi_ = idx;
    count_ += n;
    sum_ns_ += static_cast<double>(v) * static_cast<double>(n);
    max_ = std::max(max_, v);
}

Duration
LatencyHistogram::Percentile(double p) const
{
    if (count_ == 0) return 0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the requested quantile, 1-based, rounded up.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(count_))));
    uint64_t seen = 0;
    for (int i = lo_; i <= hi_; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            // Never report above the true max (tightens the top bucket).
            return std::min(BucketUpperEdge(i), max_);
        }
    }
    return max_;
}

double
LatencyHistogram::MeanNs() const
{
    return count_ == 0 ? 0.0 : sum_ns_ / static_cast<double>(count_);
}

void
LatencyHistogram::Reset()
{
    if (lo_ <= hi_) {
        std::fill(buckets_.begin() + lo_, buckets_.begin() + hi_ + 1, 0);
    }
    lo_ = 0;
    hi_ = -1;
    count_ = 0;
    sum_ns_ = 0.0;
    max_ = 0;
}

void
LatencyHistogram::Merge(const LatencyHistogram& other)
{
    HERACLES_CHECK(buckets_per_octave_ == other.buckets_per_octave_);
    if (other.lo_ <= other.hi_) {
        for (int i = other.lo_; i <= other.hi_; ++i) {
            buckets_[i] += other.buckets_[i];
        }
        if (lo_ > hi_) {
            lo_ = other.lo_;
            hi_ = other.hi_;
        } else {
            lo_ = std::min(lo_, other.lo_);
            hi_ = std::max(hi_, other.hi_);
        }
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    max_ = std::max(max_, other.max_);
}

WindowedTailTracker::WindowedTailTracker(Duration window, double percentile)
    : window_(window), percentile_(percentile), window_end_(window)
{
    HERACLES_CHECK(window > 0);
    HERACLES_CHECK(percentile > 0.0 && percentile < 1.0);
}

void
WindowedTailTracker::Record(SimTime now, Duration latency, uint64_t n)
{
    MaybeRoll(now);
    current_.RecordN(latency, n);
    all_.RecordN(latency, n);
}

void
WindowedTailTracker::MaybeRoll(SimTime now)
{
    while (now >= window_end_) {
        CloseWindow();
        window_end_ += window_;
    }
}

void
WindowedTailTracker::CloseWindow()
{
    if (!current_.empty()) {
        last_window_tail_ = current_.Percentile(percentile_);
        last_window_mean_ = current_.MeanNs();
        last_window_count_ = current_.count();
        worst_window_tail_ = std::max(worst_window_tail_, last_window_tail_);
        ++windows_completed_;
        current_.Reset();
    }
}

void
TimeWeightedMean::Set(SimTime now, double value)
{
    if (!started_) {
        started_ = true;
        start_ = now;
    } else if (now > last_change_) {
        weighted_sum_ +=
            value_ * static_cast<double>(now - last_change_);
    }
    last_change_ = now;
    value_ = value;
    max_ = std::max(max_, value);
}

double
TimeWeightedMean::Mean(SimTime now) const
{
    if (!started_ || now <= start_) return 0.0;
    double sum = weighted_sum_;
    if (now > last_change_) {
        sum += value_ * static_cast<double>(now - last_change_);
    }
    return sum / static_cast<double>(now - start_);
}

double
TimeSeries::MeanValue() const
{
    if (v.empty()) return 0.0;
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
}

double
TimeSeries::MinValue() const
{
    if (v.empty()) return 0.0;
    return *std::min_element(v.begin(), v.end());
}

double
TimeSeries::MaxValue() const
{
    if (v.empty()) return 0.0;
    return *std::max_element(v.begin(), v.end());
}

}  // namespace heracles::sim
