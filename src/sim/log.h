/**
 * @file
 * Lightweight assertion and fatal-error helpers.
 *
 * Follows the gem5 distinction between panic (internal invariant broken;
 * a bug in this library) and fatal (user configuration error; the run
 * cannot continue). Both abort the process after printing a message, since
 * a simulation with a broken invariant produces meaningless results.
 */
#ifndef HERACLES_SIM_LOG_H
#define HERACLES_SIM_LOG_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace heracles::sim {

/** Prints a fatal message and aborts. Use via the macros below. */
[[noreturn]] inline void
FailImpl(const char* kind, const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "%s at %s:%d: %s\n", kind, file, line, msg.c_str());
    std::abort();
}

}  // namespace heracles::sim

/** Aborts when an internal invariant is violated (library bug). */
#define HERACLES_CHECK(cond)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::heracles::sim::FailImpl("panic: check failed: " #cond,          \
                                      __FILE__, __LINE__, "");                \
        }                                                                     \
    } while (0)

/** HERACLES_CHECK with a streamed explanation. */
#define HERACLES_CHECK_MSG(cond, msg)                                         \
    do {                                                                      \
        if (!(cond)) {                                                        \
            std::ostringstream heracles_oss_;                                 \
            heracles_oss_ << msg;                                             \
            ::heracles::sim::FailImpl("panic: check failed: " #cond,          \
                                      __FILE__, __LINE__,                     \
                                      heracles_oss_.str());                   \
        }                                                                     \
    } while (0)

/** Aborts on a user configuration error (bad arguments, invalid setup). */
#define HERACLES_FATAL(msg)                                                   \
    do {                                                                      \
        std::ostringstream heracles_oss_;                                     \
        heracles_oss_ << msg;                                                 \
        ::heracles::sim::FailImpl("fatal", __FILE__, __LINE__,                \
                                  heracles_oss_.str());                       \
    } while (0)

#endif  // HERACLES_SIM_LOG_H
