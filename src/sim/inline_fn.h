/**
 * @file
 * Small-buffer move-only callable for the event-queue fast path.
 *
 * std::function heap-allocates any callable bigger than its tiny internal
 * buffer (16 bytes on common ABIs) — one malloc/free per scheduled event
 * for the simulator's typical `[this, request]` completion closures. An
 * InlineFn stores callables up to kInlineBytes in place inside the event
 * pool slot and only falls back to the heap beyond that, so the hot
 * schedule/fire cycle performs zero allocations.
 */
#ifndef HERACLES_SIM_INLINE_FN_H
#define HERACLES_SIM_INLINE_FN_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace heracles::sim {

/**
 * Move-only type-erased `void()` callable with inline storage.
 *
 * Callables up to kInlineBytes (with fundamental alignment and a
 * non-throwing move) live inside the object; larger ones are held through
 * one heap allocation. Invoking an empty InlineFn is undefined; check
 * with operator bool first. A moved-from InlineFn is empty.
 */
class InlineFn
{
  public:
    /** Inline capacity: fits a `this` pointer plus ~5 words of capture,
     *  which covers every closure the simulation layers schedule. */
    static constexpr size_t kInlineBytes = 48;

    InlineFn() = default;

    template <typename Fn,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<Fn>, InlineFn>>>
    InlineFn(Fn&& fn)  // NOLINT(google-explicit-constructor)
    {
        using T = std::decay_t<Fn>;
        static_assert(std::is_invocable_r_v<void, T&>,
                      "InlineFn requires a void() callable");
        if constexpr (FitsInline<T>) {
            ::new (static_cast<void*>(buf_)) T(std::forward<Fn>(fn));
            ops_ = &kInlineOps<T>;
        } else {
            // Heap fallback: store the T* in the buffer.
            T* p = new T(std::forward<Fn>(fn));
            ::new (static_cast<void*>(buf_)) T*(p);
            ops_ = &kHeapOps<T>;
        }
    }

    InlineFn(InlineFn&& other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    InlineFn&
    operator=(InlineFn&& other) noexcept
    {
        if (this != &other) {
            Reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFn(const InlineFn&) = delete;
    InlineFn& operator=(const InlineFn&) = delete;

    ~InlineFn() { Reset(); }

    /** Destroys the held callable (if any), leaving this empty. */
    void
    Reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** Invokes the held callable. @pre !empty(). */
    void operator()() { ops_->call(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** True when the callable lives in the inline buffer (no heap). */
    bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

  private:
    struct Ops {
        void (*call)(void* obj);
        /** Move-constructs src's callable into dst, then destroys src. */
        void (*relocate)(void* dst, void* src);
        void (*destroy)(void* obj);
        bool heap;
    };

    template <typename T>
    static constexpr bool FitsInline =
        sizeof(T) <= kInlineBytes &&
        alignof(T) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<T>;

    template <typename T>
    static T*
    Obj(void* buf)
    {
        return std::launder(reinterpret_cast<T*>(buf));
    }

    template <typename T>
    static constexpr Ops kInlineOps = {
        /*call=*/[](void* obj) { (*Obj<T>(obj))(); },
        /*relocate=*/
        [](void* dst, void* src) {
            ::new (dst) T(std::move(*Obj<T>(src)));
            Obj<T>(src)->~T();
        },
        /*destroy=*/[](void* obj) { Obj<T>(obj)->~T(); },
        /*heap=*/false,
    };

    template <typename T>
    static constexpr Ops kHeapOps = {
        /*call=*/[](void* obj) { (**Obj<T*>(obj))(); },
        /*relocate=*/
        [](void* dst, void* src) { ::new (dst) T*(*Obj<T*>(src)); },
        /*destroy=*/[](void* obj) { delete *Obj<T*>(obj); },
        /*heap=*/true,
    };

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

}  // namespace heracles::sim

#endif  // HERACLES_SIM_INLINE_FN_H
