/**
 * @file
 * Deterministic pseudo-random number generation and distributions.
 *
 * A small xoshiro256++ generator is used instead of std::mt19937 for speed
 * and reproducibility across standard libraries; distribution sampling is
 * implemented here (not via <random> distributions) so results are
 * bit-identical on every platform for a fixed seed.
 */
#ifndef HERACLES_SIM_RANDOM_H
#define HERACLES_SIM_RANDOM_H

#include <cmath>
#include <cstdint>

namespace heracles::sim {

/**
 * xoshiro256++ pseudo-random generator (Blackman & Vigna).
 *
 * Seeded via SplitMix64 so that any 64-bit seed (including 0) produces a
 * well-mixed state.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

    /** Re-seeds the generator. */
    void Seed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t Next64();

    /** Uniform double in [0, 1). */
    double Uniform01();

    /** Uniform double in [lo, hi). */
    double Uniform(double lo, double hi) {
        return lo + (hi - lo) * Uniform01();
    }

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t UniformInt(uint64_t n) { return Next64() % n; }

    /** Exponential with mean @p mean (> 0). Never returns exactly 0. */
    double Exponential(double mean);

    /**
     * Log-normal with given mean and sigma of the *underlying normal scaled
     * so the distribution mean equals @p mean*. This is the canonical heavy-
     * tailed service-time distribution used by the LC workload models.
     */
    double LogNormalWithMean(double mean, double sigma);

    /** Standard normal via Box-Muller (cached second value). */
    double Normal(double mean, double stddev);

    /** Bernoulli trial with probability @p p. */
    bool Bernoulli(double p) { return Uniform01() < p; }

    /**
     * Bounded Pareto sample in [lo, hi] with shape @p alpha; used for
     * occasional very-slow requests (request-size skew).
     */
    double BoundedPareto(double lo, double hi, double alpha);

    /** Derives an independent child generator (for per-component streams). */
    Rng Fork();

  private:
    uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace heracles::sim

#endif  // HERACLES_SIM_RANDOM_H
