#include "sim/event_queue.h"

#include <cstdio>

namespace heracles::sim {

std::string
FormatDuration(Duration d)
{
    char buf[64];
    const double ad = static_cast<double>(d < 0 ? -d : d);
    if (ad < 1e3) {
        std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(d));
    } else if (ad < 1e6) {
        std::snprintf(buf, sizeof buf, "%.1fus", d / 1e3);
    } else if (ad < 1e9) {
        std::snprintf(buf, sizeof buf, "%.1fms", d / 1e6);
    } else {
        std::snprintf(buf, sizeof buf, "%.2fs", d / 1e9);
    }
    return buf;
}

uint32_t
EventQueue::AcquireSlot()
{
    uint32_t idx;
    if (free_head_ != kNilSlot) {
        idx = free_head_;
        free_head_ = slots_[idx].next_free;
    } else {
        idx = static_cast<uint32_t>(slots_.size());
        HERACLES_CHECK_MSG(idx != kNilSlot, "event pool exhausted");
        slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    // Generation 0 is never issued, so a zero-initialized EventId can
    // never match a live slot.
    if (++s.gen == 0) ++s.gen;
    s.state = Slot::kLive;
    return idx;
}

void
EventQueue::ReleaseSlot(uint32_t idx)
{
    Slot& s = slots_[idx];
    s.fn.Reset();
    s.period = 0;
    s.state = Slot::kFree;
    s.next_free = free_head_;
    free_head_ = idx;
}

EventQueue::EventId
EventQueue::Push(SimTime when, Duration period, InlineFn fn)
{
    const uint32_t idx = AcquireSlot();
    Slot& s = slots_[idx];
    s.fn = std::move(fn);
    s.period = period;
    heap_.push(HeapItem{when, next_seq_++, idx});
    return (static_cast<EventId>(s.gen) << 32) | idx;
}

void
EventQueue::RunUntil(SimTime until)
{
    RunLoop(until, /*inclusive=*/true);
}

void
EventQueue::RunUntilBefore(SimTime until)
{
    RunLoop(until, /*inclusive=*/false);
}

void
EventQueue::RunLoop(SimTime until, bool inclusive)
{
    while (!heap_.empty() && (inclusive ? heap_.top().when <= until
                                        : heap_.top().when < until)) {
        const HeapItem item = heap_.top();
        heap_.pop();
        // The deque keeps slot addresses stable across callbacks, but a
        // reference would still dangle conceptually; re-index after fn().
        Slot& s = slots_[item.slot];
        if (s.state == Slot::kCancelled) {
            --cancelled_;
            ReleaseSlot(item.slot);
            continue;
        }
        now_ = item.when;
        ++executed_;
        if (s.period <= 0) {
            // One-shot: recycle the slot before the callback runs, so a
            // self-Cancel inside fn() misses (state kFree / stale gen)
            // and the slot is immediately reusable by whatever the
            // callback schedules.
            InlineFn fn = std::move(s.fn);
            ReleaseSlot(item.slot);
            fn();
        } else {
            s.fn();
            Slot& after = slots_[item.slot];
            if (after.state == Slot::kCancelled) {
                // The callback cancelled its own periodic event.
                --cancelled_;
                ReleaseSlot(item.slot);
            } else {
                heap_.push(
                    HeapItem{now_ + after.period, next_seq_++, item.slot});
            }
        }
    }
    if (now_ < until) now_ = until;
}

}  // namespace heracles::sim
