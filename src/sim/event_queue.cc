#include "sim/event_queue.h"

#include <cstdio>

namespace heracles::sim {

std::string
FormatDuration(Duration d)
{
    char buf[64];
    const double ad = static_cast<double>(d < 0 ? -d : d);
    if (ad < 1e3) {
        std::snprintf(buf, sizeof buf, "%ldns", static_cast<long>(d));
    } else if (ad < 1e6) {
        std::snprintf(buf, sizeof buf, "%.1fus", d / 1e3);
    } else if (ad < 1e9) {
        std::snprintf(buf, sizeof buf, "%.1fms", d / 1e6);
    } else {
        std::snprintf(buf, sizeof buf, "%.2fs", d / 1e9);
    }
    return buf;
}

EventQueue::EventId
EventQueue::ScheduleAt(SimTime when, EventFn fn)
{
    HERACLES_CHECK_MSG(when >= now_,
                       "scheduling into the past: " << when << " < " << now_);
    const EventId id = next_id_++;
    heap_.push(Item{when, next_seq_++, id, std::move(fn), /*period=*/0});
    pending_ids_.insert(id);
    return id;
}

EventQueue::EventId
EventQueue::SchedulePeriodic(Duration period, Duration phase, EventFn fn)
{
    HERACLES_CHECK_MSG(period > 0, "period must be positive: " << period);
    HERACLES_CHECK(phase >= 0);
    const EventId id = next_id_++;
    heap_.push(Item{now_ + phase, next_seq_++, id, std::move(fn), period});
    pending_ids_.insert(id);
    return id;
}

void
EventQueue::RunUntil(SimTime until)
{
    while (!heap_.empty() && heap_.top().when <= until) {
        Item item = heap_.top();
        heap_.pop();
        if (cancelled_.erase(item.id) > 0) {
            // Periodic events are dropped entirely once cancelled; one-shot
            // events simply never fire. (Cancel already removed the id
            // from pending_ids_.)
            continue;
        }
        now_ = item.when;
        ++executed_;
        // A one-shot event is no longer pending the moment it fires —
        // erase before the callback so a self-Cancel inside fn() is a
        // clean no-op instead of a leaked cancelled_ entry.
        if (item.period <= 0) pending_ids_.erase(item.id);
        item.fn();
        if (item.period > 0) {
            // A callback may have cancelled its own periodic event.
            if (cancelled_.erase(item.id) > 0) continue;
            item.when = now_ + item.period;
            item.seq = next_seq_++;
            heap_.push(std::move(item));
        }
    }
    if (now_ < until) now_ = until;
}

}  // namespace heracles::sim
