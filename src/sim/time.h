/**
 * @file
 * Simulated time primitives.
 *
 * All simulated time is kept as a signed 64-bit count of nanoseconds. A
 * nanosecond tick is fine enough for the microsecond-scale SLOs of memkeyval
 * and wide enough for multi-day simulations (~292 years of range).
 */
#ifndef HERACLES_SIM_TIME_H
#define HERACLES_SIM_TIME_H

#include <cstdint>
#include <string>

namespace heracles::sim {

/** A point in simulated time, in nanoseconds since simulation start. */
using SimTime = int64_t;

/** A span of simulated time, in nanoseconds. */
using Duration = int64_t;

/** @name Duration construction helpers
 *  @{ */
constexpr Duration Nanos(double ns) { return static_cast<Duration>(ns); }
constexpr Duration Micros(double us) {
    return static_cast<Duration>(us * 1e3);
}
constexpr Duration Millis(double ms) {
    return static_cast<Duration>(ms * 1e6);
}
constexpr Duration Seconds(double s) { return static_cast<Duration>(s * 1e9); }
constexpr Duration Minutes(double m) {
    return static_cast<Duration>(m * 60e9);
}
constexpr Duration Hours(double h) {
    return static_cast<Duration>(h * 3600e9);
}
/** @} */

/** @name Duration conversion helpers
 *  @{ */
constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double ToHours(Duration d) {
    return static_cast<double>(d) / 3600e9;
}
/** @} */

/** Formats a duration with an adaptive unit (ns/us/ms/s), e.g. "12.3ms". */
std::string FormatDuration(Duration d);

}  // namespace heracles::sim

#endif  // HERACLES_SIM_TIME_H
