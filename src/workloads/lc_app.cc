#include "workloads/lc_app.h"

#include <algorithm>
#include <cmath>

namespace heracles::workloads {

LcApp::LcApp(hw::Machine& machine, const LcParams& params, uint64_t seed)
    : machine_(machine),
      params_(params),
      rng_(seed),
      report_tail_(params.report_window, params.slo_percentile),
      ctl_tail_(params.ctl_window, params.slo_percentile),
      fast_tail_(params.fast_window, params.slo_percentile)
{
    HERACLES_CHECK(params_.peak_qps > 0 && params_.mean_service > 0);
    HERACLES_CHECK(params_.batch >= 1);
    // Response wire time is a constant of (params, machine); computing it
    // per completion was measurable at cluster scale.
    wire_s_ = params_.resp_bytes * 8.0 / (machine.config().nic_gbps * 1e9);
    machine_.AddClient(this);
    rate_event_ = machine_.queue().SchedulePeriodic(
        sim::Seconds(1), sim::Seconds(1), [this] { UpdateRates(); });
}

LcApp::~LcApp()
{
    machine_.queue().Cancel(rate_event_);
    machine_.RemoveClient(this);
}

void
LcApp::SetCpus(const hw::CpuSet& cpus)
{
    AccumulateBusy();
    machine_.AssignCpus(this, cpus);
    ++alloc_version_;  // invalidates the cached service-time factors
    capacity_ = cpus.Count();
    phys_cores_ = machine_.topology().PhysicalCoreCount(cpus);
    TryDispatch();
}

void
LcApp::SetTrace(const sim::LoadTrace* trace)
{
    trace_ = trace;
    owned_trace_.reset();
}

void
LcApp::SetLoad(double load_fraction)
{
    owned_trace_ = std::make_unique<sim::ConstantTrace>(load_fraction);
    trace_ = owned_trace_.get();
}

void
LcApp::SetSchedDelayModel(double prob, sim::Duration lo, sim::Duration hi)
{
    HERACLES_CHECK(prob >= 0.0 && prob <= 1.0 && lo >= 0 && hi >= lo);
    sched_delay_prob_ = prob;
    sched_delay_lo_ = lo;
    sched_delay_hi_ = hi;
}

void
LcApp::Start()
{
    HERACLES_CHECK_MSG(!started_, "LcApp started twice");
    HERACLES_CHECK_MSG(trace_ != nullptr, "no load set before Start()");
    HERACLES_CHECK_MSG(capacity_ > 0, "no cpus assigned before Start()");
    started_ = true;
    ScheduleNextArrival();
}

void
LcApp::StartExternal()
{
    HERACLES_CHECK_MSG(!started_, "LcApp started twice");
    HERACLES_CHECK_MSG(capacity_ > 0, "no cpus assigned before Start()");
    started_ = true;
    external_ = true;
}

void
LcApp::InjectRequest(uint64_t tag)
{
    HERACLES_CHECK_MSG(external_, "InjectRequest requires StartExternal()");
    arrivals_in_sec_ += static_cast<uint64_t>(params_.batch);
    total_arrived_ += static_cast<uint64_t>(params_.batch);
    Request req;
    req.arrival = machine_.queue().Now();
    req.tag = tag;
    req.tracked = true;
    queue_.push_back(req);
    TryDispatch();
}

void
LcApp::ScheduleNextArrival()
{
    const sim::SimTime now = machine_.queue().Now();
    const double load = trace_->LoadAt(now);
    const double rate =
        load * params_.peak_qps / params_.batch;  // batch arrivals/sec
    if (rate <= 1e-6) {
        // Idle: poll the trace again shortly.
        machine_.queue().ScheduleAfter(sim::Millis(100),
                                       [this] { ScheduleNextArrival(); });
        return;
    }
    const sim::Duration gap =
        std::max<sim::Duration>(1, sim::Seconds(rng_.Exponential(1.0 / rate)));
    machine_.queue().ScheduleAfter(gap, [this] { OnArrival(); });
}

void
LcApp::OnArrival()
{
    arrivals_in_sec_ += static_cast<uint64_t>(params_.batch);
    total_arrived_ += static_cast<uint64_t>(params_.batch);
    Request req;
    req.arrival = machine_.queue().Now();
    queue_.push_back(req);
    TryDispatch();
    ScheduleNextArrival();
}

void
LcApp::TryDispatch()
{
    while (busy_ < capacity_ && !queue_.empty()) {
        Request req = queue_.front();
        queue_.pop_front();
        StartService(req);
    }
}

void
LcApp::StartService(Request req)
{
    // A resolve requested earlier this instant must observe the
    // pre-dispatch busy count; flush it before mutating.
    machine_.EnsureResolved();
    AccumulateBusy();
    ++busy_;
    // The scheduler fills idle physical cores before doubling up on
    // HyperThread siblings, so self-HT slowdown applies only once the
    // number of in-flight requests exceeds the physical core count.
    const bool ht_shared = busy_ > phys_cores_;
    sim::Duration service = SampleServiceTime(ht_shared);
    if (sched_delay_prob_ > 0.0 && rng_.Bernoulli(sched_delay_prob_)) {
        service += static_cast<sim::Duration>(rng_.Uniform(
            static_cast<double>(sched_delay_lo_),
            static_cast<double>(sched_delay_hi_)));
    }
    uint32_t slot;
    if (!inflight_free_.empty()) {
        slot = inflight_free_.back();
        inflight_free_.pop_back();
    } else {
        slot = static_cast<uint32_t>(inflight_.size());
        inflight_.emplace_back();
    }
    inflight_[slot] = req;
    machine_.queue().ScheduleAfter(service,
                                   [this, slot] { CompleteInflight(slot); });
}

void
LcApp::CompleteInflight(uint32_t slot)
{
    const Request req = inflight_[slot];
    inflight_free_.push_back(slot);
    OnCompletion(req);
}

void
LcApp::OnCompletion(const Request& req)
{
    const sim::SimTime arrival = req.arrival;
    // Flush before the busy count drops (see StartService).
    machine_.EnsureResolved();
    AccumulateBusy();
    --busy_;
    completions_in_sec_ += static_cast<uint64_t>(params_.batch);
    total_completed_ += static_cast<uint64_t>(params_.batch);

    const hw::TaskView& view = machine_.ViewOf(this);
    const sim::SimTime now = machine_.queue().Now();
    // Response transmission: wire time inflated by egress queueing.
    sim::Duration net = sim::Seconds(wire_s_ * view.net_delay_factor);
    if (view.net_drop_prob > 0.0 && rng_.Bernoulli(view.net_drop_prob)) {
        // Lost packet: TCP minimum retransmission timeout.
        net += sim::Millis(200);
    }
    const sim::Duration latency = (now - arrival) + net;

    report_tail_.Record(now, latency, static_cast<uint64_t>(params_.batch));
    ctl_tail_.Record(now, latency, static_cast<uint64_t>(params_.batch));
    fast_tail_.Record(now, latency, static_cast<uint64_t>(params_.batch));

    if (req.tracked && completion_fn_) completion_fn_(req.tag, latency);

    TryDispatch();
}

double
LcApp::DataFootprintMb(const LcParams& params, double load)
{
    const CacheProfile& c = params.cache;
    load = std::clamp(load, 0.0, 1.2);
    return c.data_base_mb +
           c.data_slope_mb * std::pow(load, c.footprint_load_exp);
}

std::pair<double, double>
LcApp::CacheFactorsFor(const LcParams& params, double load, double eff_mb)
{
    const CacheProfile& c = params.cache;
    const double instr_resident =
        std::clamp(eff_mb / c.instr_mb, 0.0, 1.0);
    const double leftover = std::max(0.0, eff_mb - c.instr_mb);
    const double data_needed =
        std::max(DataFootprintMb(params, load), 0.1);
    const double data_hit = std::clamp(leftover / data_needed, 0.0, 1.0);
    const double instr_pen =
        1.0 + (1.0 - instr_resident) * (c.instr_miss_penalty - 1.0);
    const double data_miss =
        c.mem_miss_ceil - (c.mem_miss_ceil - 1.0) * data_hit;
    return {instr_pen, data_miss};
}

double
LcApp::AnalyticDramGbps(const LcParams& params, const hw::MachineConfig& cfg,
                        double load, double eff_mb)
{
    load = std::clamp(load, 0.0, 1.2);
    const double warm = cfg.TotalDramGbps() * params.peak_dram_frac *
                        std::pow(load, params.bw_load_exp);
    const auto [ip, data_miss] = CacheFactorsFor(params, load, eff_mb);
    (void)ip;
    return warm * data_miss;
}

std::pair<double, double>
LcApp::CacheFactors(double eff_mb) const
{
    return CacheFactorsFor(params_, LoadFraction(), eff_mb);
}

double
LcApp::CurrentDataFootprintMb() const
{
    return DataFootprintMb(params_, LoadFraction());
}

sim::Duration
LcApp::SampleServiceTime(bool ht_shared)
{
    const hw::TaskView& view = machine_.ViewOf(this);
    const hw::MachineConfig& cfg = machine_.config();

    // Cache factors: cpu-weighted mean over the sockets we occupy. A
    // pure function of the resolved cache shares (machine demand
    // generation), our cpuset (allocation version) and the smoothed load
    // (exact ewma value) — all of which change orders of magnitude less
    // often than requests arrive, so the aggregation is memoized on that
    // key instead of recomputed per request.
    const uint64_t gen = machine_.demand_generation();
    if (!factors_valid_ || factors_gen_ != gen ||
        factors_alloc_ != alloc_version_ || factors_qps_ != qps_ewma_) {
        const auto& topo = machine_.topology();
        const hw::CpuSet& cpus = machine_.CpusOf(this);
        double ipen = 1.0, dmiss = 1.0;
        if (!cpus.Empty()) {
            ipen = 0.0;
            dmiss = 0.0;
            for (int s = 0; s < cfg.sockets; ++s) {
                const int here = topo.OnSocket(cpus, s).Count();
                if (here == 0) continue;
                const double w = static_cast<double>(here) / cpus.Count();
                const auto [ip, dm] = CacheFactors(view.llc_mb[s]);
                ipen += w * ip;
                dmiss += w * dm;
            }
        }
        factors_instr_pen_ = ipen;
        factors_data_miss_ = dmiss;
        factors_gen_ = gen;
        factors_alloc_ = alloc_version_;
        factors_qps_ = qps_ewma_;
        factors_valid_ = true;
    }
    const double instr_pen = factors_instr_pen_;
    const double data_miss = factors_data_miss_;

    const double base = rng_.LogNormalWithMean(
        static_cast<double>(params_.mean_service), params_.service_sigma);

    const double freq =
        view.freq_ghz > 0.0 ? view.freq_ghz : cfg.nominal_ghz;
    double compute = base * (1.0 - params_.mem_frac);
    compute *= cfg.nominal_ghz / freq;
    compute *= view.ht_penalty;
    if (ht_shared) compute *= params_.ht_self_penalty;
    compute *= instr_pen;

    double mem = base * params_.mem_frac;
    mem *= data_miss;
    mem *= view.dram_stretch;

    return static_cast<sim::Duration>(compute + mem);
}

void
LcApp::UpdateRates()
{
    // The ewmas feed the machine's demand model (LLC footprint/weight,
    // DRAM and NIC demand): flush any pending resolve so it sees the old
    // rates, then mark the demand inputs changed.
    machine_.EnsureResolved();
    constexpr double kAlpha = 0.3;
    qps_ewma_ = (1.0 - kAlpha) * qps_ewma_ +
                kAlpha * static_cast<double>(arrivals_in_sec_);
    served_ewma_ = (1.0 - kAlpha) * served_ewma_ +
                   kAlpha * static_cast<double>(completions_in_sec_);
    arrivals_in_sec_ = 0;
    completions_in_sec_ = 0;
    machine_.MarkDemandDirty();

    const sim::SimTime now = machine_.queue().Now();
    report_tail_.MaybeRoll(now);
    ctl_tail_.MaybeRoll(now);
    fast_tail_.MaybeRoll(now);
}

void
LcApp::AccumulateBusy()
{
    const sim::SimTime now = machine_.queue().Now();
    busy_integral_ += static_cast<double>(busy_) *
                      static_cast<double>(now - busy_last_change_);
    busy_last_change_ = now;
}

double
LcApp::CpuBusyFraction() const
{
    const sim::SimTime now = machine_.queue().Now();
    const_cast<LcApp*>(this)->AccumulateBusy();
    const sim::SimTime span = now - busy_last_query_;
    double util;
    if (span <= 0 || capacity_ == 0) {
        util = capacity_ > 0
                   ? std::min(1.0, static_cast<double>(busy_) / capacity_)
                   : 0.0;
    } else {
        util = busy_integral_ /
               (static_cast<double>(span) * std::max(capacity_, 1));
        util = std::clamp(util, 0.0, 1.0);
    }
    busy_last_query_ = now;
    busy_integral_ = 0.0;
    return util;
}

double
LcApp::LlcFootprintMb(int socket) const
{
    const hw::CpuSet& cpus = machine_.CpusOf(this);
    if (machine_.topology().OnSocket(cpus, socket).Empty()) return 0.0;
    return params_.cache.instr_mb + CurrentDataFootprintMb();
}

double
LcApp::LlcAccessWeight(int socket) const
{
    const hw::CpuSet& cpus = machine_.CpusOf(this);
    if (machine_.topology().OnSocket(cpus, socket).Empty()) return 0.0;
    // Access pressure grows with request rate; a small floor keeps some
    // residency at idle.
    return params_.access_weight_scale *
           std::max(0.03, std::min(ServedFraction(), 1.2));
}

double
LcApp::DramDemandGbps(int socket, double effective_llc_mb) const
{
    const hw::CpuSet& cpus = machine_.CpusOf(this);
    const auto& topo = machine_.topology();
    const int here = topo.OnSocket(cpus, socket).Count();
    if (here == 0 || cpus.Empty()) return 0.0;

    // Demand follows the served request rate (an overloaded service
    // cannot demand bandwidth for requests it is not processing). Cache
    // starvation converts hits into extra DRAM traffic.
    const double load = std::clamp(ServedFraction(), 0.0, 1.2);
    const double socket_share =
        static_cast<double>(here) / cpus.Count();
    return AnalyticDramGbps(params_, machine_.config(), load,
                            effective_llc_mb) *
           socket_share;
}

double
LcApp::NetTxDemandGbps() const
{
    return served_ewma_ * params_.resp_bytes * 8.0 / 1e9;
}

sim::Duration
LcApp::CtlTailLatency() const
{
    // Roll on read so a poll landing exactly on a window boundary (or
    // during a total-starvation episode) still sees the freshest window.
    ctl_tail_.MaybeRoll(machine_.queue().Now());
    return ctl_tail_.LastWindowTail();
}

sim::Duration
LcApp::FastTailLatency() const
{
    fast_tail_.MaybeRoll(machine_.queue().Now());
    return fast_tail_.LastWindowTail();
}

sim::Duration
LcApp::WorstReportTail() const
{
    // Include the in-progress window so short measurement phases (or an
    // overload at the very end of a run) are never missed.
    return report_tail_.WorstObservedTail();
}

sim::Duration
LcApp::LastReportTail() const
{
    return report_tail_.LastWindowTail();
}

sim::Duration
LcApp::OverallPercentile(double p) const
{
    return report_tail_.OverallPercentile(p);
}

void
LcApp::SetSloLatency(sim::Duration slo)
{
    HERACLES_CHECK(slo > 0);
    params_.slo_latency = slo;
}

void
LcApp::ResetStats()
{
    report_tail_ = sim::WindowedTailTracker(params_.report_window,
                                            params_.slo_percentile);
    ctl_tail_ = sim::WindowedTailTracker(params_.ctl_window,
                                         params_.slo_percentile);
    fast_tail_ = sim::WindowedTailTracker(params_.fast_window,
                                          params_.slo_percentile);
    // Window boundaries are phase-locked to t=0; fast-forward to now.
    const sim::SimTime now = machine_.queue().Now();
    report_tail_.MaybeRoll(now);
    ctl_tail_.MaybeRoll(now);
    fast_tail_.MaybeRoll(now);
}

int
LcApp::MinPhysCoresForLoad(double load, double util) const
{
    HERACLES_CHECK(util > 0.0 && util <= 1.0);
    const double demand_threads =
        load * params_.peak_qps *
        sim::ToSeconds(params_.mean_service);
    const double per_core =
        machine_.config().threads_per_core / params_.ht_self_penalty;
    const int cores = static_cast<int>(
        std::ceil(demand_threads / (per_core * util)));
    return std::clamp(cores, 1, machine_.config().TotalCores());
}

}  // namespace heracles::workloads
