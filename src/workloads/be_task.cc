#include "workloads/be_task.h"

#include <algorithm>

namespace heracles::workloads {

BeTask::BeTask(hw::Machine& machine, const BeProfile& profile)
    : machine_(machine), profile_(profile)
{
    machine_.AddClient(this);
    accounting_start_ = machine_.queue().Now();
    last_accrue_ = accounting_start_;
    accrue_event_ = machine_.queue().SchedulePeriodic(
        sim::Millis(100), sim::Millis(100), [this] { Accrue(); });
}

BeTask::~BeTask()
{
    machine_.queue().Cancel(accrue_event_);
    machine_.RemoveClient(this);
}

void
BeTask::SetCpus(const hw::CpuSet& cpus)
{
    Accrue();  // close the accounting period at the old allocation
    machine_.AssignCpus(this, cpus);
}

void
BeTask::SetDemandScale(double scale)
{
    Accrue();  // close the accounting period at the old demand
    // A resolve requested earlier this instant must still see the old
    // demand scale; flush it before the change, then request a resolve
    // so the phase change lands this instant, not at the next 25 ms
    // contention epoch. Same-instant demand changes coalesce into one.
    machine_.EnsureResolved();
    demand_scale_ = scale;
    machine_.MarkDemandDirty();
    machine_.RequestResolve();
}

int
BeTask::CoresOn(int socket) const
{
    const hw::CpuSet here =
        machine_.topology().OnSocket(machine_.CpusOf(this), socket);
    return machine_.topology().PhysicalCoreCount(here);
}

double
BeTask::CpuBusyFraction() const
{
    return machine_.CpusOf(this).Empty() ? 0.0 : 1.0;
}

double
BeTask::LlcFootprintMb(int socket) const
{
    return CoresOn(socket) > 0 ? demand_scale_ * profile_.footprint_mb
                               : 0.0;
}

double
BeTask::LlcAccessWeight(int socket) const
{
    return demand_scale_ * profile_.weight_per_core * CoresOn(socket);
}

double
BeTask::MissFraction(int socket, double effective_llc_mb) const
{
    (void)socket;
    const double footprint = demand_scale_ * profile_.footprint_mb;
    if (footprint <= 0.0) return 1.0;
    const double hit =
        std::clamp(effective_llc_mb / footprint, 0.0, 1.0);
    return 1.0 - hit;
}

double
BeTask::DramDemandGbps(int socket, double effective_llc_mb) const
{
    const int cores = CoresOn(socket);
    if (cores == 0) return 0.0;
    const double miss = MissFraction(socket, effective_llc_mb);
    return cores * demand_scale_ * profile_.dram_per_core_gbps *
           (profile_.dram_compulsory_frac +
            (1.0 - profile_.dram_compulsory_frac) * miss);
}

double
BeTask::NetTxDemandGbps() const
{
    return machine_.CpusOf(this).Empty()
               ? 0.0
               : demand_scale_ * profile_.net_demand_gbps;
}

double
BeTask::CurrentRate() const
{
    const hw::CpuSet& cpus = machine_.CpusOf(this);
    if (cpus.Empty()) return 0.0;
    const hw::TaskView& view = machine_.ViewOf(this);
    const hw::MachineConfig& cfg = machine_.config();

    if (profile_.network_bound) return view.net_granted_gbps;
    if (profile_.memory_bound) return view.TotalDramGrantedGbps();

    double rate = 0.0;
    for (int s = 0; s < cfg.sockets; ++s) {
        const int cores = CoresOn(s);
        if (cores == 0) continue;
        double r = static_cast<double>(cores);
        // Frequency sensitivity.
        const double fr = view.freq_ghz > 0.0
                              ? view.freq_ghz / cfg.nominal_ghz
                              : 1.0;
        r *= std::pow(fr, profile_.freq_sensitivity);
        // Cache sensitivity.
        const double hit = 1.0 - MissFraction(s, view.llc_mb[s]);
        r *= profile_.cache_rate_floor +
             (1.0 - profile_.cache_rate_floor) * hit;
        // Bandwidth starvation: if we wanted more DRAM bandwidth than we
        // were granted, throughput scales with the shortfall.
        const double demand = view.dram_demand_gbps[s];
        if (demand > 1e-9) {
            r *= std::min(1.0, view.dram_granted_gbps[s] / demand);
        }
        rate += r;
    }
    return rate;
}

void
BeTask::Accrue()
{
    const sim::SimTime now = machine_.queue().Now();
    if (now > last_accrue_) {
        work_ += CurrentRate() * sim::ToSeconds(now - last_accrue_);
        last_accrue_ = now;
    }
}

double
BeTask::AvgRate() const
{
    const_cast<BeTask*>(this)->Accrue();
    const sim::SimTime now = machine_.queue().Now();
    const double elapsed = sim::ToSeconds(now - accounting_start_);
    return elapsed > 0.0 ? work_ / elapsed : 0.0;
}

void
BeTask::ResetThroughput()
{
    Accrue();
    work_ = 0.0;
    accounting_start_ = machine_.queue().Now();
    last_accrue_ = accounting_start_;
}

double
MeasureAloneRate(const hw::MachineConfig& cfg, const BeProfile& profile)
{
    sim::EventQueue queue;
    hw::Machine machine(cfg, queue);
    BeTask task(machine, profile);
    task.SetCpus(hw::CpuSet::Range(0, cfg.LogicalCpus()));
    machine.ResolveNow();
    task.ResetThroughput();
    queue.RunFor(sim::Seconds(2));
    const double rate = task.AvgRate();
    return rate > 1e-9 ? rate : 1.0;
}

}  // namespace heracles::workloads
