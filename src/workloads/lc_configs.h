/**
 * @file
 * Parameterizations of the paper's three production LC workloads.
 *
 * The constants encode the characterization facts from Section 3.1:
 *
 *  - websearch: 99%-ile SLO in the tens of milliseconds; compute
 *    intensive; ~40% of DRAM bandwidth at 100% load; small but hot
 *    instruction working set (the inclusive-LLC eviction effect); low
 *    network bandwidth.
 *  - ml_cluster: 95%-ile SLO in the tens of milliseconds; slightly less
 *    compute intensive; ~60% DRAM bandwidth at peak with *super-linear*
 *    growth versus load (per-request working sets add up); low network.
 *  - memkeyval: 99%-ile SLO in the hundreds of microseconds; very high
 *    request rate; network bandwidth limited at peak; ~20% DRAM
 *    bandwidth; sensitive to everything.
 *
 * Absolute rates are scaled so full sweeps simulate in minutes (see
 * DESIGN.md); SLOs, service times and the controller's time constants are
 * real (simulated) units.
 */
#ifndef HERACLES_WORKLOADS_LC_CONFIGS_H
#define HERACLES_WORKLOADS_LC_CONFIGS_H

#include "workloads/lc_app.h"

namespace heracles::workloads {

/** Query-serving leaf of a production web search service. */
LcParams Websearch();

/** Real-time text-clustering service (machine-learned model in DRAM). */
LcParams MlCluster();

/** In-memory key-value store (memcached-like caching service). */
LcParams Memkeyval();

/** All three, for parameterized tests and sweeps. */
std::vector<LcParams> AllLcWorkloads();

/**
 * Scales a workload's time constants (windows only, not SLO/service) by
 * @p factor — used by fast test configurations.
 */
LcParams WithWindows(LcParams p, sim::Duration report_window,
                     sim::Duration ctl_window);

}  // namespace heracles::workloads

#endif  // HERACLES_WORKLOADS_LC_CONFIGS_H
