#include "workloads/antagonists.h"

#include "sim/log.h"

namespace heracles::workloads {
namespace {

BeProfile
StreamOfSize(const std::string& name, double footprint_mb)
{
    BeProfile p;
    p.name = name;
    p.footprint_mb = footprint_mb;
    // Streaming pressure: weight grows with footprint and core count.
    p.weight_per_core = footprint_mb * 1.5;
    p.dram_per_core_gbps = 6.0;
    p.dram_compulsory_frac = 0.05;
    p.power_intensity = 0.9;
    p.ht_aggression = 1.35;
    p.cache_rate_floor = 0.4;  // it runs faster when its array fits
    p.freq_sensitivity = 0.3;  // mostly memory bound
    return p;
}

}  // namespace

BeProfile
Spinloop()
{
    BeProfile p;
    p.name = "spinloop";
    p.power_intensity = 0.6;
    // Competes only for instruction issue bandwidth: the smallest
    // possible HT antagonist.
    p.ht_aggression = 1.12;
    p.freq_sensitivity = 1.0;
    return p;
}

BeProfile
StreamLlcSmall(const hw::MachineConfig& cfg)
{
    return StreamOfSize("stream-llc-small", 0.25 * cfg.llc_mb_per_socket);
}

BeProfile
StreamLlcMedium(const hw::MachineConfig& cfg)
{
    return StreamOfSize("stream-llc", 0.5 * cfg.llc_mb_per_socket);
}

BeProfile
StreamLlcBig(const hw::MachineConfig& cfg)
{
    return StreamOfSize("stream-llc-big", 0.96 * cfg.llc_mb_per_socket);
}

BeProfile
StreamDram()
{
    BeProfile p = StreamOfSize("stream-dram", 1024.0);
    p.dram_per_core_gbps = 6.5;
    p.ht_aggression = 1.4;
    p.memory_bound = true;
    return p;
}

BeProfile
CpuPowerVirus()
{
    BeProfile p;
    p.name = "cpu_pwr";
    p.footprint_mb = 0.5;
    p.power_intensity = 2.1;
    p.ht_aggression = 1.5;
    p.freq_sensitivity = 1.0;
    return p;
}

BeProfile
Iperf()
{
    BeProfile p;
    p.name = "iperf";
    p.net_demand_gbps = 20.0;  // "as much as the link allows"
    p.power_intensity = 0.5;
    p.ht_aggression = 1.1;
    p.network_bound = true;
    return p;
}

BeProfile
Brain()
{
    BeProfile p;
    p.name = "brain";
    p.footprint_mb = 24.0;
    p.weight_per_core = 24.0 * 1.2;
    p.dram_per_core_gbps = 2.2;
    p.dram_compulsory_frac = 0.40;  // high bandwidth even when cached
    p.power_intensity = 1.25;       // very computationally intensive
    p.ht_aggression = 1.5;
    p.cache_rate_floor = 0.55;      // sensitive to LLC size
    p.freq_sensitivity = 1.0;
    return p;
}

BeProfile
Streetview()
{
    BeProfile p;
    p.name = "streetview";
    p.footprint_mb = 4.0;
    p.weight_per_core = 4.0;
    p.dram_per_core_gbps = 8.0;  // highly demanding on DRAM
    p.dram_compulsory_frac = 0.85;
    p.power_intensity = 0.85;
    p.ht_aggression = 1.35;
    p.memory_bound = true;
    return p;
}

std::vector<BeProfile>
EvaluationBeSet(const hw::MachineConfig& cfg)
{
    return {StreamLlcMedium(cfg), StreamDram(), CpuPowerVirus(),
            Brain(),              Streetview(), Iperf()};
}

BeProfile
BeProfileByName(const hw::MachineConfig& cfg, const std::string& name)
{
    if (name == "spinloop") return Spinloop();
    if (name == "stream-llc-small") return StreamLlcSmall(cfg);
    if (name == "stream-llc" || name == "stream-llc-medium") {
        return StreamLlcMedium(cfg);
    }
    if (name == "stream-llc-big") return StreamLlcBig(cfg);
    if (name == "stream-dram") return StreamDram();
    if (name == "cpu_pwr") return CpuPowerVirus();
    if (name == "iperf") return Iperf();
    if (name == "brain") return Brain();
    if (name == "streetview") return Streetview();
    HERACLES_FATAL("unknown BE profile: " << name);
}

}  // namespace heracles::workloads
