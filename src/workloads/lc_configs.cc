#include "workloads/lc_configs.h"

namespace heracles::workloads {

LcParams
Websearch()
{
    LcParams p;
    p.name = "websearch";
    p.slo_percentile = 0.99;
    p.slo_latency = sim::Millis(12.5);
    p.peak_qps = 11500.0;
    p.mean_service = sim::Millis(4);
    p.service_sigma = 0.35;
    p.mem_frac = 0.25;

    p.cache.instr_mb = 5.0;
    p.cache.data_base_mb = 10.0;
    p.cache.data_slope_mb = 8.0;
    p.cache.footprint_load_exp = 1.0;
    p.cache.instr_miss_penalty = 2.8;
    p.cache.mem_miss_ceil = 3.0;

    p.peak_dram_frac = 0.40;
    p.bw_load_exp = 1.0;
    p.access_weight_scale = 150.0;

    p.resp_bytes = 8192.0;
    p.power_intensity = 1.0;
    p.ht_self_penalty = 1.4;
    p.ht_aggression = 1.3;
    p.batch = 1;
    return p;
}

LcParams
MlCluster()
{
    LcParams p;
    p.name = "ml_cluster";
    p.slo_percentile = 0.95;
    p.slo_latency = sim::Millis(11);
    p.peak_qps = 9600.0;
    p.mean_service = sim::Millis(5);
    p.service_sigma = 0.30;
    p.mem_frac = 0.35;

    p.cache.instr_mb = 2.0;
    p.cache.data_base_mb = 2.0;
    p.cache.data_slope_mb = 30.0;
    p.cache.footprint_load_exp = 1.3;
    p.cache.instr_miss_penalty = 1.5;
    p.cache.mem_miss_ceil = 2.8;

    p.peak_dram_frac = 0.60;
    p.bw_load_exp = 1.6;
    p.access_weight_scale = 120.0;

    p.resp_bytes = 4096.0;
    p.power_intensity = 0.8;
    p.ht_self_penalty = 1.35;
    p.ht_aggression = 1.25;
    p.batch = 1;
    return p;
}

LcParams
Memkeyval()
{
    LcParams p;
    p.name = "memkeyval";
    p.slo_percentile = 0.99;
    p.slo_latency = sim::Micros(800);
    p.peak_qps = 300000.0;
    p.mean_service = sim::Micros(90);
    p.service_sigma = 0.45;
    p.mem_frac = 0.15;

    p.cache.instr_mb = 3.0;
    p.cache.data_base_mb = 1.0;
    p.cache.data_slope_mb = 14.0;
    p.cache.footprint_load_exp = 1.0;
    p.cache.instr_miss_penalty = 2.2;
    p.cache.mem_miss_ceil = 2.5;

    p.peak_dram_frac = 0.20;
    p.bw_load_exp = 1.0;
    p.access_weight_scale = 110.0;

    // 300 kQPS x 4.1 KB x 8 bits ~ 9.9 Gb/s: network limited at peak.
    p.resp_bytes = 4115.0;
    p.power_intensity = 0.9;
    p.ht_self_penalty = 1.3;
    p.ht_aggression = 1.2;
    // One simulated arrival = a 3-key multi-get batch.
    p.batch = 3;
    return p;
}

std::vector<LcParams>
AllLcWorkloads()
{
    return {Websearch(), MlCluster(), Memkeyval()};
}

LcParams
WithWindows(LcParams p, sim::Duration report_window, sim::Duration ctl_window)
{
    p.report_window = report_window;
    p.ctl_window = ctl_window;
    return p;
}

}  // namespace heracles::workloads
