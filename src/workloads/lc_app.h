/**
 * @file
 * Generic latency-critical service model.
 *
 * An LcApp is an open-loop queueing system: requests arrive as a Poisson
 * process at load * peak_qps, wait in a FIFO queue for one of the task's
 * hardware threads, hold the thread for a sampled service time, and record
 * their sojourn latency (plus network transmit time) in windowed tail
 * trackers. Service times are decomposed into a compute part — stretched
 * by frequency loss, HyperThread sharing and instruction-working-set
 * eviction — and a memory part — stretched by data-working-set eviction
 * and DRAM bandwidth contention. The decomposition parameters for
 * websearch, ml_cluster and memkeyval live in lc_configs.h and encode the
 * characterization facts from Section 3.1 of the paper.
 */
#ifndef HERACLES_WORKLOADS_LC_APP_H
#define HERACLES_WORKLOADS_LC_APP_H

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "hw/machine.h"
#include "sim/random.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace heracles::workloads {

/** Cache behaviour of an LC workload (per socket where it runs). */
struct CacheProfile {
    /** Hot instruction + metadata working set (MB); evicting it inflates
     *  compute time (the inclusive-LLC effect the paper describes for
     *  websearch). */
    double instr_mb = 4.0;
    /** Data footprint at zero load (MB). */
    double data_base_mb = 8.0;
    /** Additional data footprint at full load (MB): outstanding-request
     *  working sets add up (the ml_cluster effect). */
    double data_slope_mb = 10.0;
    /** Footprint grows like load^exp (exp > 1 => super-linear pressure). */
    double footprint_load_exp = 1.0;
    /** Compute-time multiplier when the instruction set is fully evicted. */
    double instr_miss_penalty = 2.5;
    /** Memory-time multiplier when the data set is fully evicted. */
    double mem_miss_ceil = 3.0;
};

/** Full parameterization of a latency-critical workload. */
struct LcParams {
    std::string name = "lc";
    double slo_percentile = 0.99;
    sim::Duration slo_latency = sim::Millis(20);
    double peak_qps = 10000.0;

    /** Mean service time at nominal frequency with a warm cache. */
    sim::Duration mean_service = sim::Millis(4);
    double service_sigma = 0.35;  ///< Log-normal shape.
    /** Fraction of warm-cache service time spent waiting on memory. */
    double mem_frac = 0.25;

    CacheProfile cache;

    /** DRAM bandwidth at 100% load, warm cache, as a fraction of the
     *  machine's total peak (websearch: 0.40, ml_cluster: 0.60,
     *  memkeyval: 0.20 per Section 3.1). */
    double peak_dram_frac = 0.40;
    double bw_load_exp = 1.0;  ///< Bandwidth ~ load^exp (>1: super-linear).

    /** LLC competition weight at full load (CAT-off sharing pressure). */
    double access_weight_scale = 150.0;

    double resp_bytes = 8192.0;
    double req_bytes = 512.0;

    double power_intensity = 1.0;
    /** Service multiplier when both hyperthreads run this same app. */
    double ht_self_penalty = 1.4;
    /** Slowdown inflicted on a different task on the sibling thread. */
    double ht_aggression = 1.3;

    /** Requests represented by one simulated arrival (memkeyval batches
     *  multi-gets); latency samples are recorded per logical request. */
    int batch = 1;

    /** SLO accounting window (the paper uses 60 s) and controller window. */
    sim::Duration report_window = sim::Seconds(60);
    sim::Duration ctl_window = sim::Seconds(15);
    /** Short window for the fast (approximate) tail estimate used to gate
     *  resource-growth decisions between top-level polls. */
    sim::Duration fast_window = sim::Seconds(2);
};

/**
 * The latency-critical service. Registers itself as a ResourceClient on
 * construction and unregisters on destruction.
 */
class LcApp : public hw::ResourceClient
{
  public:
    LcApp(hw::Machine& machine, const LcParams& params, uint64_t seed = 7);
    ~LcApp() override;

    // --- Setup ------------------------------------------------------------

    /** Pins the service to @p cpus (cgroup cpuset). */
    void SetCpus(const hw::CpuSet& cpus);

    /** Drives arrival rate from @p trace (not owned). */
    void SetTrace(const sim::LoadTrace* trace);

    /** Convenience: constant target load fraction. */
    void SetLoad(double load_fraction);

    /** Starts generating arrivals. Call once after setup. */
    void Start();

    /**
     * Marks the app as externally driven: no arrivals are self-generated;
     * callers feed requests via InjectRequest (cluster fan-out mode).
     */
    void StartExternal();

    /**
     * Enqueues one request now, tagged for completion reporting.
     * Only valid after StartExternal().
     */
    void InjectRequest(uint64_t tag);

    /** Invoked as (tag, latency) when an injected request completes. */
    using CompletionFn = std::function<void(uint64_t, sim::Duration)>;
    void SetCompletionCallback(CompletionFn fn) {
        completion_fn_ = std::move(fn);
    }

    /**
     * Injects CFS-style scheduling delays when sharing cpus with another
     * task under OS-only isolation: with probability @p prob a dispatch
     * waits an extra U(lo, hi). Set prob = 0 to disable (default).
     */
    void SetSchedDelayModel(double prob, sim::Duration lo, sim::Duration hi);

    // --- Monitors (what a controller or experiment can read) --------------

    /** Tail latency of the last completed controller window (15 s). */
    sim::Duration CtlTailLatency() const;

    /** Approximate tail over the last completed fast window (~2 s). */
    sim::Duration FastTailLatency() const;

    /** Worst tail over any completed report window (60 s) since reset. */
    sim::Duration WorstReportTail() const;

    /** Tail of the most recent completed report window. */
    sim::Duration LastReportTail() const;

    /**
     * Any percentile over every request completed since the last
     * ResetStats (p in [0,1]) — the scenario harness records p95/p99
     * side by side regardless of the workload's SLO percentile.
     */
    sim::Duration OverallPercentile(double p) const;

    /** Measured arrival rate (QPS), exponentially smoothed over ~3 s. */
    double MeasuredQps() const { return qps_ewma_; }

    /** Measured completion rate (QPS), same smoothing. */
    double ServedQps() const { return served_ewma_; }

    /** Measured load fraction = MeasuredQps / peak_qps. */
    double LoadFraction() const { return qps_ewma_ / params_.peak_qps; }

    /** Served throughput fraction = ServedQps / peak_qps (for EMU). */
    double ServedFraction() const { return served_ewma_ / params_.peak_qps; }

    /** Total requests completed since construction (never reset). */
    uint64_t TotalCompleted() const { return total_completed_; }

    /** Total requests that have arrived since construction. */
    uint64_t TotalArrived() const { return total_arrived_; }

    /** Forgets worst-window statistics (call after warmup). */
    void ResetStats();

    /**
     * Updates the SLO latency target at runtime. Used by the
     * centralized cluster controller (the paper's future work) to set
     * per-leaf tail targets from root-level slack.
     */
    void SetSloLatency(sim::Duration slo);

    const LcParams& params() const { return params_; }
    hw::Machine& machine() { return machine_; }
    size_t QueueDepth() const { return queue_.size(); }
    int BusyThreads() const { return busy_; }

    /**
     * Analytic minimum physical cores needed to serve @p load at target
     * per-thread utilization @p util (used by the characterization rig to
     * pin the LC task to "just enough cores to satisfy its SLO").
     */
    int MinPhysCoresForLoad(double load, double util = 0.65) const;

    /** Data footprint (MB per socket) of @p params at @p load. */
    static double DataFootprintMb(const LcParams& params, double load);

    /**
     * (instruction-miss compute penalty, data-miss memory factor) of
     * @p params at @p load when @p eff_mb of cache is resident.
     */
    static std::pair<double, double> CacheFactorsFor(const LcParams& params,
                                                     double load,
                                                     double eff_mb);

    /**
     * Analytic DRAM bandwidth demand (GB/s, whole machine) of @p params
     * at @p load with @p eff_mb resident cache — the curve an operator
     * profiles offline to build the controller's LcBwModel.
     */
    static double AnalyticDramGbps(const LcParams& params,
                                   const hw::MachineConfig& cfg, double load,
                                   double eff_mb);

    // --- ResourceClient ----------------------------------------------------
    const std::string& name() const override { return params_.name; }
    bool is_lc() const override { return true; }
    double CpuBusyFraction() const override;
    double LlcFootprintMb(int socket) const override;
    double LlcAccessWeight(int socket) const override;
    double DramDemandGbps(int socket, double effective_llc_mb) const override;
    double PowerIntensity() const override { return params_.power_intensity; }
    double NetTxDemandGbps() const override;
    double HtAggression() const override { return params_.ht_aggression; }

  private:
    struct Request {
        sim::SimTime arrival;
        uint64_t tag = 0;
        bool tracked = false;
    };

    void ScheduleNextArrival();
    void OnArrival();
    void TryDispatch();
    void StartService(Request req);
    void OnCompletion(const Request& req);
    /** Completion event for the pooled in-flight request at @p slot. */
    void CompleteInflight(uint32_t slot);
    sim::Duration SampleServiceTime(bool ht_shared);
    double CurrentDataFootprintMb() const;
    /** (instr penalty, data miss factor) for @p eff_mb resident MB. */
    std::pair<double, double> CacheFactors(double eff_mb) const;
    void UpdateRates();  // 1 s periodic bookkeeping
    void AccumulateBusy();

    hw::Machine& machine_;
    LcParams params_;
    sim::Rng rng_;

    const sim::LoadTrace* trace_ = nullptr;
    std::unique_ptr<sim::LoadTrace> owned_trace_;
    bool started_ = false;
    bool external_ = false;
    CompletionFn completion_fn_;

    int capacity_ = 0;       ///< Logical cpus in the cpuset.
    int phys_cores_ = 0;     ///< Physical cores in the cpuset.
    int busy_ = 0;
    std::deque<Request> queue_;

    /**
     * Slab of in-service requests with free-list reuse: a dispatched
     * request parks in a recycled slot and its completion event captures
     * only (this, slot index), so the per-request closure stays within
     * the event pool's inline storage and the app allocates nothing on
     * the request hot path after the first ramp-up. Bounded by the
     * cpuset capacity (at most one in-flight request per busy thread).
     */
    std::vector<Request> inflight_;
    std::vector<uint32_t> inflight_free_;

    mutable sim::WindowedTailTracker report_tail_;
    mutable sim::WindowedTailTracker ctl_tail_;
    mutable sim::WindowedTailTracker fast_tail_;

    // Rate measurement.
    uint64_t arrivals_in_sec_ = 0;
    uint64_t completions_in_sec_ = 0;
    uint64_t total_arrived_ = 0;
    uint64_t total_completed_ = 0;
    double qps_ewma_ = 0.0;
    double served_ewma_ = 0.0;

    // Busy-time integration for CpuBusyFraction.
    mutable double busy_integral_ = 0.0;
    mutable sim::SimTime busy_last_change_ = 0;
    mutable sim::SimTime busy_last_query_ = 0;

    /** Precomputed response wire seconds (constant per machine+params). */
    double wire_s_ = 0.0;

    /**
     * Memoized service-time cache factors (SampleServiceTime): valid
     * while the machine's demand generation, our cpuset allocation
     * version and the load ewma are all unchanged.
     */
    uint64_t alloc_version_ = 0;
    bool factors_valid_ = false;
    uint64_t factors_gen_ = 0;
    uint64_t factors_alloc_ = 0;
    double factors_qps_ = 0.0;
    double factors_instr_pen_ = 1.0;
    double factors_data_miss_ = 1.0;

    // OS-only scheduling-delay injection.
    double sched_delay_prob_ = 0.0;
    sim::Duration sched_delay_lo_ = 0;
    sim::Duration sched_delay_hi_ = 0;

    sim::EventQueue::EventId rate_event_ = 0;
};

}  // namespace heracles::workloads

#endif  // HERACLES_WORKLOADS_LC_APP_H
