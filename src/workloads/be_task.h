/**
 * @file
 * Best-effort tasks and antagonists.
 *
 * A BeTask is a throughput-oriented job described by a demand profile on
 * every shared resource (cache footprint, DRAM bandwidth per core, power
 * intensity, HyperThread aggression, network demand) plus a throughput
 * model used for Effective Machine Utilization accounting. One class
 * covers both the paper's synthetic antagonists (Section 3.2) and its
 * production batch jobs (Section 5.1); they differ only in profile.
 *
 * BE tasks are elastic: Heracles resizes their cpuset at will, and a task
 * with an empty cpuset is effectively paused (consumes nothing, produces
 * nothing) — that is how DisableBE() is realized.
 */
#ifndef HERACLES_WORKLOADS_BE_TASK_H
#define HERACLES_WORKLOADS_BE_TASK_H

#include <string>

#include "hw/machine.h"

namespace heracles::workloads {

/** Demand + throughput profile of a best-effort task. */
struct BeProfile {
    std::string name = "be";

    // --- Demands ------------------------------------------------------------
    /** Cache footprint (MB) on each socket where the task has cores. */
    double footprint_mb = 0.0;
    /** LLC competition weight per core (pressure under shared caching). */
    double weight_per_core = 0.0;
    /** DRAM bandwidth per core when its footprint misses entirely (GB/s). */
    double dram_per_core_gbps = 0.0;
    /** Fraction of DRAM demand present even with a fully-resident
     *  footprint (compulsory/streaming misses). */
    double dram_compulsory_frac = 0.05;
    double power_intensity = 0.9;
    double ht_aggression = 1.35;
    /** Total egress network demand (Gb/s); iperf asks for "everything". */
    double net_demand_gbps = 0.0;

    // --- Throughput model ---------------------------------------------------
    /** Rate factor with zero cache residency (1 = cache-insensitive). */
    double cache_rate_floor = 1.0;
    /** Sensitivity of throughput to core frequency (0 = insensitive). */
    double freq_sensitivity = 1.0;
    /** Memory-bound: throughput tracks granted DRAM bandwidth. */
    bool memory_bound = false;
    /** Network-bound: throughput tracks granted egress bandwidth. */
    bool network_bound = false;

    /** Field-wise equality — keep in sync when adding fields. Clusters
     *  dedupe per-job alone-rate baselines through this (a same-named
     *  profile resolved against a different machine can differ). */
    bool
    operator==(const BeProfile& o) const
    {
        return name == o.name && footprint_mb == o.footprint_mb &&
               weight_per_core == o.weight_per_core &&
               dram_per_core_gbps == o.dram_per_core_gbps &&
               dram_compulsory_frac == o.dram_compulsory_frac &&
               power_intensity == o.power_intensity &&
               ht_aggression == o.ht_aggression &&
               net_demand_gbps == o.net_demand_gbps &&
               cache_rate_floor == o.cache_rate_floor &&
               freq_sensitivity == o.freq_sensitivity &&
               memory_bound == o.memory_bound &&
               network_bound == o.network_bound;
    }
    bool operator!=(const BeProfile& o) const { return !(*this == o); }
};

/** A best-effort task colocated with the LC service. */
class BeTask : public hw::ResourceClient
{
  public:
    BeTask(hw::Machine& machine, const BeProfile& profile);
    ~BeTask() override;

    /** Pins (or resizes) the task; an empty set pauses it. */
    void SetCpus(const hw::CpuSet& cpus);

    /** Accrued work units per second since the last reset. */
    double AvgRate() const;

    /** Instantaneous work units per second at the current allocation. */
    double CurrentRate() const;

    /** Restarts throughput accounting (e.g. after warmup). */
    void ResetThroughput();

    /**
     * Scales the task's demands (cache footprint, access weight, DRAM
     * per core, egress) by @p scale — an abrupt phase change that turns
     * the job into a much heavier (or lighter) antagonist without
     * touching its throughput model or any RNG stream. The chaos
     * layer's antagonist bursts drive this; 1.0 restores the profile.
     */
    void SetDemandScale(double scale);
    double DemandScale() const { return demand_scale_; }

    const BeProfile& profile() const { return profile_; }

    // --- ResourceClient -----------------------------------------------------
    const std::string& name() const override { return profile_.name; }
    bool is_lc() const override { return false; }
    double CpuBusyFraction() const override;
    double LlcFootprintMb(int socket) const override;
    double LlcAccessWeight(int socket) const override;
    double DramDemandGbps(int socket, double effective_llc_mb) const override;
    double PowerIntensity() const override {
        return profile_.power_intensity;
    }
    double NetTxDemandGbps() const override;
    double HtAggression() const override { return profile_.ht_aggression; }

  private:
    void Accrue();
    int CoresOn(int socket) const;
    double MissFraction(int socket, double effective_llc_mb) const;

    hw::Machine& machine_;
    BeProfile profile_;
    double demand_scale_ = 1.0;
    sim::EventQueue::EventId accrue_event_;

    double work_ = 0.0;
    sim::SimTime accounting_start_ = 0;
    sim::SimTime last_accrue_ = 0;
};

/**
 * Measures the task's throughput running *alone* on the whole machine
 * (every core, full cache, unshaped network) for normalization. Runs a
 * short standalone simulation with a fresh machine of the same
 * configuration.
 */
double MeasureAloneRate(const hw::MachineConfig& cfg,
                        const BeProfile& profile);

}  // namespace heracles::workloads

#endif  // HERACLES_WORKLOADS_BE_TASK_H
