/**
 * @file
 * Profiles for the paper's antagonists (Section 3.2) and production
 * best-effort workloads (Section 5.1).
 */
#ifndef HERACLES_WORKLOADS_ANTAGONISTS_H
#define HERACLES_WORKLOADS_ANTAGONISTS_H

#include <string>
#include <vector>

#include "hw/config.h"
#include "workloads/be_task.h"

namespace heracles::workloads {

/** Tight spinloop on HyperThread siblings: the *lower bound* of HT
 *  interference (registers only, no cache or memory traffic). */
BeProfile Spinloop();

/** Streams through an array sized to a quarter of the LLC. */
BeProfile StreamLlcSmall(const hw::MachineConfig& cfg);

/** Streams through an array sized to half of the LLC ("stream-LLC"). */
BeProfile StreamLlcMedium(const hw::MachineConfig& cfg);

/** Streams through an array sized to nearly the whole LLC. */
BeProfile StreamLlcBig(const hw::MachineConfig& cfg);

/** Streams through a far-larger-than-LLC array ("stream-DRAM"). */
BeProfile StreamDram();

/** CPU power virus: maximizes per-core activity and power draw. */
BeProfile CpuPowerVirus();

/** iperf: many low-bandwidth "mice" flows saturating the egress link. */
BeProfile Iperf();

/** Deep-learning batch job (compute heavy, cache and bandwidth hungry). */
BeProfile Brain();

/** Street View panorama stitching (DRAM-bandwidth bound). */
BeProfile Streetview();

/** The BE set used in the paper's Heracles evaluation (Section 5.1). */
std::vector<BeProfile> EvaluationBeSet(const hw::MachineConfig& cfg);

/** Profile by name ("brain", "stream-dram", ...); aborts if unknown. */
BeProfile BeProfileByName(const hw::MachineConfig& cfg,
                          const std::string& name);

}  // namespace heracles::workloads

#endif  // HERACLES_WORKLOADS_ANTAGONISTS_H
