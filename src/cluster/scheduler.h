/**
 * @file
 * Cluster-level best-effort scheduler.
 *
 * The per-node Heracles controller answers "how much BE can *this*
 * server run right now"; the cluster scheduler answers the layer-above
 * question in the spirit of Paragon/Quasar: *which* servers should host
 * the BE jobs at all. It maintains a queue of cluster-wide BE jobs and
 * a job → leaf assignment, and on every period re-evaluates it against
 * the latency slack each leaf's controller exports:
 *
 *  - kStaticSplit — the paper's behavior: jobs are pinned to leaves at
 *    assembly (job j on leaf j) and never move. No scheduler events are
 *    even scheduled, so a static cluster is byte-identical to the
 *    pre-scheduler implementation.
 *  - kGreedySlack — place each queued job on the free leaf with the
 *    most slack; migrate a job away when its leaf stops running BE or
 *    its slack collapses, to the best free leaf (with hysteresis).
 *  - kRoundRobin — the slack-blind ablation: place and re-place jobs
 *    in leaf-index rotation, migrating only when the hosting leaf has
 *    BE disabled. Identical mechanics, no slack signal.
 *  - kPredictive — Bubble-Up/Paragon-style interference prediction:
 *    place each queued job on the leaf with the lowest *predicted*
 *    tail fraction for that (job, leaf) pair, from an offline
 *    fingerprint table (cluster/fingerprint.h) supplied at assembly via
 *    SetPredictions. Live slack is only a safety veto (a leaf below the
 *    placement floor is excluded), never the ranking signal — so the
 *    policy keeps choosing well when telemetry is frozen or a crash
 *    invalidates history. SchedulerConfig::predict_only turns it into
 *    the CPI2-style monitoring ablation: the engine *acts* greedy but
 *    counts every decision where the predictive ranking disagreed.
 *
 * The decision engine is a pure function of its inputs (no RNG, no
 * clock), so placements are deterministic under a fixed seed and unit
 * testable without running a simulation.
 */
#ifndef HERACLES_CLUSTER_SCHEDULER_H
#define HERACLES_CLUSTER_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace heracles::cluster {

/** Cluster-level BE placement policy. */
enum class SchedulerPolicy {
    kStaticSplit,  ///< Jobs pinned at assembly (the paper; default).
    kGreedySlack,  ///< Most-slack-first placement + slack migration.
    kRoundRobin,   ///< Slack-blind rotation (ablation).
    kPredictive,   ///< Fingerprint-predicted tail, slack as veto only.
};

/** Human-readable policy name ("static-split", "greedy-slack", ...). */
std::string SchedulerPolicyName(SchedulerPolicy p);

/** Tunables of the cluster scheduler. */
struct SchedulerConfig {
    SchedulerPolicy policy = SchedulerPolicy::kStaticSplit;

    /** Re-evaluation period (two top-level controller polls). */
    sim::Duration period = sim::Seconds(30);

    /** Greedy never places a job on a leaf with less slack than this. */
    double place_min_slack = 0.10;
    /** Greedy considers migrating a job away below this source slack. */
    double migrate_low_slack = 0.05;
    /** A slack-triggered migration needs the destination to beat the
     *  source by at least this much (hysteresis against ping-pong). */
    double migrate_min_gain = 0.10;
    /** Ticks a job must stay on a leaf before it may migrate again —
     *  the hosting controller needs at least one top-level poll to
     *  enable the job at all. */
    int min_resident_ticks = 2;

    /**
     * A predictive migration needs the destination's predicted tail
     * fraction to beat the source's by at least this much (the
     * prediction-space analogue of migrate_min_gain). An eviction
     * (source leaf starving the job) waives the margin but not the
     * direction: even a starved job only moves to a leaf predicted
     * strictly better than the one it is leaving — panic-hopping onto
     * a worse-fingerprint machine trades zero throughput now for zero
     * throughput plus churn.
     */
    double predict_min_gain = 0.05;

    /**
     * Predictive placement refuses leaves predicted worse than this
     * factor times the job's best predicted leaf anywhere in the pod
     * (crashed or busy leaves included in the reference): when every
     * machine left standing is a predicted-terrible host, holding the
     * job queued until a sane one frees up beats feeding it to a leaf
     * whose controller will starve it on arrival. Greedy has no such
     * notion and will chase any roomy-looking export — which is
     * exactly what the stale-telemetry chaos scenarios punish.
     */
    double predict_place_tolerance = 1.6;

    /**
     * CPI2-style monitoring-only ablation (kPredictive only): the
     * engine decides and acts exactly like kGreedySlack, but computes
     * the predictive choice alongside every acted decision and counts
     * the disagreements in SchedulerStats::would_placements /
     * would_migrations — the "what would prediction have done"
     * counters, with zero effect on placement.
     */
    bool predict_only = false;
};

/** Placement activity counters (surfaced into ClusterResult). */
struct SchedulerStats {
    uint64_t ticks = 0;
    uint64_t placements = 0;  ///< Queue → leaf assignments.
    uint64_t migrations = 0;  ///< Leaf → leaf moves.
    /** predict_only: acted decisions the predictive ranking disputed. */
    uint64_t would_placements = 0;
    uint64_t would_migrations = 0;
};

/**
 * The decision engine. The cluster simulation feeds it one LeafState
 * per leaf each period and executes the moves it returns; the engine
 * owns the job → leaf assignment and the counters.
 */
class ClusterScheduler
{
  public:
    /** Per-leaf inputs, read from the leaf's Heracles controller. */
    struct LeafState {
        bool hosts_job = false;  ///< A job is currently assigned here.
        /** Latest top-level latency slack (1.0 before any signal). */
        double slack = 1.0;
        bool be_enabled = false;  ///< Controller currently runs BE.
        bool in_cooldown = false;  ///< Post-violation LC-only window.
        bool has_signal = false;  ///< At least one poll saw latency data.
        /** Leaf is down (chaos layer): never a placement target. */
        bool crashed = false;
    };

    /** One placement (from == -1) or migration (from >= 0). */
    struct Move {
        int job = 0;
        int from = -1;
        int to = 0;
    };

    ClusterScheduler(const SchedulerConfig& cfg, int jobs, int leaves);

    /**
     * Installs the offline prediction table for kPredictive (and the
     * predict_only ablation): predicted[job][leaf] is the tail fraction
     * the fingerprint model expects if @c job ran on @c leaf
     * (cluster/fingerprint.h). Required before the first Tick of a
     * predictive scheduler; dimensions must match (jobs, leaves).
     */
    void SetPredictions(std::vector<std::vector<double>> predicted);

    /**
     * One scheduling period: decides placements for still-queued jobs
     * and migrations for placed ones. @p leaves must have one entry per
     * leaf, index-aligned with the cluster's leaf vector. The returned
     * moves are already applied to the internal assignment.
     */
    std::vector<Move> Tick(const std::vector<LeafState>& leaves);

    /** Leaf currently hosting @p job, or -1 while queued. */
    int LeafOf(int job) const;

    /**
     * Returns @p job to the queue without a Move (its leaf crashed and
     * the job died with it); the next Tick re-places it on a live leaf.
     */
    void ReleaseJob(int job);

    /** Jobs still waiting for a leaf. */
    int QueuedJobs() const;

    const SchedulerStats& stats() const { return stats_; }
    const SchedulerConfig& config() const { return cfg_; }

  private:
    /** Best placement target for @p job among free leaves under the
     *  *acting* policy (greedy rules when predict_only), or -1. */
    int PickLeaf(int job, const std::vector<LeafState>& leaves,
                 const std::vector<bool>& taken) const;

    /** Free, live leaf with the lowest predicted tail for @p job that
     *  clears the live-slack safety veto, or -1. */
    int PickPredicted(int job, const std::vector<LeafState>& leaves,
                      const std::vector<bool>& taken) const;

    /** True when kPredictive actually ranks (not monitoring-only). */
    bool PredictsActively() const;

    SchedulerConfig cfg_;
    std::vector<int> assignment_;      ///< job -> leaf (-1 = queued).
    std::vector<int> resident_ticks_;  ///< Ticks since job last moved.
    /** predicted_[job][leaf]: offline fingerprint tail prediction. */
    std::vector<std::vector<double>> predicted_;
    int rr_cursor_ = 0;
    SchedulerStats stats_;
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_SCHEDULER_H
