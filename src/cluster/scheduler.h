/**
 * @file
 * Cluster-level best-effort scheduler.
 *
 * The per-node Heracles controller answers "how much BE can *this*
 * server run right now"; the cluster scheduler answers the layer-above
 * question in the spirit of Paragon/Quasar: *which* servers should host
 * the BE jobs at all. It maintains a queue of cluster-wide BE jobs and
 * a job → leaf assignment, and on every period re-evaluates it against
 * the latency slack each leaf's controller exports:
 *
 *  - kStaticSplit — the paper's behavior: jobs are pinned to leaves at
 *    assembly (job j on leaf j) and never move. No scheduler events are
 *    even scheduled, so a static cluster is byte-identical to the
 *    pre-scheduler implementation.
 *  - kGreedySlack — place each queued job on the free leaf with the
 *    most slack; migrate a job away when its leaf stops running BE or
 *    its slack collapses, to the best free leaf (with hysteresis).
 *  - kRoundRobin — the slack-blind ablation: place and re-place jobs
 *    in leaf-index rotation, migrating only when the hosting leaf has
 *    BE disabled. Identical mechanics, no slack signal.
 *
 * The decision engine is a pure function of its inputs (no RNG, no
 * clock), so placements are deterministic under a fixed seed and unit
 * testable without running a simulation.
 */
#ifndef HERACLES_CLUSTER_SCHEDULER_H
#define HERACLES_CLUSTER_SCHEDULER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace heracles::cluster {

/** Cluster-level BE placement policy. */
enum class SchedulerPolicy {
    kStaticSplit,  ///< Jobs pinned at assembly (the paper; default).
    kGreedySlack,  ///< Most-slack-first placement + slack migration.
    kRoundRobin,   ///< Slack-blind rotation (ablation).
};

/** Human-readable policy name ("static-split", "greedy-slack", ...). */
std::string SchedulerPolicyName(SchedulerPolicy p);

/** Tunables of the cluster scheduler. */
struct SchedulerConfig {
    SchedulerPolicy policy = SchedulerPolicy::kStaticSplit;

    /** Re-evaluation period (two top-level controller polls). */
    sim::Duration period = sim::Seconds(30);

    /** Greedy never places a job on a leaf with less slack than this. */
    double place_min_slack = 0.10;
    /** Greedy considers migrating a job away below this source slack. */
    double migrate_low_slack = 0.05;
    /** A slack-triggered migration needs the destination to beat the
     *  source by at least this much (hysteresis against ping-pong). */
    double migrate_min_gain = 0.10;
    /** Ticks a job must stay on a leaf before it may migrate again —
     *  the hosting controller needs at least one top-level poll to
     *  enable the job at all. */
    int min_resident_ticks = 2;
};

/** Placement activity counters (surfaced into ClusterResult). */
struct SchedulerStats {
    uint64_t ticks = 0;
    uint64_t placements = 0;  ///< Queue → leaf assignments.
    uint64_t migrations = 0;  ///< Leaf → leaf moves.
};

/**
 * The decision engine. The cluster simulation feeds it one LeafState
 * per leaf each period and executes the moves it returns; the engine
 * owns the job → leaf assignment and the counters.
 */
class ClusterScheduler
{
  public:
    /** Per-leaf inputs, read from the leaf's Heracles controller. */
    struct LeafState {
        bool hosts_job = false;  ///< A job is currently assigned here.
        /** Latest top-level latency slack (1.0 before any signal). */
        double slack = 1.0;
        bool be_enabled = false;  ///< Controller currently runs BE.
        bool in_cooldown = false;  ///< Post-violation LC-only window.
        bool has_signal = false;  ///< At least one poll saw latency data.
        /** Leaf is down (chaos layer): never a placement target. */
        bool crashed = false;
    };

    /** One placement (from == -1) or migration (from >= 0). */
    struct Move {
        int job = 0;
        int from = -1;
        int to = 0;
    };

    ClusterScheduler(const SchedulerConfig& cfg, int jobs, int leaves);

    /**
     * One scheduling period: decides placements for still-queued jobs
     * and migrations for placed ones. @p leaves must have one entry per
     * leaf, index-aligned with the cluster's leaf vector. The returned
     * moves are already applied to the internal assignment.
     */
    std::vector<Move> Tick(const std::vector<LeafState>& leaves);

    /** Leaf currently hosting @p job, or -1 while queued. */
    int LeafOf(int job) const { return assignment_[job]; }

    /**
     * Returns @p job to the queue without a Move (its leaf crashed and
     * the job died with it); the next Tick re-places it on a live leaf.
     */
    void ReleaseJob(int job);

    /** Jobs still waiting for a leaf. */
    int QueuedJobs() const;

    const SchedulerStats& stats() const { return stats_; }
    const SchedulerConfig& config() const { return cfg_; }

  private:
    /** Best placement target among free leaves, or -1. */
    int PickLeaf(const std::vector<LeafState>& leaves,
                 const std::vector<bool>& taken) const;

    SchedulerConfig cfg_;
    std::vector<int> assignment_;      ///< job -> leaf (-1 = queued).
    std::vector<int> resident_ticks_;  ///< Ticks since job last moved.
    int rr_cursor_ = 0;
    SchedulerStats stats_;
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_SCHEDULER_H
