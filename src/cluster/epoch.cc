#include "cluster/epoch.h"

#include <algorithm>

#include "sim/log.h"

namespace heracles::cluster {

LeafBatching
LeafBatching::Resolve(size_t leaves, int configured)
{
    LeafBatching b;
    b.leaves = leaves;
    if (configured > 0) {
        b.batch_size = std::min<size_t>(
            static_cast<size_t>(configured), std::max<size_t>(leaves, 1));
    } else {
        b.batch_size = leaves >= 64 ? 8 : 1;
    }
    return b;
}

BarrierClock
BarrierClock::Build(sim::Duration duration, sim::Duration root_window,
                    sim::Duration scheduler_period,
                    const std::vector<chaos::TimedFault>& faults)
{
    HERACLES_CHECK_MSG(duration > 0, "empty cluster run");
    HERACLES_CHECK_MSG(root_window > 0, "root window must be positive");

    BarrierClock clock;
    std::vector<sim::SimTime>& b = clock.barriers;
    for (sim::SimTime t = root_window; t <= duration; t += root_window) {
        b.push_back(t);
    }
    if (scheduler_period > 0) {
        for (sim::SimTime t = scheduler_period; t <= duration;
             t += scheduler_period) {
            b.push_back(t);
        }
    }
    for (const chaos::TimedFault& f : faults) {
        if (f.begin > 0 && f.begin <= duration) b.push_back(f.begin);
        if (f.end > 0 && f.end <= duration) b.push_back(f.end);
    }
    b.push_back(duration);
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    return clock;
}

bool
BarrierClock::IsBarrier(sim::SimTime t) const
{
    return std::binary_search(barriers.begin(), barriers.end(), t);
}

}  // namespace heracles::cluster
