#include "cluster/scheduler.h"

#include <algorithm>

#include "sim/log.h"

namespace heracles::cluster {

std::string
SchedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
      case SchedulerPolicy::kStaticSplit: return "static-split";
      case SchedulerPolicy::kGreedySlack: return "greedy-slack";
      case SchedulerPolicy::kRoundRobin: return "round-robin";
      case SchedulerPolicy::kPredictive: return "predictive";
    }
    return "?";
}

ClusterScheduler::ClusterScheduler(const SchedulerConfig& cfg, int jobs,
                                   int leaves)
    : cfg_(cfg),
      assignment_(static_cast<size_t>(jobs), -1),
      resident_ticks_(static_cast<size_t>(jobs), 0)
{
    HERACLES_CHECK_MSG(leaves > 0, "scheduler needs at least one leaf");
    HERACLES_CHECK_MSG(jobs <= leaves,
                       "more BE jobs (" << jobs << ") than leaves ("
                                        << leaves << ")");
}

void
ClusterScheduler::SetPredictions(
    std::vector<std::vector<double>> predicted)
{
    HERACLES_CHECK_MSG(predicted.size() == assignment_.size(),
                       "prediction table has " << predicted.size()
                                               << " jobs, scheduler owns "
                                               << assignment_.size());
    for (const std::vector<double>& row : predicted) {
        HERACLES_CHECK_MSG(!row.empty() &&
                               row.size() == predicted.front().size(),
                           "ragged prediction table");
    }
    predicted_ = std::move(predicted);
}

int
ClusterScheduler::LeafOf(int job) const
{
    HERACLES_CHECK_MSG(job >= 0 &&
                           job < static_cast<int>(assignment_.size()),
                       "bad job index " << job);
    return assignment_[static_cast<size_t>(job)];
}

void
ClusterScheduler::ReleaseJob(int job)
{
    HERACLES_CHECK_MSG(job >= 0 &&
                           job < static_cast<int>(assignment_.size()),
                       "bad job index " << job);
    assignment_[static_cast<size_t>(job)] = -1;
    resident_ticks_[static_cast<size_t>(job)] = 0;
}

int
ClusterScheduler::QueuedJobs() const
{
    int queued = 0;
    for (int leaf : assignment_) queued += leaf < 0 ? 1 : 0;
    return queued;
}

bool
ClusterScheduler::PredictsActively() const
{
    return cfg_.policy == SchedulerPolicy::kPredictive &&
           !cfg_.predict_only;
}

int
ClusterScheduler::PickPredicted(int job,
                                const std::vector<LeafState>& leaves,
                                const std::vector<bool>& taken) const
{
    // Lowest predicted tail fraction wins; ties break to the lowest
    // index. Live slack is only the safety veto: a leaf already below
    // the placement floor is excluded no matter how well the
    // fingerprints match (prediction ranks, reaction vetoes). The
    // tolerance cap is the inverse veto — prediction refusing a leaf
    // no matter how roomy its exported slack looks: anything predicted
    // far worse than the job's best machine in the pod is a host whose
    // controller will starve the job on arrival, and staying queued
    // costs less than finding that out.
    const std::vector<double>& row =
        predicted_[static_cast<size_t>(job)];
    double pod_best = row[0];
    for (double p : row) pod_best = std::min(pod_best, p);
    const double cap = pod_best * cfg_.predict_place_tolerance;
    int best = -1;
    for (int i = 0; i < static_cast<int>(leaves.size()); ++i) {
        if (taken[i] || leaves[i].in_cooldown || leaves[i].crashed) {
            continue;
        }
        if (leaves[i].slack < cfg_.place_min_slack) continue;
        if (row[i] > cap) continue;
        if (best < 0 || row[i] < row[best]) best = i;
    }
    return best;
}

int
ClusterScheduler::PickLeaf(int job, const std::vector<LeafState>& leaves,
                           const std::vector<bool>& taken) const
{
    const int n = static_cast<int>(leaves.size());
    if (cfg_.policy == SchedulerPolicy::kRoundRobin) {
        // First free, live leaf in rotation order, slack-blind.
        for (int k = 0; k < n; ++k) {
            const int i = (rr_cursor_ + k) % n;
            if (!taken[i] && !leaves[i].in_cooldown &&
                !leaves[i].crashed) {
                return i;
            }
        }
        return -1;
    }
    if (PredictsActively()) return PickPredicted(job, leaves, taken);
    // Greedy (also the *acting* arm of predict_only): the free, live,
    // non-cooldown leaf with the most slack, provided it clears the
    // placement floor. Ties break to the lowest index.
    int best = -1;
    for (int i = 0; i < n; ++i) {
        if (taken[i] || leaves[i].in_cooldown || leaves[i].crashed) {
            continue;
        }
        if (leaves[i].slack < cfg_.place_min_slack) continue;
        if (best < 0 || leaves[i].slack > leaves[best].slack) best = i;
    }
    return best;
}

std::vector<ClusterScheduler::Move>
ClusterScheduler::Tick(const std::vector<LeafState>& leaves)
{
    HERACLES_CHECK_MSG(
        cfg_.policy != SchedulerPolicy::kStaticSplit,
        "static-split placement is fixed at assembly; no ticks");
    if (cfg_.policy == SchedulerPolicy::kPredictive) {
        HERACLES_CHECK_MSG(!predicted_.empty(),
                           "predictive scheduler ticked before "
                           "SetPredictions");
        HERACLES_CHECK_MSG(predicted_.front().size() == leaves.size(),
                           "prediction table covers "
                               << predicted_.front().size()
                               << " leaves, cluster has "
                               << leaves.size());
    }
    const bool monitor =
        cfg_.policy == SchedulerPolicy::kPredictive && cfg_.predict_only;
    ++stats_.ticks;

    std::vector<bool> taken(leaves.size(), false);
    for (size_t i = 0; i < leaves.size(); ++i) {
        taken[i] = leaves[i].hosts_job;
    }

    std::vector<Move> moves;
    const int jobs = static_cast<int>(assignment_.size());
    std::vector<bool> moved_now(static_cast<size_t>(jobs), false);

    // Placements: queued jobs in index order — except under the acting
    // predictive policy, which orders them by descending *regret* (the
    // classic assignment-auction heuristic): the job with the most to
    // lose if its best leaf is taken places first. Sequential
    // index-order picks let an indifferent early job grab the leaf a
    // choosy later job needed, a globally worse matching under the very
    // prediction table the policy trusts. Ties (and jobs with fewer
    // than two eligible leaves) fall back to index order, so the order
    // is deterministic.
    std::vector<int> queued;
    for (int j = 0; j < jobs; ++j) {
        if (assignment_[j] < 0) queued.push_back(j);
    }
    if (PredictsActively() && queued.size() > 1) {
        std::vector<double> regret(static_cast<size_t>(jobs), 0.0);
        for (int j : queued) {
            const std::vector<double>& row =
                predicted_[static_cast<size_t>(j)];
            double best = -1.0, second = -1.0;
            for (int i = 0; i < static_cast<int>(leaves.size()); ++i) {
                if (taken[i] || leaves[i].in_cooldown ||
                    leaves[i].crashed ||
                    leaves[i].slack < cfg_.place_min_slack) {
                    continue;
                }
                if (best < 0 || row[i] < best) {
                    second = best;
                    best = row[i];
                } else if (second < 0 || row[i] < second) {
                    second = row[i];
                }
            }
            regret[static_cast<size_t>(j)] =
                second >= 0 ? second - best : 0.0;
        }
        std::stable_sort(queued.begin(), queued.end(),
                         [&regret](int a, int b) {
                             return regret[static_cast<size_t>(a)] >
                                    regret[static_cast<size_t>(b)];
                         });
    }
    for (int j : queued) {
        const int to = PickLeaf(j, leaves, taken);
        if (monitor && PickPredicted(j, leaves, taken) != to) {
            ++stats_.would_placements;
        }
        if (to < 0) continue;  // no acceptable leaf; stay queued
        assignment_[j] = to;
        resident_ticks_[j] = 0;
        moved_now[j] = true;
        taken[to] = true;
        if (cfg_.policy == SchedulerPolicy::kRoundRobin) {
            rr_cursor_ = (to + 1) % static_cast<int>(leaves.size());
        }
        moves.push_back({j, -1, to});
        ++stats_.placements;
    }

    // Migrations: placed jobs in index order. Jobs placed this tick
    // are settling (their LeafState predates the placement); skip them.
    for (int j = 0; j < jobs; ++j) {
        const int from = assignment_[j];
        if (from < 0 || moved_now[j]) continue;
        if (++resident_ticks_[j] < cfg_.min_resident_ticks) continue;
        const LeafState& src = leaves[static_cast<size_t>(from)];
        if (!src.has_signal) continue;

        // A leaf that refuses to run its job (load safeguard, cooldown,
        // collapsed slack) is a migration trigger; for the slack-aware
        // policies, so is slack below the migrate floor even while BE
        // still runs (the predictive policy keeps that reactive trigger
        // as its safety net — prediction chooses *where*, collapsed
        // slack still decides *when*). The source slot stays marked
        // taken, so PickLeaf never proposes the leaf the job is trying
        // to leave (a load-starved leaf can have plenty of latency
        // slack).
        const bool starved = !src.be_enabled;
        const bool tight =
            cfg_.policy != SchedulerPolicy::kRoundRobin &&
            src.slack < cfg_.migrate_low_slack;
        if (!starved && !tight) continue;

        const int to = PickLeaf(j, leaves, taken);
        bool acceptable;
        if (PredictsActively()) {
            // Hysteresis in prediction space: the destination's
            // predicted tail must beat the source's by the predictive
            // gain margin. An eviction waives the margin, not the
            // direction — a starved job holds its (predicted-better)
            // leaf rather than panic-hop to a machine the fingerprints
            // rank worse, because the starving controller will
            // re-enable it when pressure passes while the worse host
            // never stops being the worse host.
            const double gain =
                to < 0 ? 0.0
                       : predicted_[static_cast<size_t>(j)]
                                   [static_cast<size_t>(from)] -
                             predicted_[static_cast<size_t>(j)]
                                       [static_cast<size_t>(to)];
            acceptable =
                to >= 0 &&
                (starved ? gain > 0.0 : gain > cfg_.predict_min_gain);
        } else {
            acceptable =
                to >= 0 &&
                (cfg_.policy == SchedulerPolicy::kRoundRobin || starved ||
                 leaves[static_cast<size_t>(to)].slack >
                     src.slack + cfg_.migrate_min_gain);
        }
        if (monitor && PickPredicted(j, leaves, taken) !=
                           (acceptable ? to : -1)) {
            ++stats_.would_migrations;
        }
        if (!acceptable) continue;  // keep the job where it is
        assignment_[j] = to;
        resident_ticks_[j] = 0;
        taken[to] = true;
        // The vacated slot stays marked taken for the rest of this
        // tick: the leaf was just proven unwilling (or too tight) to
        // run a job, so handing it to the next migrating job would
        // defeat the very signal that triggered the move. It becomes a
        // candidate again next period.
        if (cfg_.policy == SchedulerPolicy::kRoundRobin) {
            rr_cursor_ = (to + 1) % static_cast<int>(leaves.size());
        }
        moves.push_back({j, from, to});
        ++stats_.migrations;
    }
    return moves;
}

}  // namespace heracles::cluster
