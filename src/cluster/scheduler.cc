#include "cluster/scheduler.h"

#include "sim/log.h"

namespace heracles::cluster {

std::string
SchedulerPolicyName(SchedulerPolicy p)
{
    switch (p) {
      case SchedulerPolicy::kStaticSplit: return "static-split";
      case SchedulerPolicy::kGreedySlack: return "greedy-slack";
      case SchedulerPolicy::kRoundRobin: return "round-robin";
    }
    return "?";
}

ClusterScheduler::ClusterScheduler(const SchedulerConfig& cfg, int jobs,
                                   int leaves)
    : cfg_(cfg),
      assignment_(static_cast<size_t>(jobs), -1),
      resident_ticks_(static_cast<size_t>(jobs), 0)
{
    HERACLES_CHECK_MSG(leaves > 0, "scheduler needs at least one leaf");
    HERACLES_CHECK_MSG(jobs <= leaves,
                       "more BE jobs (" << jobs << ") than leaves ("
                                        << leaves << ")");
}

void
ClusterScheduler::ReleaseJob(int job)
{
    HERACLES_CHECK_MSG(job >= 0 &&
                           job < static_cast<int>(assignment_.size()),
                       "bad job index " << job);
    assignment_[static_cast<size_t>(job)] = -1;
    resident_ticks_[static_cast<size_t>(job)] = 0;
}

int
ClusterScheduler::QueuedJobs() const
{
    int queued = 0;
    for (int leaf : assignment_) queued += leaf < 0 ? 1 : 0;
    return queued;
}

int
ClusterScheduler::PickLeaf(const std::vector<LeafState>& leaves,
                           const std::vector<bool>& taken) const
{
    const int n = static_cast<int>(leaves.size());
    if (cfg_.policy == SchedulerPolicy::kRoundRobin) {
        // First free, live leaf in rotation order, slack-blind.
        for (int k = 0; k < n; ++k) {
            const int i = (rr_cursor_ + k) % n;
            if (!taken[i] && !leaves[i].in_cooldown &&
                !leaves[i].crashed) {
                return i;
            }
        }
        return -1;
    }
    // Greedy: the free, live, non-cooldown leaf with the most slack,
    // provided it clears the placement floor. Ties break to the lowest
    // index.
    int best = -1;
    for (int i = 0; i < n; ++i) {
        if (taken[i] || leaves[i].in_cooldown || leaves[i].crashed) {
            continue;
        }
        if (leaves[i].slack < cfg_.place_min_slack) continue;
        if (best < 0 || leaves[i].slack > leaves[best].slack) best = i;
    }
    return best;
}

std::vector<ClusterScheduler::Move>
ClusterScheduler::Tick(const std::vector<LeafState>& leaves)
{
    HERACLES_CHECK_MSG(
        cfg_.policy != SchedulerPolicy::kStaticSplit,
        "static-split placement is fixed at assembly; no ticks");
    ++stats_.ticks;

    std::vector<bool> taken(leaves.size(), false);
    for (size_t i = 0; i < leaves.size(); ++i) {
        taken[i] = leaves[i].hosts_job;
    }

    std::vector<Move> moves;
    const int jobs = static_cast<int>(assignment_.size());
    std::vector<bool> moved_now(static_cast<size_t>(jobs), false);

    // Placements: queued jobs in index order.
    for (int j = 0; j < jobs; ++j) {
        if (assignment_[j] >= 0) continue;
        const int to = PickLeaf(leaves, taken);
        if (to < 0) continue;  // no acceptable leaf; stay queued
        assignment_[j] = to;
        resident_ticks_[j] = 0;
        moved_now[j] = true;
        taken[to] = true;
        if (cfg_.policy == SchedulerPolicy::kRoundRobin) {
            rr_cursor_ = (to + 1) % static_cast<int>(leaves.size());
        }
        moves.push_back({j, -1, to});
        ++stats_.placements;
    }

    // Migrations: placed jobs in index order. Jobs placed this tick
    // are settling (their LeafState predates the placement); skip them.
    for (int j = 0; j < jobs; ++j) {
        const int from = assignment_[j];
        if (from < 0 || moved_now[j]) continue;
        if (++resident_ticks_[j] < cfg_.min_resident_ticks) continue;
        const LeafState& src = leaves[static_cast<size_t>(from)];
        if (!src.has_signal) continue;

        // A leaf that refuses to run its job (load safeguard, cooldown,
        // collapsed slack) is a migration trigger; for greedy, so is
        // slack below the migrate floor even while BE still runs. The
        // source slot stays marked taken, so PickLeaf never proposes
        // the leaf the job is trying to leave (a load-starved leaf can
        // have plenty of latency slack).
        const bool starved = !src.be_enabled;
        const bool tight =
            cfg_.policy == SchedulerPolicy::kGreedySlack &&
            src.slack < cfg_.migrate_low_slack;
        if (!starved && !tight) continue;

        const int to = PickLeaf(leaves, taken);
        const bool acceptable =
            to >= 0 &&
            (cfg_.policy == SchedulerPolicy::kRoundRobin || starved ||
             leaves[static_cast<size_t>(to)].slack >
                 src.slack + cfg_.migrate_min_gain);
        if (!acceptable) continue;  // keep the job where it is
        assignment_[j] = to;
        resident_ticks_[j] = 0;
        taken[to] = true;
        // The vacated slot stays marked taken for the rest of this
        // tick: the leaf was just proven unwilling (or too tight) to
        // run a job, so handing it to the next migrating job would
        // defeat the very signal that triggered the move. It becomes a
        // candidate again next period.
        if (cfg_.policy == SchedulerPolicy::kRoundRobin) {
            rr_cursor_ = (to + 1) % static_cast<int>(leaves.size());
        }
        moves.push_back({j, from, to});
        ++stats_.migrations;
    }
    return moves;
}

}  // namespace heracles::cluster
