/**
 * @file
 * Deterministic epoch barriers for the partitioned cluster engine.
 *
 * The cluster simulation runs every leaf on its own sim::EventQueue and
 * only lets cross-leaf state move at *barriers*: the instants where the
 * root closes an SLO window, the cluster scheduler ticks, a cluster
 * fault opens or closes a window, and the end of the run. Between two
 * consecutive barriers no leaf can observe another leaf (arrivals for
 * the interval are staged before it starts; replies are drained after
 * it ends), so the leaves of one epoch may execute on any number of
 * threads in any order and the run stays bit-identical to jobs=1.
 *
 * The barrier schedule is a pure function of the run's configuration —
 * never of anything a leaf computes — which is what makes the schedule
 * itself deterministic. Cluster fault boundaries are barriers by
 * construction, so crash/recover and slack-freeze injections land on
 * exact epoch edges (pinned by tests/epoch_determinism_test.cc).
 */
#ifndef HERACLES_CLUSTER_EPOCH_H
#define HERACLES_CLUSTER_EPOCH_H

#include <vector>

#include "chaos/fault_plan.h"
#include "sim/time.h"

namespace heracles::cluster {

/**
 * Deterministic leaf → batch mapping for the epoch engine's fan-out.
 *
 * Dispatching one pool task per leaf makes the per-barrier overhead
 * (submit, wake, notify) proportional to the leaf count; at thousands of
 * leaves and ~25 ms barrier intervals that overhead rivals the simulated
 * work. Batching runs `batch_size` consecutive leaves per task. The
 * mapping is a pure function of (leaf count, configured batch size) —
 * never of the thread count — so batch boundaries cannot perturb
 * results: leaves stay thread-confined within an epoch regardless of
 * which task executes them.
 */
struct LeafBatching {
    size_t leaves = 0;
    size_t batch_size = 1;

    /**
     * Resolves the configured batch size: @p configured > 0 is clamped
     * to [1, leaves]; 0 picks the default policy — 8 leaves per task
     * once the cluster is large enough (>= 64 leaves) for dispatch
     * overhead to matter, else one task per leaf.
     */
    static LeafBatching Resolve(size_t leaves, int configured);

    /** Number of batches (ceil(leaves / batch_size); 0 for no leaves). */
    size_t batches() const {
        return batch_size > 0 ? (leaves + batch_size - 1) / batch_size : 0;
    }

    /** Batch hosting @p leaf. */
    size_t BatchOf(size_t leaf) const { return leaf / batch_size; }

    /** First leaf of @p batch. */
    size_t BatchBegin(size_t batch) const { return batch * batch_size; }

    /** One past the last leaf of @p batch. */
    size_t BatchEnd(size_t batch) const {
        const size_t end = (batch + 1) * batch_size;
        return end < leaves ? end : leaves;
    }
};

/** The sorted, deduplicated barrier schedule of one cluster run. */
struct BarrierClock {
    /** Barrier instants, strictly increasing, in (0, duration]. The
     *  last entry is always the run's end. */
    std::vector<sim::SimTime> barriers;

    /**
     * Builds the schedule: every multiple of @p root_window and of
     * @p scheduler_period (0 = no scheduler) up to @p duration, every
     * resolved cluster-fault begin/end inside (0, duration], and
     * @p duration itself. Fault times at exactly 0 are not barriers —
     * they act before the first epoch starts.
     */
    static BarrierClock Build(sim::Duration duration,
                              sim::Duration root_window,
                              sim::Duration scheduler_period,
                              const std::vector<chaos::TimedFault>& faults);

    /** True when @p t is on the schedule (binary search). */
    bool IsBarrier(sim::SimTime t) const;

    size_t size() const { return barriers.size(); }
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_EPOCH_H
