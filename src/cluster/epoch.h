/**
 * @file
 * Deterministic epoch barriers for the partitioned cluster engine.
 *
 * The cluster simulation runs every leaf on its own sim::EventQueue and
 * only lets cross-leaf state move at *barriers*: the instants where the
 * root closes an SLO window, the cluster scheduler ticks, a cluster
 * fault opens or closes a window, and the end of the run. Between two
 * consecutive barriers no leaf can observe another leaf (arrivals for
 * the interval are staged before it starts; replies are drained after
 * it ends), so the leaves of one epoch may execute on any number of
 * threads in any order and the run stays bit-identical to jobs=1.
 *
 * The barrier schedule is a pure function of the run's configuration —
 * never of anything a leaf computes — which is what makes the schedule
 * itself deterministic. Cluster fault boundaries are barriers by
 * construction, so crash/recover and slack-freeze injections land on
 * exact epoch edges (pinned by tests/epoch_determinism_test.cc).
 */
#ifndef HERACLES_CLUSTER_EPOCH_H
#define HERACLES_CLUSTER_EPOCH_H

#include <vector>

#include "chaos/fault_plan.h"
#include "sim/time.h"

namespace heracles::cluster {

/** The sorted, deduplicated barrier schedule of one cluster run. */
struct BarrierClock {
    /** Barrier instants, strictly increasing, in (0, duration]. The
     *  last entry is always the run's end. */
    std::vector<sim::SimTime> barriers;

    /**
     * Builds the schedule: every multiple of @p root_window and of
     * @p scheduler_period (0 = no scheduler) up to @p duration, every
     * resolved cluster-fault begin/end inside (0, duration], and
     * @p duration itself. Fault times at exactly 0 are not barriers —
     * they act before the first epoch starts.
     */
    static BarrierClock Build(sim::Duration duration,
                              sim::Duration root_window,
                              sim::Duration scheduler_period,
                              const std::vector<chaos::TimedFault>& faults);

    /** True when @p t is on the schedule (binary search). */
    bool IsBarrier(sim::SimTime t) const;

    size_t size() const { return barriers.size(); }
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_EPOCH_H
