/**
 * @file
 * Composable cluster simulation (Section 5.3, Figure 8, and beyond).
 *
 * A root node spreads every user query over the leaf servers through a
 * pluggable Topology (full fan-out reproduces the paper; a sharded
 * topology models a replicated, partitioned index) and combines the
 * replies, so root latency is the maximum touched-leaf latency plus
 * network hops. The cluster SLO is the *average* root latency over
 * 30-second windows (mu/30s); the target is the mu/30s measured at 90%
 * load with no colocation.
 *
 * Heracles runs independently on every leaf. Leaves are described by a
 * vector of LeafSpec (machine, LC workload, pinned BE job, tail-target
 * policy) and may be heterogeneous; the default-synthesized vector is
 * the paper's uniform cluster with brain on half the leaves and
 * streetview on the other half. Above the leaves, a cluster-level BE
 * scheduler (cluster/scheduler.h) can own a queue of BE jobs and
 * place/migrate them using the slack each leaf's controller exports;
 * the static-split policy reproduces the pinned-at-assembly behavior
 * bit for bit. Load follows a diurnal trace (or a flash crowd).
 */
#ifndef HERACLES_CLUSTER_CLUSTER_H
#define HERACLES_CLUSTER_CLUSTER_H

#include <memory>
#include <vector>

#include "chaos/fault_plan.h"
#include "cluster/leaf.h"
#include "cluster/scheduler.h"
#include "cluster/topology.h"
#include "heracles/config.h"
#include "hw/config.h"
#include "platform/sim_platform.h"
#include "runner/pool.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "workloads/lc_configs.h"

namespace heracles::cluster {

/** Configuration of a cluster run. */
struct ClusterConfig {
    /** Leaf count when leaf_specs is empty (uniform paper cluster). */
    int leaves = 12;
    hw::MachineConfig machine;
    /** Root workload: defines the query rate (peak_qps) and the default
     *  leaf workload of the uniform cluster. */
    workloads::LcParams lc = workloads::Websearch();
    ctl::HeraclesConfig heracles;
    /** Run best-effort tasks under Heracles (false = baseline). */
    bool colocate = true;

    /**
     * Explicit per-leaf blueprints. Empty = synthesize the paper's
     * uniform cluster: `leaves` copies of (machine, lc) with brain
     * pinned to even leaves and streetview to odd ones.
     */
    std::vector<LeafSpec> leaf_specs;

    /** Root fan-out shape; shards only applies to kSharded (<= leaves;
     *  0 picks one shard per leaf, i.e. full fan-out degenerate) and
     *  rack_size to kHierarchical (leaves per rack, clamped to the
     *  leaf count). */
    TopologyKind topology = TopologyKind::kFullFanout;
    int shards = 0;
    int rack_size = 0;

    /**
     * Cluster-level BE scheduling. kStaticSplit runs the LeafSpec-pinned
     * jobs exactly as before; kGreedySlack/kRoundRobin ignore the pinned
     * jobs and instead queue `be_jobs`, placing them across leaves at
     * runtime (at most one job per leaf).
     */
    SchedulerConfig scheduler;
    std::vector<workloads::BeProfile> be_jobs;

    /**
     * Derive each leaf's tail target from its *own* tail in the
     * target-defining run instead of the uniform mean — required for
     * meaningfully heterogeneous leaves (a mean over different LC
     * workloads defends nothing). Off = the paper's uniform target.
     */
    bool per_leaf_targets = false;

    /** Diurnal load range (the paper's trace swings roughly 20%-90%). */
    double load_low = 0.20;
    double load_high = 0.90;
    /** Drive the run with a flash-crowd burst (base load_low, peak
     *  load_high) instead of the diurnal swing. */
    bool flash_crowd = false;
    /** Trace length. The paper's 12-hour trace is time-compressed; the
     *  controller's time constants are NOT scaled. */
    sim::Duration duration = sim::Minutes(25);

    /** Root-level SLO window (mu/30s in the paper). */
    sim::Duration root_window = sim::Seconds(30);
    /** One-way network hop latency root <-> leaf. */
    sim::Duration hop = sim::Micros(250);
    /** Load used to define the root latency target (paper: 90%). */
    double target_load = 0.90;
    /** Length of the target-defining run (MeasureTarget). */
    sim::Duration target_run = sim::Minutes(3);
    /** Warmup excluded from every run's window statistics. */
    sim::Duration run_warmup = sim::Seconds(60);

    /**
     * Centralized controller (the paper's future work): dynamically
     * raises each leaf's tail target while the root has slack, letting
     * leaves colocate more aggressively, and tightens it when root
     * slack shrinks. Off by default (the paper's evaluated system uses
     * a uniform static per-leaf target).
     */
    bool central_controller = false;
    /** Fraction of root slack converted into leaf-target increase. */
    double central_gain = 0.5;
    /** Leaf target never exceeds this multiple of the static target. */
    double central_max_boost = 1.6;

    /**
     * Deterministic fault-injection plan for the *colocated* run only
     * (windows are fractions of `duration`). The target-defining run
     * always executes clean: faults degrade operation, not the SLO
     * definition. Platform faults apply per leaf (FaultSpec::leaf < 0 =
     * every leaf); kLeafCrash / kSlackFreeze act at this layer.
     */
    chaos::FaultPlan faults;

    uint64_t seed = 42;

    /**
     * Worker threads for the run: the assembly work (BE alone-rate
     * baselines, per-leaf bandwidth-model profiling) and the epoch
     * engine's per-barrier leaf fan-out both use this width. Results
     * never depend on it — leaves exchange state only at deterministic
     * epoch barriers, so jobs=N is bit-identical to jobs=1. Defaults to
     * the tree's shared policy (HERACLES_JOBS env var, else hardware
     * concurrency).
     */
    int jobs = runner::DefaultJobs();

    /**
     * Leaves per epoch-engine task: each barrier fans the leaves out in
     * contiguous batches of this size, cutting the per-barrier dispatch
     * overhead (submit/wake/notify per task) that dominates at thousands
     * of leaves. The mapping depends only on the leaf count and this
     * value — never on `jobs` — so results are identical for every
     * batch size. 0 = auto (8 once the cluster has >= 64 leaves, else
     * unbatched); 1 = one task per leaf.
     */
    int leaf_batch = 0;

    /**
     * Shared worker pool (not owned). When set, the run's assembly work
     * and the epoch engine submit here instead of spawning their own
     * pool — a sweep that runs many configurations reuses one set of
     * threads instead of paying a pool spawn per run. The pool must not
     * receive work from two runs concurrently (ParallelFor waits for the
     * whole pool); RunScenarios-style outer fan-outs need one pool per
     * worker, or none. nullptr = the run manages its own pool from
     * `jobs`.
     */
    runner::Pool* pool = nullptr;
};

/** Results of a cluster run. */
struct ClusterResult {
    /** Root mu/30s as a fraction of the target, per window. */
    sim::TimeSeries latency_frac;
    /** Cluster-wide Effective Machine Utilization, sampled per window. */
    sim::TimeSeries emu;
    /** Offered load, sampled per window. */
    sim::TimeSeries load;

    double worst_latency_frac = 0.0;
    bool slo_violated = false;
    double avg_emu = 0.0;
    double min_emu = 0.0;
    sim::Duration target = 0;       ///< Root mu/30s target.
    sim::Duration leaf_target = 0;  ///< Mean per-leaf tail target.

    // Controller activity summed over every leaf (zero when the run is
    // not colocated) — the scenario harness pins these against golden
    // baselines alongside the latency/EMU outcome.
    uint64_t polls = 0;
    uint64_t be_enables = 0;
    uint64_t be_disables = 0;  ///< Slack + load safeguards combined.
    uint64_t core_shrinks = 0;
    platform::ActuationCounts actuations;

    // Cluster-level scheduler activity (zero under static split).
    uint64_t be_placements = 0;  ///< Queue → leaf assignments.
    uint64_t be_migrations = 0;  ///< Leaf → leaf moves.
    /** predict_only ablation: acted decisions the predictive ranking
     *  disputed (zero everywhere else). */
    uint64_t be_would_placements = 0;
    uint64_t be_would_migrations = 0;

    // Chaos / safety harness (zero in clean-weather runs): summed
    // per-leaf invariant violations plus cluster-layer ones (a BE job
    // placed onto a crashed leaf), and per-leaf degraded operations.
    uint64_t invariant_violations = 0;
    uint64_t faulted_ops = 0;

    // Epoch-engine throughput counters for the colocated run (the
    // scoreboard of BENCH_cluster.json; not part of the golden metrics
    // record): barrier intervals executed and events executed across
    // every leaf's queue.
    uint64_t epochs = 0;
    uint64_t leaf_events = 0;
};

/** Runs the composed cluster under its load trace. */
class ClusterExperiment
{
  public:
    explicit ClusterExperiment(ClusterConfig cfg);

    /**
     * Measures the root latency target (worst mu/30s window at
     * target_load with no colocation) and the per-leaf tail targets
     * derived from the same run, "set such that the latency at the
     * root satisfies the SLO" (Section 5.3). Cached.
     */
    sim::Duration MeasureTarget();

    /** Mean per-leaf tail target used by Heracles across the leaves. */
    sim::Duration LeafTarget();

    /** Per-leaf tail targets (after tail_scale / overrides). */
    const std::vector<sim::Duration>& LeafTargets();

    /** Runs the full trace and reports the Figure 8 series. */
    ClusterResult Run();

  private:
    /** The resolved leaf blueprint vector (synthesized when empty). */
    const std::vector<LeafSpec>& ResolveSpecs();

    /**
     * The pool every run of this experiment shares: the caller's
     * cfg.pool when set, else one lazily spawned from cfg.jobs — so
     * MeasureTarget and Run (and a caller's repeat runs) pay one thread
     * spawn total, not one per run.
     */
    runner::Pool* SharedPool();

    ClusterConfig cfg_;
    std::unique_ptr<runner::Pool> pool_;
    std::vector<LeafSpec> specs_;
    sim::Duration target_ = 0;
    sim::Duration leaf_target_ = 0;
    std::vector<sim::Duration> leaf_targets_;
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_CLUSTER_H
