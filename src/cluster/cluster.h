/**
 * @file
 * Websearch cluster simulation (Section 5.3, Figure 8).
 *
 * A root node fans every user query out to all leaf servers and combines
 * their replies, so root latency is the maximum leaf latency plus network
 * hops. The cluster SLO is the *average* root latency over 30-second
 * windows (mu/30s); the target is the mu/30s measured at 90% load with no
 * colocation. Heracles runs independently on every leaf with a uniform
 * per-leaf tail target; brain runs on half the leaves and streetview on
 * the other half. Load follows a diurnal trace.
 */
#ifndef HERACLES_CLUSTER_CLUSTER_H
#define HERACLES_CLUSTER_CLUSTER_H

#include <memory>
#include <vector>

#include "heracles/config.h"
#include "hw/config.h"
#include "platform/sim_platform.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "workloads/lc_configs.h"

namespace heracles::cluster {

/** Configuration of a cluster run. */
struct ClusterConfig {
    int leaves = 12;
    hw::MachineConfig machine;
    workloads::LcParams lc = workloads::Websearch();
    ctl::HeraclesConfig heracles;
    /** Run best-effort tasks under Heracles (false = baseline). */
    bool colocate = true;

    /** Diurnal load range (the paper's trace swings roughly 20%-90%). */
    double load_low = 0.20;
    double load_high = 0.90;
    /** Trace length. The paper's 12-hour trace is time-compressed; the
     *  controller's time constants are NOT scaled. */
    sim::Duration duration = sim::Minutes(25);

    /** Root-level SLO window (mu/30s in the paper). */
    sim::Duration root_window = sim::Seconds(30);
    /** One-way network hop latency root <-> leaf. */
    sim::Duration hop = sim::Micros(250);
    /** Load used to define the root latency target (paper: 90%). */
    double target_load = 0.90;
    /** Length of the target-defining run (MeasureTarget). */
    sim::Duration target_run = sim::Minutes(3);
    /** Warmup excluded from every run's window statistics. */
    sim::Duration run_warmup = sim::Seconds(60);

    /**
     * Centralized controller (the paper's future work): dynamically
     * raises each leaf's tail target while the root has slack, letting
     * leaves colocate more aggressively, and tightens it when root
     * slack shrinks. Off by default (the paper's evaluated system uses
     * a uniform static per-leaf target).
     */
    bool central_controller = false;
    /** Fraction of root slack converted into leaf-target increase. */
    double central_gain = 0.5;
    /** Leaf target never exceeds this multiple of the static target. */
    double central_max_boost = 1.6;

    uint64_t seed = 42;

    /**
     * Worker threads for the embarrassingly-parallel assembly work
     * (BE alone-rate baselines, per-leaf bandwidth-model profiling).
     * The coupled root/leaf simulation itself is single-threaded and its
     * results do not depend on this value.
     */
    int jobs = 1;
};

/** Results of a cluster run. */
struct ClusterResult {
    /** Root mu/30s as a fraction of the target, per window. */
    sim::TimeSeries latency_frac;
    /** Cluster-wide Effective Machine Utilization, sampled per window. */
    sim::TimeSeries emu;
    /** Offered load, sampled per window. */
    sim::TimeSeries load;

    double worst_latency_frac = 0.0;
    bool slo_violated = false;
    double avg_emu = 0.0;
    double min_emu = 0.0;
    sim::Duration target = 0;       ///< Root mu/30s target.
    sim::Duration leaf_target = 0;  ///< Uniform per-leaf tail target.

    // Controller activity summed over every leaf (zero when the run is
    // not colocated) — the scenario harness pins these against golden
    // baselines alongside the latency/EMU outcome.
    uint64_t polls = 0;
    uint64_t be_enables = 0;
    uint64_t be_disables = 0;  ///< Slack + load safeguards combined.
    uint64_t core_shrinks = 0;
    platform::ActuationCounts actuations;
};

/** Runs the fan-out cluster under a diurnal trace. */
class ClusterExperiment
{
  public:
    explicit ClusterExperiment(ClusterConfig cfg);

    /**
     * Measures the root latency target (worst mu/30s window at
     * target_load with no colocation) and the uniform per-leaf tail
     * target derived from the same run, "set such that the latency at
     * the root satisfies the SLO" (Section 5.3). Cached.
     */
    sim::Duration MeasureTarget();

    /** Per-leaf tail target used by Heracles on every leaf. */
    sim::Duration LeafTarget();

    /** Runs the full diurnal trace and reports the Figure 8 series. */
    ClusterResult Run();

  private:
    ClusterConfig cfg_;
    sim::Duration target_ = 0;
    sim::Duration leaf_target_ = 0;
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_CLUSTER_H
