/**
 * @file
 * Per-leaf blueprint of a composable cluster.
 *
 * The paper's Section 5.3 cluster is a single fixed shape — homogeneous
 * leaves, brain/streetview split down the middle, one uniform tail
 * target. A LeafSpec makes every one of those choices per leaf, so a
 * cluster can mix websearch and ml_cluster leaves, large and small
 * machines, and per-leaf tail-target policies, while the default-built
 * vector reproduces the paper's uniform cluster exactly.
 */
#ifndef HERACLES_CLUSTER_LEAF_H
#define HERACLES_CLUSTER_LEAF_H

#include <optional>

#include "hw/config.h"
#include "sim/time.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"

namespace heracles::cluster {

/**
 * Blueprint for one leaf server. Seeds are derived by the cluster
 * assembly (cluster seed * 131 + leaf index), not stored here, so the
 * same spec vector composes bit-identical clusters for a given
 * ClusterConfig::seed.
 */
struct LeafSpec {
    /** Server shape of this leaf (seed field ignored; derived). */
    hw::MachineConfig machine;

    /** LC workload served by this leaf. The root drives every leaf with
     *  the same query stream; a leaf whose workload has a lower
     *  peak_qps simply runs at a higher load fraction (heterogeneous
     *  capacity, exactly what a slack-aware scheduler exploits). */
    workloads::LcParams lc;

    /** BE job pinned to this leaf at assembly (static-split scheduling
     *  only). Unset = the leaf idles unless the cluster-level scheduler
     *  places a job on it. */
    std::optional<workloads::BeProfile> be;

    /**
     * Per-leaf tail-target policy: the target Heracles defends on this
     * leaf is `derived * tail_scale`, where `derived` comes from the
     * target-defining run (uniform mean leaf tail by default, this
     * leaf's own tail under ClusterConfig::per_leaf_targets). A scale
     * above 1 grants the leaf extra colocation headroom — safe because
     * the root SLO is a window *mean* while leaves defend a *tail*.
     */
    double tail_scale = 1.0;

    /** Absolute per-leaf tail target; overrides derivation when > 0. */
    sim::Duration tail_target_override = 0;
};

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_LEAF_H
