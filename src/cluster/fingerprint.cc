#include "cluster/fingerprint.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "exp/characterization.h"
#include "sim/log.h"
#include "workloads/lc_configs.h"

namespace heracles::cluster {
namespace {

/** One saturating antagonist per axis, in FingerprintAxis order. */
std::vector<exp::AntagonistKind>
AxisAntagonists()
{
    return {exp::AntagonistKind::kLlcBig, exp::AntagonistKind::kDram,
            exp::AntagonistKind::kHyperThread,
            exp::AntagonistKind::kCpuPower,
            exp::AntagonistKind::kNetwork};
}

/** Probe loads: one mid-load and one high-load cell per axis. Averaging
 *  the two keeps the sensitivity honest for workloads (ml_cluster)
 *  whose contention grows super-linearly with load. */
const std::vector<double>&
ProbeLoads()
{
    static const std::vector<double> loads = {0.4, 0.7};
    return loads;
}

/** Fixed rig seed: fingerprints are a property of the (shape, workload)
 *  pair, never of the scenario that asked. */
constexpr uint64_t kRigSeed = 7;

/**
 * Cells are clipped at 300% of the SLO before differencing, the same
 * clip the paper's characterization maps apply. Past that point the LC
 * is in queueing collapse and the measured tail is meltdown noise
 * (how far a queue exploded within the measure window), not a signal —
 * unclipped, one collapsed cell drowns every other axis and the
 * *ranking* between workloads is decided by noise magnitudes.
 */
constexpr double kCellCap = 3.0;

double
Clamp01(double v)
{
    return std::min(1.0, std::max(0.0, v));
}

/**
 * Cache key: every MachineConfig field that shapes the simulation,
 * *except* the seed — clusters stamp a per-leaf seed into the machine,
 * and the rig re-seeds deterministically anyway. Keep in sync with
 * MachineConfig when fields are added (a stale key only costs a
 * duplicate grid run, never a wrong result).
 */
std::string
CacheKey(const hw::MachineConfig& m, const std::string& lc_name)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s|%d/%d/%d|%.17g/%.17g/%.17g/%.17g/%.17g|%.17g/%.17g/%.17g/"
        "%.17g/%.17g|%.17g/%d|%.17g/%.17g|%.17g|%lld/%.17g",
        lc_name.c_str(), m.sockets, m.cores_per_socket,
        m.threads_per_core, m.nominal_ghz, m.min_ghz, m.turbo_1c_ghz,
        m.turbo_slope_ghz, m.dvfs_step_ghz, m.tdp_w, m.uncore_w,
        m.core_idle_w, m.dyn_coeff_w, m.dyn_exp, m.llc_mb_per_socket,
        m.llc_ways, m.dram_gbps_per_socket, m.dram_knee, m.nic_gbps,
        static_cast<long long>(m.epoch), m.counter_noise);
    return buf;
}

}  // namespace

std::string
FingerprintAxisName(FingerprintAxis axis)
{
    switch (axis) {
      case FingerprintAxis::kLlc: return "llc";
      case FingerprintAxis::kDram: return "dram";
      case FingerprintAxis::kHyperThread: return "hyperthread";
      case FingerprintAxis::kPower: return "power";
      case FingerprintAxis::kNetwork: return "network";
    }
    return "?";
}

LcFingerprint
MeasureLcFingerprint(const hw::MachineConfig& machine,
                     const workloads::LcParams& lc, sim::Duration warmup,
                     sim::Duration measure)
{
    exp::CharacterizationRig rig(machine, lc, warmup, measure, kRigSeed);
    const std::vector<double>& loads = ProbeLoads();

    const std::vector<double> base = rig.RunBaselineRow(loads);
    const std::vector<std::vector<double>> grid =
        rig.RunGrid(AxisAntagonists(), loads);

    LcFingerprint fp;
    for (double b : base) fp.baseline += std::min(b, kCellCap);
    fp.baseline /= static_cast<double>(base.size());

    for (int a = 0; a < kFingerprintAxes; ++a) {
        double delta = 0.0;
        for (size_t l = 0; l < loads.size(); ++l) {
            delta += std::max(0.0, std::min(grid[a][l], kCellCap) -
                                       std::min(base[l], kCellCap));
        }
        fp.sensitivity[a] = delta / static_cast<double>(loads.size());
    }
    return fp;
}

LcFingerprint
FingerprintFor(const hw::MachineConfig& machine,
               const std::string& lc_name)
{
    static std::mutex mu;
    static std::map<std::string, LcFingerprint>* cache =
        new std::map<std::string, LcFingerprint>();

    const std::string key = CacheKey(machine, lc_name);
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;

    const workloads::LcParams* canonical = nullptr;
    static std::vector<workloads::LcParams>* all =
        new std::vector<workloads::LcParams>(workloads::AllLcWorkloads());
    for (const workloads::LcParams& p : *all) {
        if (p.name == lc_name) canonical = &p;
    }
    HERACLES_CHECK_MSG(canonical != nullptr,
                       "no canonical LC workload named " << lc_name);

    LcFingerprint fp = MeasureLcFingerprint(machine, *canonical);
    (*cache)[key] = fp;
    return fp;
}

BePressure
PressureOf(const hw::MachineConfig& machine, const workloads::BeProfile& be)
{
    BePressure p;

    // LLC: bubble size relative to one socket's cache, like Bubble-Up's
    // expanding-balloon probe. A footprint the size of the LLC evicts
    // everything the way stream-LLC-big does.
    p.pressure[static_cast<int>(FingerprintAxis::kLlc)] =
        Clamp01(be.footprint_mb / machine.llc_mb_per_socket);

    // DRAM: per-core streaming demand times the miss fraction — a
    // footprint that overflows the LLC misses everything, a resident
    // one still pays its compulsory misses — scaled by the half-socket
    // core allocation a colocated BE job typically ends up with.
    const double miss_frac =
        std::max(be.dram_compulsory_frac,
                 Clamp01(be.footprint_mb / machine.llc_mb_per_socket));
    const double be_cores = machine.cores_per_socket / 2.0;
    p.pressure[static_cast<int>(FingerprintAxis::kDram)] =
        Clamp01(be.dram_per_core_gbps * miss_frac * be_cores /
                machine.dram_gbps_per_socket);

    // HyperThread: aggression above 1.0 (no slowdown), saturating at
    // 1.5 — the grid's spinloop-class antagonists top out there.
    p.pressure[static_cast<int>(FingerprintAxis::kHyperThread)] =
        Clamp01((be.ht_aggression - 1.0) / 0.5);

    // Power: intensity relative to the power virus (~2.1).
    p.pressure[static_cast<int>(FingerprintAxis::kPower)] =
        Clamp01(be.power_intensity / 2.0);

    // Network: egress demand against the link rate.
    p.pressure[static_cast<int>(FingerprintAxis::kNetwork)] =
        Clamp01(be.net_demand_gbps / machine.nic_gbps);

    return p;
}

double
PredictTailFrac(const LcFingerprint& fp, const BePressure& be)
{
    double tail = fp.baseline;
    for (int a = 0; a < kFingerprintAxes; ++a) {
        tail += fp.sensitivity[a] * be.pressure[a];
    }
    return tail;
}

}  // namespace heracles::cluster
