/**
 * @file
 * Pluggable root fan-out topologies.
 *
 * The paper's cluster fans every query out to all leaves and the root
 * reply is ready when the slowest leaf answers. A topology generalizes
 * that: it decides, per query, which leaves are touched; root latency is
 * the maximum over the touched leaves plus the network hops. Full
 * fan-out reproduces the paper bit for bit; the sharded topology models
 * a replicated, partitioned index where each query reads one replica of
 * every shard, so a single slow leaf only hurts the queries routed to
 * it.
 */
#ifndef HERACLES_CLUSTER_TOPOLOGY_H
#define HERACLES_CLUSTER_TOPOLOGY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace heracles::cluster {

/** How the root spreads one query over the leaves. */
enum class TopologyKind {
    kFullFanout,    ///< Every query touches every leaf (the paper).
    kSharded,       ///< One replica per shard; partial fan-out.
    kHierarchical,  ///< leaf → rack → pod root; one leaf per rack.
};

/** Human-readable topology name ("full-fanout" / "sharded" / ...). */
std::string TopologyKindName(TopologyKind kind);

/**
 * Maps a query to the set of leaves it touches. Implementations must be
 * pure functions of (construction parameters, query tag) so a cluster
 * run stays bit-reproducible from its seed regardless of event timing.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    virtual TopologyKind kind() const = 0;

    /** Appends the touched leaf indices for query @p tag to @p out
     *  (cleared first). Never empty. */
    virtual void TouchedLeaves(uint64_t tag,
                               std::vector<int>* out) const = 0;

    /** Leaves touched per query (constant per topology). */
    virtual int FanOut() const = 0;

    /** Aggregation levels between the root and a leaf: each level adds
     *  one request/response hop pair to root latency. Flat topologies
     *  have one level; the hierarchical tree has two (root → rack,
     *  rack → leaf). */
    virtual int HopLevels() const { return 1; }
};

/** The paper's topology: every query to every leaf. */
class FullFanoutTopology : public Topology
{
  public:
    explicit FullFanoutTopology(int leaves) : leaves_(leaves) {}

    TopologyKind kind() const override { return TopologyKind::kFullFanout; }
    void TouchedLeaves(uint64_t tag, std::vector<int>* out) const override;
    int FanOut() const override { return leaves_; }

  private:
    int leaves_;
};

/**
 * Partitioned/replicated topology: leaf l serves shard (l % shards), so
 * each shard has floor-or-ceil(leaves / shards) replicas. A query reads
 * one replica of every shard, chosen by a deterministic hash of
 * (seed, tag, shard) — no RNG stream is consumed, so adding sharding
 * never perturbs the arrival process. shards == leaves degenerates to
 * full fan-out.
 */
class ShardedTopology : public Topology
{
  public:
    /** @pre 1 <= shards <= leaves. */
    ShardedTopology(int leaves, int shards, uint64_t seed);

    TopologyKind kind() const override { return TopologyKind::kSharded; }
    void TouchedLeaves(uint64_t tag, std::vector<int>* out) const override;
    int FanOut() const override { return shards_; }

    int shards() const { return shards_; }
    /** Replica count of @p shard (leaf count is not always divisible). */
    int Replicas(int shard) const;

  private:
    int leaves_;
    int shards_;
    uint64_t seed_;
};

/**
 * Two-level fan-out tree: leaves are grouped into racks of @p rack_size
 * (the last rack may be short) and each rack holds one shard of the
 * index, replicated across its members. The pod root fans a query to
 * every rack; each rack root picks one member replica by a deterministic
 * hash of (seed, tag, rack) — no RNG stream is consumed. Fan-out is the
 * rack count, so the root's connection degree scales with racks, not
 * leaves, and latency pays two hop levels (root → rack → leaf).
 */
class HierarchicalTopology : public Topology
{
  public:
    /** @pre leaves >= 1, rack_size >= 1. */
    HierarchicalTopology(int leaves, int rack_size, uint64_t seed);

    TopologyKind kind() const override { return TopologyKind::kHierarchical; }
    void TouchedLeaves(uint64_t tag, std::vector<int>* out) const override;
    int FanOut() const override { return racks_; }
    int HopLevels() const override { return 2; }

    int racks() const { return racks_; }
    int RackOf(int leaf) const { return leaf / rack_size_; }
    /** Member count of @p rack (the last rack may be short). */
    int RackMembers(int rack) const;

  private:
    int leaves_;
    int rack_size_;
    int racks_;
    uint64_t seed_;
};

/**
 * Builds the topology for a cluster of @p leaves. kSharded uses
 * @p shards (<= 0 picks one shard per leaf, i.e. full fan-out
 * degenerate); kHierarchical groups leaves into racks of @p rack_size
 * (clamped to the leaf count, so a small golden-scale cluster collapses
 * to one rack). Aborts when shards exceeds the leaf count.
 */
std::unique_ptr<Topology> MakeTopology(TopologyKind kind, int leaves,
                                       int shards, int rack_size,
                                       uint64_t seed);

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_TOPOLOGY_H
