#include "cluster/cluster.h"

#include <algorithm>
#include <unordered_map>

#include "exp/server_sim.h"
#include "heracles/controller.h"
#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "runner/pool.h"
#include "workloads/antagonists.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"

namespace heracles::cluster {
namespace {

/** One assembled cluster: machines, leaves, per-leaf Heracles, a root. */
class ClusterSim
{
  public:
    ClusterSim(const ClusterConfig& cfg, const sim::LoadTrace& trace,
               bool colocate, sim::Duration target)
        : cfg_(cfg), trace_(trace), target_(target), rng_(cfg.seed)
    {
        // The alone-rate baselines and per-leaf bandwidth-model profiles
        // are independent standalone simulations / analytic evaluations;
        // fan them across the runner pool before assembling the leaves
        // on the shared queue.
        double brain_alone = 1.0, sv_alone = 1.0;
        std::vector<ctl::LcBwModel> models(
            colocate ? static_cast<size_t>(cfg_.leaves) : 0);
        runner::ParallelFor(cfg_.jobs, 2 + models.size(), [&](size_t i) {
            if (i == 0) {
                brain_alone = workloads::MeasureAloneRate(
                    cfg_.machine, workloads::Brain());
            } else if (i == 1) {
                sv_alone = workloads::MeasureAloneRate(
                    cfg_.machine, workloads::Streetview());
            } else {
                hw::MachineConfig mcfg = cfg_.machine;
                mcfg.seed = cfg_.seed * 131ull + (i - 2);
                models[i - 2] = ctl::LcBwModel::Profile(cfg_.lc, mcfg);
            }
        });

        for (int i = 0; i < cfg_.leaves; ++i) {
            exp::ServerSpec spec;
            spec.machine = cfg_.machine;
            spec.machine.seed = cfg_.seed * 131ull + i;
            spec.lc = cfg_.lc;
            spec.lc_seed = spec.machine.seed ^ 0x11;
            spec.heracles = cfg_.heracles;
            double alone = 1.0;
            if (colocate) {
                // brain on half the leaves, streetview on the other half.
                // All leaves share one offline bandwidth model, even
                // though each serves a different shard (Section 5.2
                // shows Heracles tolerates this).
                const bool even = i % 2 == 0;
                spec.be = even ? workloads::Brain()
                               : workloads::Streetview();
                alone = even ? brain_alone : sv_alone;
                spec.policy = exp::PolicyKind::kHeracles;
                spec.bw_model = &models[i];
            } else {
                spec.policy = exp::PolicyKind::kNoColocation;
            }

            auto server = std::make_unique<exp::ServerSim>(spec, queue_);

            const int idx = static_cast<int>(leaves_.size());
            workloads::LcApp& lc = server->lc();
            lc.SetLoad(0.0);  // rate bookkeeping only; driven externally
            lc.StartExternal();
            lc.SetCompletionCallback(
                [this, idx](uint64_t tag, sim::Duration latency) {
                    OnLeafReply(idx, tag, latency);
                });

            Leaf leaf;
            leaf.server = std::move(server);
            leaf.be_alone = alone;
            leaves_.push_back(std::move(leaf));
        }
    }

    ~ClusterSim()
    {
        for (auto& leaf : leaves_) leaf.server->StopController();
    }

    /** Runs the trace; per-window results land in the series. */
    void
    Run(sim::Duration duration, sim::Duration warmup)
    {
        warmup_end_ = warmup;
        ScheduleNextQuery();
        queue_.SchedulePeriodic(cfg_.root_window, cfg_.root_window,
                                [this] { CloseWindow(); });
        queue_.RunFor(duration);
    }

    /**
     * Centralized controller step: convert root-level slack into a
     * uniform per-leaf tail target between the static base and
     * base * central_max_boost.
     */
    void
    AdjustLeafTargets(double window_mean)
    {
        if (!cfg_.central_controller || target_ <= 0) return;
        const double root_slack =
            (static_cast<double>(target_) - window_mean) /
            static_cast<double>(target_);
        const double base = static_cast<double>(cfg_.lc.slo_latency);
        const double boost = std::clamp(
            1.0 + cfg_.central_gain * root_slack, 1.0,
            cfg_.central_max_boost);
        for (auto& leaf : leaves_) {
            leaf.lc().SetSloLatency(
                static_cast<sim::Duration>(base * boost));
        }
    }

    const sim::TimeSeries& latency_series() const { return latency_; }

    /** Mean of the leaves' overall tail latencies (for target setting). */
    sim::Duration
    MeanLeafTail() const
    {
        double sum = 0.0;
        for (const auto& leaf : leaves_) {
            sum += static_cast<double>(leaf.lc().WorstReportTail());
        }
        return static_cast<sim::Duration>(sum / leaves_.size());
    }

    const sim::TimeSeries& emu_series() const { return emu_; }
    const sim::TimeSeries& load_series() const { return load_; }
    sim::Duration worst_window() const { return worst_window_; }

    /** Sums per-leaf controller stats and actuation counts into @p r. */
    void
    AccumulateActivity(ClusterResult& r) const
    {
        for (const auto& leaf : leaves_) {
            if (const ctl::HeraclesController* c =
                    leaf.server->controller()) {
                const ctl::ControllerStats& s = c->stats();
                r.polls += s.polls;
                r.be_enables += s.be_enables;
                r.be_disables +=
                    s.be_disables_slack + s.be_disables_load;
                r.core_shrinks += s.core_shrinks;
            }
            const platform::ActuationCounts& a =
                leaf.server->platform().actuations();
            r.actuations.set_cores += a.set_cores;
            r.actuations.set_ways += a.set_ways;
            r.actuations.set_freq_cap += a.set_freq_cap;
            r.actuations.set_net_ceil += a.set_net_ceil;
        }
    }

  private:
    struct Leaf {
        std::unique_ptr<exp::ServerSim> server;
        double be_alone = 1.0;

        workloads::LcApp& lc() const { return server->lc(); }
        workloads::BeTask* be() const { return server->be(); }
    };

    struct Query {
        int remaining = 0;
        sim::Duration max_latency = 0;
    };

    void
    ScheduleNextQuery()
    {
        const double load = trace_.LoadAt(queue_.Now());
        const double rate = std::max(load * cfg_.lc.peak_qps, 1.0);
        const sim::Duration gap = std::max<sim::Duration>(
            1, sim::Seconds(rng_.Exponential(1.0 / rate)));
        queue_.ScheduleAfter(gap, [this] {
            OnQueryArrival();
            ScheduleNextQuery();
        });
    }

    void
    OnQueryArrival()
    {
        const uint64_t tag = next_tag_++;
        pending_[tag] = Query{static_cast<int>(leaves_.size()), 0};
        for (auto& leaf : leaves_) leaf.lc().InjectRequest(tag);
    }

    void
    OnLeafReply(int /*leaf*/, uint64_t tag, sim::Duration latency)
    {
        auto it = pending_.find(tag);
        if (it == pending_.end()) return;
        Query& q = it->second;
        q.max_latency = std::max(q.max_latency, latency);
        if (--q.remaining == 0) {
            const sim::Duration root_latency =
                q.max_latency + 2 * cfg_.hop;
            window_sum_ += static_cast<double>(root_latency);
            ++window_count_;
            pending_.erase(it);
        }
    }

    void
    CloseWindow()
    {
        const sim::SimTime now = queue_.Now();
        if (window_count_ > 0 && now > warmup_end_) {
            const double mean = window_sum_ / window_count_;
            AdjustLeafTargets(mean);
            latency_.Add(now, target_ > 0
                                  ? mean / static_cast<double>(target_)
                                  : mean);
            worst_window_ = std::max(
                worst_window_, static_cast<sim::Duration>(mean));

            double emu = 0.0;
            for (auto& leaf : leaves_) {
                double e = leaf.lc().ServedFraction();
                if (leaf.be()) {
                    e += leaf.be()->CurrentRate() / leaf.be_alone;
                }
                emu += e;
            }
            emu_.Add(now, emu / leaves_.size());
            load_.Add(now, trace_.LoadAt(now));
        }
        window_sum_ = 0.0;
        window_count_ = 0;
    }

    ClusterConfig cfg_;
    const sim::LoadTrace& trace_;
    sim::Duration target_;
    sim::Rng rng_;
    sim::EventQueue queue_;
    std::vector<Leaf> leaves_;

    uint64_t next_tag_ = 1;
    std::unordered_map<uint64_t, Query> pending_;
    double window_sum_ = 0.0;
    uint64_t window_count_ = 0;
    sim::SimTime warmup_end_ = 0;

    sim::TimeSeries latency_;
    sim::TimeSeries emu_;
    sim::TimeSeries load_;
    sim::Duration worst_window_ = 0;
};

}  // namespace

ClusterExperiment::ClusterExperiment(ClusterConfig cfg) : cfg_(std::move(cfg))
{
}

sim::Duration
ClusterExperiment::MeasureTarget()
{
    if (target_ > 0) return target_;
    sim::ConstantTrace trace(cfg_.target_load);
    ClusterSim sim(cfg_, trace, /*colocate=*/false, /*target=*/0);
    sim.Run(cfg_.target_run, cfg_.run_warmup);
    // The worst mu/30s window at the defining load is the SLO target,
    // with a small confidence margin: the defining run observes only a
    // few windows, so its sample maximum understates the true worst
    // window of a long run at the same load.
    const sim::TimeSeries& s = sim.latency_series();
    target_ = s.size() > 0 ? static_cast<sim::Duration>(1.05 * s.MaxValue())
                           : cfg_.lc.slo_latency;
    // Uniform per-leaf tail target from the same run: Heracles on each
    // leaf defends the leaf tail observed at the defining load, which is
    // sufficient for the root SLO (Section 5.3).
    leaf_target_ = sim.MeanLeafTail();
    if (leaf_target_ <= 0) leaf_target_ = cfg_.lc.slo_latency;
    return target_;
}

sim::Duration
ClusterExperiment::LeafTarget()
{
    MeasureTarget();
    return leaf_target_;
}

ClusterResult
ClusterExperiment::Run()
{
    MeasureTarget();
    sim::DiurnalTrace trace(cfg_.duration, cfg_.load_low, cfg_.load_high,
                            0.02, cfg_.seed);
    ClusterConfig run_cfg = cfg_;
    // Every leaf's Heracles defends the derived uniform tail target.
    run_cfg.lc.slo_latency = leaf_target_;
    ClusterSim sim(run_cfg, trace, cfg_.colocate, target_);
    sim.Run(cfg_.duration, cfg_.run_warmup);

    ClusterResult r;
    sim.AccumulateActivity(r);
    r.leaf_target = leaf_target_;
    r.latency_frac = sim.latency_series();
    r.emu = sim.emu_series();
    r.load = sim.load_series();
    r.worst_latency_frac = r.latency_frac.MaxValue();
    r.slo_violated = r.worst_latency_frac > 1.0;
    r.avg_emu = r.emu.MeanValue();
    r.min_emu = r.emu.MinValue();
    r.target = target_;
    return r;
}

}  // namespace heracles::cluster
