#include "cluster/cluster.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "cluster/epoch.h"
#include "cluster/fingerprint.h"
#include "exp/server_sim.h"
#include "heracles/controller.h"
#include "hw/machine.h"
#include "platform/sim_platform.h"
#include "runner/pool.h"
#include "sim/log.h"
#include "workloads/antagonists.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"

namespace heracles::cluster {
namespace {

/**
 * One assembled cluster: machines, leaves, per-leaf Heracles, a root
 * topology and (optionally) the cluster-level BE scheduler.
 *
 * Execution is epoch-partitioned: every leaf owns its own event queue
 * and advances one barrier interval at a time (cluster/epoch.h), fanned
 * across the runner pool. Root-side work — closing SLO windows, the
 * scheduler tick, cluster fault boundaries, arrival generation — runs
 * single-threaded at the barriers, so the only cross-leaf channels are
 * the staged arrival inboxes (root → leaf, written before an epoch) and
 * the reply outboxes (leaf → root, drained after it). The barrier
 * schedule and the inbox/outbox merge order depend only on the
 * configuration, never on thread count, which keeps a jobs=N run
 * bit-identical to jobs=1 — and, by matching the old shared queue's
 * insertion-order tie-breaks at the barriers, byte-identical to the
 * serial single-queue implementation this replaced.
 */
class ClusterSim
{
  public:
    /**
     * @param faults fault plan for this run, or nullptr for a clean run
     *        (the target-defining run is always clean); windows resolve
     *        against @p fault_total (the run's trace duration).
     */
    ClusterSim(const ClusterConfig& cfg, const std::vector<LeafSpec>& specs,
               const sim::LoadTrace& trace, bool colocate,
               sim::Duration target,
               const chaos::FaultPlan* faults = nullptr,
               sim::Duration fault_total = 0)
        : cfg_(cfg), trace_(trace), target_(target), rng_(cfg.seed)
    {
        if (faults != nullptr) {
            for (const chaos::FaultSpec& f : faults->faults) {
                if (f.kind != chaos::FaultKind::kLeafCrash &&
                    f.kind != chaos::FaultKind::kSlackFreeze) {
                    continue;
                }
                HERACLES_CHECK_MSG(
                    f.leaf >= 0 &&
                        f.leaf < static_cast<int>(specs.size()),
                    "cluster fault targets leaf "
                        << f.leaf << " of " << specs.size()
                        << " (pin the scenario's leaf count with "
                           "fixed_leaves)");
                const chaos::TimedFault t =
                    chaos::ResolveWindow(f, fault_total);
                if (t.end > t.begin) cluster_faults_.push_back(t);
            }
            frozen_.resize(cluster_faults_.size());
        }
        const int n = static_cast<int>(specs.size());
        const int num_jobs = static_cast<int>(cfg_.be_jobs.size());
        const bool scheduled =
            colocate &&
            cfg_.scheduler.policy != SchedulerPolicy::kStaticSplit &&
            num_jobs > 0;

        // The alone-rate baselines and per-leaf bandwidth-model profiles
        // are independent standalone simulations / analytic evaluations;
        // fan them across the runner pool before assembling the leaves.
        // Alone rates are deduplicated: pinned jobs by (job, machine)
        // pair in leaf order (the uniform paper cluster yields exactly
        // [brain, streetview]), queued jobs by job-major over the
        // distinct machine shapes, since a scheduled job can land on any
        // leaf.
        struct AloneEntry {
            const workloads::BeProfile* job;
            const hw::MachineConfig* machine;
        };
        std::vector<AloneEntry> entries;
        std::vector<int> leaf_alone(n, -1);  // static split: leaf -> entry
        std::vector<int> variant(n, 0);      // scheduled: leaf -> machine
        size_t num_variants = 0;
        if (colocate && !scheduled) {
            for (int i = 0; i < n; ++i) {
                if (!specs[i].be.has_value()) continue;
                int found = -1;
                for (size_t e = 0; e < entries.size(); ++e) {
                    if (*entries[e].job == *specs[i].be &&
                        *entries[e].machine == specs[i].machine) {
                        found = static_cast<int>(e);
                        break;
                    }
                }
                if (found < 0) {
                    found = static_cast<int>(entries.size());
                    entries.push_back(
                        {&*specs[i].be, &specs[i].machine});
                }
                leaf_alone[i] = found;
            }
        } else if (scheduled) {
            std::vector<const hw::MachineConfig*> machines;
            for (int i = 0; i < n; ++i) {
                int found = -1;
                for (size_t v = 0; v < machines.size(); ++v) {
                    if (*machines[v] == specs[i].machine) {
                        found = static_cast<int>(v);
                        break;
                    }
                }
                if (found < 0) {
                    found = static_cast<int>(machines.size());
                    machines.push_back(&specs[i].machine);
                }
                variant[i] = found;
            }
            num_variants = machines.size();
            for (int j = 0; j < num_jobs; ++j) {
                for (size_t v = 0; v < num_variants; ++v) {
                    entries.push_back({&cfg_.be_jobs[j], machines[v]});
                }
            }
        }

        std::vector<double> alone(entries.size(), 1.0);
        std::vector<ctl::LcBwModel> models(
            colocate ? static_cast<size_t>(n) : 0);
        const std::function<void(size_t)> assemble = [&](size_t i) {
            if (i < entries.size()) {
                alone[i] = workloads::MeasureAloneRate(
                    *entries[i].machine, *entries[i].job);
            } else {
                const size_t li = i - entries.size();
                hw::MachineConfig mcfg = specs[li].machine;
                mcfg.seed = cfg_.seed * 131ull + li;
                models[li] = ctl::LcBwModel::Profile(specs[li].lc, mcfg);
            }
        };
        if (cfg_.pool != nullptr) {
            runner::ParallelFor(cfg_.pool, entries.size() + models.size(),
                                assemble);
        } else {
            runner::ParallelFor(cfg_.jobs, entries.size() + models.size(),
                                assemble);
        }

        leaves_.reserve(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            const LeafSpec& ls = specs[i];
            exp::ServerSpec spec;
            spec.machine = ls.machine;
            spec.machine.seed = cfg_.seed * 131ull + i;
            spec.lc = ls.lc;
            spec.lc_seed = spec.machine.seed ^ 0x11;
            spec.heracles = cfg_.heracles;
            if (faults != nullptr) {
                spec.faults = chaos::ResolvedFaultPlan::For(
                    *faults, fault_total, i);
                // Leaves degrade independently even under a shared
                // noise spec.
                spec.faults.seed = faults->seed * 131ull + i;
            }
            double be_alone = 1.0;
            if (colocate) {
                // Every colocated leaf runs Heracles over a pre-built
                // offline bandwidth model for its own (workload,
                // machine) pair — one model per leaf, even when leaves
                // serve different shards (Section 5.2 shows Heracles
                // tolerates that).
                spec.policy = exp::PolicyKind::kHeracles;
                spec.bw_model = &models[i];
                if (!scheduled && ls.be.has_value()) {
                    spec.be = ls.be;
                    be_alone = alone[leaf_alone[i]];
                }
            } else {
                spec.policy = exp::PolicyKind::kNoColocation;
            }

            Leaf leaf;
            leaf.queue = std::make_unique<sim::EventQueue>();
            leaf.server =
                std::make_unique<exp::ServerSim>(spec, *leaf.queue);

            const int idx = static_cast<int>(leaves_.size());
            workloads::LcApp& lc = leaf.server->lc();
            lc.SetLoad(0.0);  // rate bookkeeping only; driven externally
            lc.StartExternal();
            // Replies never cross into root state mid-epoch: they land
            // in the leaf's own outbox (thread-confined) and the root
            // merges all outboxes at the next barrier.
            lc.SetCompletionCallback(
                [this, idx](uint64_t tag, sim::Duration latency) {
                    Leaf& l = leaves_[static_cast<size_t>(idx)];
                    l.outbox.push_back({l.queue->Now(), tag, latency});
                });

            leaf.base_slo = ls.lc.slo_latency;
            leaf.be_alone = be_alone;
            if (colocate && !scheduled) leaf.pinned = ls.be;
            if (scheduled) {
                leaf.alone_by_job.resize(num_jobs);
                for (int j = 0; j < num_jobs; ++j) {
                    leaf.alone_by_job[j] =
                        alone[j * num_variants + variant[i]];
                }
            }
            leaves_.push_back(std::move(leaf));
        }

        crashed_.assign(static_cast<size_t>(n), false);
        batching_ =
            LeafBatching::Resolve(leaves_.size(), cfg_.leaf_batch);
        topo_ = MakeTopology(cfg_.topology, n, cfg_.shards,
                             cfg_.rack_size, cfg_.seed ^ 0x70B0C0DEull);
        if (scheduled) {
            scheduler_ = std::make_unique<ClusterScheduler>(
                cfg_.scheduler, num_jobs, n);
            if (cfg_.scheduler.policy == SchedulerPolicy::kPredictive) {
                // Offline fingerprint table: predicted tail fraction of
                // every (job, leaf) pair. Fingerprints are cached per
                // (machine shape, LC workload) process-wide, so this
                // costs one characterization grid per distinct pair
                // ever seen, not per scenario. Two static per-leaf
                // corrections the rig cannot see. First, headroom at
                // the trace peak: under the shared query stream a leaf
                // whose LC has a lower peak rate runs hotter relative
                // to its own capacity, and interference impact grows
                // like queueing delay — convex in utilization — so the
                // prediction scales by 1/(1 - rho) at the worst point
                // of the trace the run will actually reach (greedy
                // reacts to the slack of *now*; prediction prepares
                // for the peak). Second, a leaf granted a scaled
                // (relaxed) tail target tolerates proportionally more
                // absolute tail, shrinking its prediction.
                std::vector<std::vector<double>> predicted(
                    static_cast<size_t>(num_jobs),
                    std::vector<double>(static_cast<size_t>(n), 0.0));
                for (int i = 0; i < n; ++i) {
                    const LcFingerprint fp = FingerprintFor(
                        specs[i].machine, specs[i].lc.name);
                    const double peak_leaf_load = std::min(
                        cfg_.load_high * cfg_.lc.peak_qps /
                            std::max(specs[i].lc.peak_qps, 1.0),
                        0.95);
                    const double amp = 1.0 / (1.0 - peak_leaf_load);
                    const double scale =
                        std::max(specs[i].tail_scale, 1e-9);
                    for (int j = 0; j < num_jobs; ++j) {
                        const BePressure pressure = PressureOf(
                            specs[i].machine, cfg_.be_jobs[j]);
                        predicted[j][i] =
                            PredictTailFrac(fp, pressure) * amp / scale;
                    }
                }
                scheduler_->SetPredictions(std::move(predicted));
            }
        }
    }

    ~ClusterSim()
    {
        for (auto& leaf : leaves_) leaf.server->StopController();
    }

    /**
     * Runs the trace through the epoch engine; per-window results land
     * in the series. Each barrier interval: stage the interval's
     * arrivals into the leaf inboxes, advance every leaf (in parallel)
     * to just before the barrier instant, then do the root's barrier
     * work in the old shared queue's tie-break order — drain replies,
     * apply fault boundaries, close the SLO window, tick the scheduler.
     */
    void
    Run(sim::Duration duration, sim::Duration warmup)
    {
        warmup_end_ = warmup;
        // A fault window opening at t = 0 acts before the first epoch
        // (its one-shot had the smallest insertion seq on the old
        // shared queue).
        ApplyFaultBoundaries(0);
        const BarrierClock clock = BarrierClock::Build(
            duration, cfg_.root_window,
            scheduler_ != nullptr ? cfg_.scheduler.period : 0,
            cluster_faults_);
        epochs_ += clock.size();

        runner::Pool* pool = cfg_.pool;
        std::unique_ptr<runner::Pool> owned;
        if (pool == nullptr && cfg_.jobs > 1 && leaves_.size() > 1) {
            owned = std::make_unique<runner::Pool>(std::min(
                cfg_.jobs, static_cast<int>(leaves_.size())));
            pool = owned.get();
        }
        for (const sim::SimTime t : clock.barriers) {
            for (auto& leaf : leaves_) leaf.inbox.clear();
            PumpArrivals(/*limit=*/t);
            FanOutLeaves(pool, t, /*inclusive=*/false);
            DrainOutboxes();
            ApplyFaultBoundaries(t);
            if (t % cfg_.root_window == 0) CloseWindow(t);
            if (scheduler_ != nullptr && t % cfg_.scheduler.period == 0) {
                SchedulerTick(t);
            }
        }
        // The shared queue's RunFor(duration) was inclusive, with leaf
        // events at the final instant firing *after* the root's — run
        // them (and any arrival at exactly `duration`) last.
        for (auto& leaf : leaves_) leaf.inbox.clear();
        PumpArrivals(duration + 1);
        FanOutLeaves(pool, duration, /*inclusive=*/true);
    }

    /**
     * Centralized controller step: convert root-level slack into
     * per-leaf tail targets between each leaf's static base and
     * base * central_max_boost.
     */
    void
    AdjustLeafTargets(double window_mean)
    {
        if (!cfg_.central_controller || target_ <= 0) return;
        const double root_slack =
            (static_cast<double>(target_) - window_mean) /
            static_cast<double>(target_);
        const double boost = std::clamp(
            1.0 + cfg_.central_gain * root_slack, 1.0,
            cfg_.central_max_boost);
        for (auto& leaf : leaves_) {
            leaf.lc().SetSloLatency(static_cast<sim::Duration>(
                static_cast<double>(leaf.base_slo) * boost));
        }
    }

    const sim::TimeSeries& latency_series() const { return latency_; }

    /** Mean of the leaves' overall tail latencies (for target setting). */
    sim::Duration
    MeanLeafTail() const
    {
        double sum = 0.0;
        for (const auto& leaf : leaves_) {
            sum += static_cast<double>(leaf.lc().WorstReportTail());
        }
        return static_cast<sim::Duration>(sum / leaves_.size());
    }

    /** One leaf's overall worst report-window tail. */
    sim::Duration
    LeafTail(int i) const
    {
        return leaves_[static_cast<size_t>(i)].lc().WorstReportTail();
    }

    const sim::TimeSeries& emu_series() const { return emu_; }
    const sim::TimeSeries& load_series() const { return load_; }
    sim::Duration worst_window() const { return worst_window_; }

    /** Barrier intervals executed (across Run calls). */
    uint64_t epochs() const { return epochs_; }

    /** Events executed across every leaf's queue. */
    uint64_t
    leaf_events() const
    {
        uint64_t total = 0;
        for (const auto& leaf : leaves_) total += leaf.queue->executed();
        return total;
    }

    /** Sums per-leaf controller stats and actuation counts into @p r. */
    void
    AccumulateActivity(ClusterResult& r) const
    {
        for (const auto& leaf : leaves_) {
            if (const ctl::HeraclesController* c =
                    leaf.server->controller()) {
                const ctl::ControllerStats& s = c->stats();
                r.polls += s.polls;
                r.be_enables += s.be_enables;
                r.be_disables +=
                    s.be_disables_slack + s.be_disables_load;
                r.core_shrinks += s.core_shrinks;
            }
            const platform::ActuationCounts& a =
                leaf.server->platform().actuations();
            r.actuations.set_cores += a.set_cores;
            r.actuations.set_ways += a.set_ways;
            r.actuations.set_freq_cap += a.set_freq_cap;
            r.actuations.set_net_ceil += a.set_net_ceil;
            if (const chaos::InvariantChecker* c =
                    leaf.server->checker()) {
                r.invariant_violations += c->count();
            }
            if (const chaos::FaultyPlatform* f = leaf.server->faulty()) {
                r.faulted_ops += f->faulted_ops();
            }
        }
        r.invariant_violations += cluster_violations_;
        if (scheduler_ != nullptr) {
            r.be_placements = scheduler_->stats().placements;
            r.be_migrations = scheduler_->stats().migrations;
            r.be_would_placements = scheduler_->stats().would_placements;
            r.be_would_migrations = scheduler_->stats().would_migrations;
        }
    }

  private:
    /** One staged root → leaf query injection. */
    struct Arrival {
        sim::SimTime when;
        uint64_t tag;
    };

    /** One leaf → root completion record. */
    struct Reply {
        sim::SimTime when;
        uint64_t tag;
        sim::Duration latency;
    };

    struct Leaf {
        /** The leaf's own clock: the partitioned engine's unit of
         *  parallelism. Owned here so ServerSim can keep borrowing. */
        std::unique_ptr<sim::EventQueue> queue;
        std::unique_ptr<exp::ServerSim> server;
        sim::Duration base_slo = 0;  ///< Tail target at assembly.
        double be_alone = 1.0;       ///< Pinned job's alone rate.
        /** Alone rate of every queued job on this machine shape. */
        std::vector<double> alone_by_job;
        int job = -1;  ///< Queued-job index hosted here (-1 = none).
        /** Statically-pinned BE profile (restarts after a crash). */
        std::optional<workloads::BeProfile> pinned;

        /** This epoch's staged arrivals (root-written at the barrier,
         *  injected by the leaf's own chain of events). */
        std::vector<Arrival> inbox;
        size_t inbox_pos = 0;
        /** Completions since the last barrier (leaf-thread-confined). */
        std::vector<Reply> outbox;

        workloads::LcApp& lc() const { return server->lc(); }
        workloads::BeTask* be() const { return server->be(); }
    };

    struct Query {
        int remaining = 0;
        sim::Duration max_latency = 0;
    };

    /**
     * Generates and dispatches every arrival strictly before @p limit.
     * Reproduces the old self-rescheduling query event exactly: the gap
     * after an arrival at t is drawn (one Exponential per arrival, plus
     * one priming draw) from the load at t, so the RNG stream and every
     * arrival instant are byte-identical to the serial implementation.
     */
    void
    PumpArrivals(sim::SimTime limit)
    {
        if (!primed_) {
            next_arrival_ = gen_time_ + NextGap();
            primed_ = true;
        }
        while (next_arrival_ < limit) {
            DispatchArrival(next_arrival_);
            gen_time_ = next_arrival_;
            next_arrival_ = gen_time_ + NextGap();
        }
    }

    sim::Duration
    NextGap()
    {
        const double load = trace_.LoadAt(gen_time_);
        const double rate = std::max(load * cfg_.lc.peak_qps, 1.0);
        return std::max<sim::Duration>(
            1, sim::Seconds(rng_.Exponential(1.0 / rate)));
    }

    void
    DispatchArrival(sim::SimTime when)
    {
        const uint64_t tag = next_tag_++;
        topo_->TouchedLeaves(tag, &touched_);
        // Crashed leaves answer nothing; the root combines whatever the
        // surviving replicas return. A query whose every touched leaf
        // is dark is lost (an error response, outside the latency
        // statistics). Crash state only changes at barriers, so the
        // liveness seen here matches what the arrival would have seen
        // firing inside the epoch.
        int alive = 0;
        for (int li : touched_) {
            if (!crashed_[static_cast<size_t>(li)]) ++alive;
        }
        if (alive == 0) return;
        pending_[tag] = Query{alive, 0};
        for (int li : touched_) {
            if (crashed_[static_cast<size_t>(li)]) continue;
            leaves_[static_cast<size_t>(li)].inbox.push_back({when, tag});
        }
    }

    /**
     * Schedules the leaf's next staged injection. Each injection event
     * schedules its successor when it fires, mirroring the old
     * self-rescheduling arrival's insertion order inside the leaf's
     * queue (inject, then schedule the next — so a request's completion
     * event still sorts ahead of the next arrival at equal times).
     */
    void
    ScheduleInjection(Leaf* leaf)
    {
        const Arrival& next = leaf->inbox[leaf->inbox_pos];
        leaf->queue->ScheduleAt(next.when, [this, leaf] {
            const Arrival cur = leaf->inbox[leaf->inbox_pos++];
            leaf->lc().InjectRequest(cur.tag);
            if (leaf->inbox_pos < leaf->inbox.size()) {
                ScheduleInjection(leaf);
            }
        });
    }

    /** Advances one leaf to the barrier at @p until (exclusive for all
     *  interior barriers; inclusive only for the final instant). Runs
     *  on a pool thread: touches nothing but this leaf's state. */
    void
    StepLeaf(Leaf& leaf, sim::SimTime until, bool inclusive)
    {
        leaf.inbox_pos = 0;
        if (!leaf.inbox.empty()) ScheduleInjection(&leaf);
        if (inclusive) {
            leaf.queue->RunUntil(until);
        } else {
            leaf.queue->RunUntilBefore(until);
        }
    }

    /**
     * Fans every leaf to the barrier at @p until, one pool task per leaf
     * batch. Batches are submitted heaviest-first — ranked by cumulative
     * executed events, the best deterministic proxy for how much work
     * the next interval holds — so the FIFO pool starts the long poles
     * before the stragglers instead of discovering them last. Both the
     * batch mapping and the rank are pure functions of simulation state,
     * never of thread count, and batch execution order cannot change
     * results (leaves are thread-confined within an epoch).
     */
    void
    FanOutLeaves(runner::Pool* pool, sim::SimTime until, bool inclusive)
    {
        const size_t nb = batching_.batches();
        if (nb <= 1 || pool == nullptr || pool->threads() <= 1) {
            for (auto& leaf : leaves_) StepLeaf(leaf, until, inclusive);
            return;
        }
        batch_work_.assign(nb, 0);
        for (size_t i = 0; i < leaves_.size(); ++i) {
            batch_work_[batching_.BatchOf(i)] +=
                leaves_[i].queue->executed();
        }
        batch_order_.resize(nb);
        for (size_t b = 0; b < nb; ++b) batch_order_[b] = b;
        std::stable_sort(batch_order_.begin(), batch_order_.end(),
                         [this](size_t a, size_t b) {
                             return batch_work_[a] > batch_work_[b];
                         });
        runner::ParallelFor(pool, batch_order_, [&](size_t b) {
            const size_t end = batching_.BatchEnd(b);
            for (size_t i = batching_.BatchBegin(b); i < end; ++i) {
                StepLeaf(leaves_[i], until, inclusive);
            }
        });
    }

    /**
     * Merges every leaf's completions since the last barrier and applies
     * them to the root's fan-out bookkeeping in completion-time order
     * (stable by leaf index for equal stamps — a fixed order no thread
     * schedule can perturb), reproducing the serial implementation's
     * global completion order and its floating-point window summation.
     *
     * Each outbox is already time-sorted (a leaf appends at its own
     * monotone completion instants), so a k-way merge over per-leaf
     * cursors visits replies in exactly the order the old concatenate +
     * stable_sort produced — equal stamps break by leaf index, matching
     * the leaf-major concatenation — without copying every reply into a
     * scratch buffer and re-sorting per barrier.
     */
    void
    DrainOutboxes()
    {
        merge_heap_.clear();
        merge_pos_.assign(leaves_.size(), 0);
        for (size_t li = 0; li < leaves_.size(); ++li) {
            if (!leaves_[li].outbox.empty()) merge_heap_.push_back(li);
        }
        // "Greater" by (when, leaf index): the std heap is a max-heap,
        // so this comparator pops the earliest reply first.
        const auto later = [this](size_t a, size_t b) {
            const Reply& ra = leaves_[a].outbox[merge_pos_[a]];
            const Reply& rb = leaves_[b].outbox[merge_pos_[b]];
            return ra.when != rb.when ? ra.when > rb.when : a > b;
        };
        std::make_heap(merge_heap_.begin(), merge_heap_.end(), later);
        while (!merge_heap_.empty()) {
            std::pop_heap(merge_heap_.begin(), merge_heap_.end(), later);
            const size_t li = merge_heap_.back();
            merge_heap_.pop_back();
            const Reply& r = leaves_[li].outbox[merge_pos_[li]++];
            HandleReply(r.tag, r.latency);
            if (merge_pos_[li] < leaves_[li].outbox.size()) {
                merge_heap_.push_back(li);
                std::push_heap(merge_heap_.begin(), merge_heap_.end(),
                               later);
            }
        }
        for (auto& leaf : leaves_) leaf.outbox.clear();
    }

    void
    HandleReply(uint64_t tag, sim::Duration latency)
    {
        auto it = pending_.find(tag);
        if (it == pending_.end()) return;
        Query& q = it->second;
        q.max_latency = std::max(q.max_latency, latency);
        if (--q.remaining == 0) {
            const sim::Duration root_latency =
                q.max_latency +
                2 * cfg_.hop * topo_->HopLevels();
            window_sum_ += static_cast<double>(root_latency);
            ++window_count_;
            pending_.erase(it);
        }
    }

    /** Applies every cluster-fault boundary landing exactly at @p t, in
     *  plan order with begin before end per fault — the insertion order
     *  (and so the firing order) of their one-shots on the old shared
     *  queue. */
    void
    ApplyFaultBoundaries(sim::SimTime t)
    {
        for (const chaos::TimedFault& f : cluster_faults_) {
            if (f.kind != chaos::FaultKind::kLeafCrash) continue;
            if (f.begin == t) CrashLeaf(f.leaf);
            if (f.end == t) RecoverLeaf(f.leaf);
        }
    }

    /** Leaf crash: drains in-flight work, then goes dark; any hosted BE
     *  job dies with it (queued jobs return to the scheduler). */
    void
    CrashLeaf(int li)
    {
        crashed_[static_cast<size_t>(li)] = true;
        Leaf& leaf = leaves_[static_cast<size_t>(li)];
        if (leaf.job >= 0) {
            leaf.server->DetachBeJob();
            scheduler_->ReleaseJob(leaf.job);
            leaf.job = -1;
        } else if (leaf.be() != nullptr) {
            leaf.server->DetachBeJob();
        }
    }

    /** Leaf recovery: rejoins the fan-out; a pinned BE job restarts
     *  with the machine (scheduled jobs come back via the scheduler). */
    void
    RecoverLeaf(int li)
    {
        crashed_[static_cast<size_t>(li)] = false;
        Leaf& leaf = leaves_[static_cast<size_t>(li)];
        if (leaf.pinned.has_value() && leaf.be() == nullptr) {
            leaf.server->AttachBeJob(*leaf.pinned);
        }
    }

    void
    CloseWindow(sim::SimTime now)
    {
        if (window_count_ > 0 && now > warmup_end_) {
            const double mean = window_sum_ / window_count_;
            AdjustLeafTargets(mean);
            latency_.Add(now, target_ > 0
                                  ? mean / static_cast<double>(target_)
                                  : mean);
            worst_window_ = std::max(
                worst_window_, static_cast<sim::Duration>(mean));

            double emu = 0.0;
            for (auto& leaf : leaves_) {
                double e = leaf.lc().ServedFraction();
                if (workloads::BeTask* task = leaf.be()) {
                    const double alone =
                        leaf.job >= 0 ? leaf.alone_by_job[leaf.job]
                                      : leaf.be_alone;
                    e += task->CurrentRate() / alone;
                }
                emu += e;
            }
            emu_.Add(now, emu / leaves_.size());
            load_.Add(now, trace_.LoadAt(now));
        }
        window_sum_ = 0.0;
        window_count_ = 0;
    }

    /** One cluster-scheduler period: export slack, apply the moves. */
    void
    SchedulerTick(sim::SimTime now)
    {
        std::vector<ClusterScheduler::LeafState> states(leaves_.size());
        for (size_t i = 0; i < leaves_.size(); ++i) {
            ClusterScheduler::LeafState& s = states[i];
            s.hosts_job = leaves_[i].job >= 0;
            s.crashed = crashed_[i];
            if (const ctl::HeraclesController* c =
                    leaves_[i].server->controller()) {
                const ctl::SlackExport e = c->ExportSlack();
                s.slack = e.slack;
                s.be_enabled = e.be_enabled;
                s.in_cooldown = e.in_cooldown;
                s.has_signal = e.has_signal;
            }
            // A slack-freeze fault wedges the leaf's export as the
            // scheduler first saw it inside the window — the stale-
            // telemetry regime CPI2 warns about. Liveness (crashed /
            // hosts_job) is cluster-side state and stays fresh.
            for (size_t fi = 0; fi < cluster_faults_.size(); ++fi) {
                const chaos::TimedFault& f = cluster_faults_[fi];
                if (f.kind != chaos::FaultKind::kSlackFreeze ||
                    f.leaf != static_cast<int>(i) || !f.ActiveAt(now)) {
                    continue;
                }
                if (!frozen_[fi].captured) {
                    frozen_[fi] = {true, s.slack, s.be_enabled,
                                   s.in_cooldown, s.has_signal};
                } else {
                    s.slack = frozen_[fi].slack;
                    s.be_enabled = frozen_[fi].be_enabled;
                    s.in_cooldown = frozen_[fi].in_cooldown;
                    s.has_signal = frozen_[fi].has_signal;
                }
            }
        }
        for (const ClusterScheduler::Move& m :
             scheduler_->Tick(states)) {
            if (crashed_[static_cast<size_t>(m.to)]) {
                // The cluster-layer safety invariant: jobs never land
                // on a leaf the scheduler was told is down.
                std::fprintf(stderr,
                             "[invariant] no-placement-on-crashed-leaf "
                             "violated at t=%.1fs: job %d -> leaf %d\n",
                             sim::ToSeconds(now), m.job, m.to);
                ++cluster_violations_;
            }
            if (m.from >= 0) {
                Leaf& src = leaves_[static_cast<size_t>(m.from)];
                src.server->DetachBeJob();
                src.job = -1;
            }
            Leaf& dst = leaves_[static_cast<size_t>(m.to)];
            dst.server->AttachBeJob(
                cfg_.be_jobs[static_cast<size_t>(m.job)]);
            dst.job = m.job;
        }
    }

    /** One slack-freeze fault's captured export. */
    struct FrozenExport {
        bool captured = false;
        double slack = 1.0;
        bool be_enabled = false;
        bool in_cooldown = false;
        bool has_signal = false;
    };

    ClusterConfig cfg_;
    const sim::LoadTrace& trace_;
    sim::Duration target_;
    sim::Rng rng_;
    std::vector<Leaf> leaves_;
    std::unique_ptr<Topology> topo_;
    std::unique_ptr<ClusterScheduler> scheduler_;
    std::vector<int> touched_;  // per-query scratch

    /** Deterministic leaf → pool-task mapping for the barrier fan-out. */
    LeafBatching batching_;
    std::vector<uint64_t> batch_work_;   // per-barrier scratch
    std::vector<size_t> batch_order_;    // per-barrier scratch
    std::vector<size_t> merge_heap_;     // outbox k-way merge scratch
    std::vector<size_t> merge_pos_;      // per-leaf outbox cursors

    std::vector<chaos::TimedFault> cluster_faults_;
    std::vector<FrozenExport> frozen_;  // aligned with cluster_faults_
    std::vector<bool> crashed_;
    uint64_t cluster_violations_ = 0;

    // Root arrival generator (the old self-rescheduling query event).
    uint64_t next_tag_ = 1;
    sim::SimTime gen_time_ = 0;      ///< Instant the next gap is drawn at.
    sim::SimTime next_arrival_ = 0;  ///< Lookahead arrival instant.
    bool primed_ = false;

    std::unordered_map<uint64_t, Query> pending_;
    double window_sum_ = 0.0;
    uint64_t window_count_ = 0;
    sim::SimTime warmup_end_ = 0;
    uint64_t epochs_ = 0;

    sim::TimeSeries latency_;
    sim::TimeSeries emu_;
    sim::TimeSeries load_;
    sim::Duration worst_window_ = 0;
};

}  // namespace

ClusterExperiment::ClusterExperiment(ClusterConfig cfg) : cfg_(std::move(cfg))
{
}

const std::vector<LeafSpec>&
ClusterExperiment::ResolveSpecs()
{
    if (!specs_.empty()) return specs_;
    if (!cfg_.leaf_specs.empty()) {
        specs_ = cfg_.leaf_specs;
        return specs_;
    }
    // The paper's uniform cluster: identical leaves, brain pinned to the
    // even ones and streetview to the odd ones.
    specs_.reserve(static_cast<size_t>(cfg_.leaves));
    for (int i = 0; i < cfg_.leaves; ++i) {
        LeafSpec s;
        s.machine = cfg_.machine;
        s.lc = cfg_.lc;
        s.be = i % 2 == 0 ? workloads::Brain() : workloads::Streetview();
        specs_.push_back(std::move(s));
    }
    return specs_;
}

runner::Pool*
ClusterExperiment::SharedPool()
{
    if (cfg_.pool != nullptr) return cfg_.pool;
    if (pool_ == nullptr && cfg_.jobs > 1 && ResolveSpecs().size() > 1) {
        pool_ = std::make_unique<runner::Pool>(std::min(
            cfg_.jobs, static_cast<int>(ResolveSpecs().size())));
    }
    return pool_.get();
}

sim::Duration
ClusterExperiment::MeasureTarget()
{
    if (target_ > 0) return target_;
    const std::vector<LeafSpec>& specs = ResolveSpecs();
    sim::ConstantTrace trace(cfg_.target_load);
    ClusterConfig run_cfg = cfg_;
    run_cfg.pool = SharedPool();
    ClusterSim sim(run_cfg, specs, trace, /*colocate=*/false,
                   /*target=*/0);
    sim.Run(cfg_.target_run, cfg_.run_warmup);
    // The worst mu/30s window at the defining load is the SLO target,
    // with a small confidence margin: the defining run observes only a
    // few windows, so its sample maximum understates the true worst
    // window of a long run at the same load.
    const sim::TimeSeries& s = sim.latency_series();
    target_ = s.size() > 0 ? static_cast<sim::Duration>(1.05 * s.MaxValue())
                           : cfg_.lc.slo_latency;
    // Per-leaf tail targets from the same run: Heracles on each leaf
    // defends the tail observed at the defining load — the uniform mean
    // leaf tail by default (Section 5.3), each leaf's own tail under
    // per_leaf_targets, scaled/overridden by the leaf's spec.
    const sim::Duration uniform = sim.MeanLeafTail();
    leaf_targets_.assign(specs.size(), 0);
    double sum = 0.0;
    for (size_t i = 0; i < specs.size(); ++i) {
        sim::Duration derived = cfg_.per_leaf_targets
                                    ? sim.LeafTail(static_cast<int>(i))
                                    : uniform;
        if (derived <= 0) derived = specs[i].lc.slo_latency;
        const sim::Duration t =
            specs[i].tail_target_override > 0
                ? specs[i].tail_target_override
                : static_cast<sim::Duration>(
                      static_cast<double>(derived) *
                      specs[i].tail_scale);
        leaf_targets_[i] = t;
        sum += static_cast<double>(t);
    }
    leaf_target_ = static_cast<sim::Duration>(sum / specs.size());
    return target_;
}

sim::Duration
ClusterExperiment::LeafTarget()
{
    MeasureTarget();
    return leaf_target_;
}

const std::vector<sim::Duration>&
ClusterExperiment::LeafTargets()
{
    MeasureTarget();
    return leaf_targets_;
}

ClusterResult
ClusterExperiment::Run()
{
    MeasureTarget();
    std::unique_ptr<sim::LoadTrace> trace;
    if (cfg_.flash_crowd) {
        // The crowd arrives a quarter into the post-warmup window so
        // both the eviction and the recovery land in the statistics.
        trace = std::make_unique<sim::FlashCrowdTrace>(
            cfg_.duration, cfg_.load_low, cfg_.load_high,
            /*onset=*/cfg_.run_warmup +
                (cfg_.duration - cfg_.run_warmup) / 4,
            /*ramp=*/sim::Seconds(10), /*hold=*/sim::Seconds(40),
            /*decay=*/sim::Seconds(60), /*jitter=*/0.02, cfg_.seed);
    } else {
        trace = std::make_unique<sim::DiurnalTrace>(
            cfg_.duration, cfg_.load_low, cfg_.load_high, 0.02,
            cfg_.seed);
    }
    // Every leaf's Heracles defends its derived tail target.
    std::vector<LeafSpec> run_specs = ResolveSpecs();
    for (size_t i = 0; i < run_specs.size(); ++i) {
        run_specs[i].lc.slo_latency = leaf_targets_[i];
    }
    ClusterConfig run_cfg = cfg_;
    run_cfg.pool = SharedPool();
    ClusterSim sim(run_cfg, run_specs, *trace, cfg_.colocate, target_,
                   cfg_.faults.empty() ? nullptr : &cfg_.faults,
                   cfg_.duration);
    sim.Run(cfg_.duration, cfg_.run_warmup);

    ClusterResult r;
    sim.AccumulateActivity(r);
    r.leaf_target = leaf_target_;
    r.latency_frac = sim.latency_series();
    r.emu = sim.emu_series();
    r.load = sim.load_series();
    r.worst_latency_frac = r.latency_frac.MaxValue();
    r.slo_violated = r.worst_latency_frac > 1.0;
    r.avg_emu = r.emu.MeanValue();
    r.min_emu = r.emu.MinValue();
    r.target = target_;
    r.epochs = sim.epochs();
    r.leaf_events = sim.leaf_events();
    return r;
}

}  // namespace heracles::cluster
