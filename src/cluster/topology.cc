#include "cluster/topology.h"

#include "sim/log.h"

namespace heracles::cluster {
namespace {

/** SplitMix64 finalizer: a cheap, well-mixed pure hash. */
uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

std::string
TopologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::kFullFanout: return "full-fanout";
      case TopologyKind::kSharded: return "sharded";
    }
    return "?";
}

void
FullFanoutTopology::TouchedLeaves(uint64_t /*tag*/,
                                  std::vector<int>* out) const
{
    out->clear();
    for (int i = 0; i < leaves_; ++i) out->push_back(i);
}

ShardedTopology::ShardedTopology(int leaves, int shards, uint64_t seed)
    : leaves_(leaves), shards_(shards), seed_(seed)
{
    HERACLES_CHECK_MSG(shards >= 1 && shards <= leaves,
                       "sharded topology needs 1 <= shards <= leaves, got "
                           << shards << " shards over " << leaves
                           << " leaves");
}

int
ShardedTopology::Replicas(int shard) const
{
    // Leaf l belongs to shard l % shards.
    return (leaves_ - shard + shards_ - 1) / shards_;
}

void
ShardedTopology::TouchedLeaves(uint64_t tag, std::vector<int>* out) const
{
    out->clear();
    for (int shard = 0; shard < shards_; ++shard) {
        const int replicas = Replicas(shard);
        const uint64_t h =
            Mix64(seed_ ^ (tag * 0x2545f4914f6cdd1dull) ^
                  static_cast<uint64_t>(shard) * 0x9e3779b9ull);
        const int replica = static_cast<int>(h % replicas);
        out->push_back(shard + replica * shards_);
    }
}

std::unique_ptr<Topology>
MakeTopology(TopologyKind kind, int leaves, int shards, uint64_t seed)
{
    if (kind == TopologyKind::kFullFanout) {
        return std::make_unique<FullFanoutTopology>(leaves);
    }
    return std::make_unique<ShardedTopology>(
        leaves, shards > 0 ? shards : leaves, seed);
}

}  // namespace heracles::cluster
