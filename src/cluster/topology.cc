#include "cluster/topology.h"

#include <algorithm>

#include "sim/log.h"

namespace heracles::cluster {
namespace {

/** SplitMix64 finalizer: a cheap, well-mixed pure hash. */
uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

std::string
TopologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::kFullFanout: return "full-fanout";
      case TopologyKind::kSharded: return "sharded";
      case TopologyKind::kHierarchical: return "hierarchical";
    }
    return "?";
}

void
FullFanoutTopology::TouchedLeaves(uint64_t /*tag*/,
                                  std::vector<int>* out) const
{
    out->clear();
    for (int i = 0; i < leaves_; ++i) out->push_back(i);
}

ShardedTopology::ShardedTopology(int leaves, int shards, uint64_t seed)
    : leaves_(leaves), shards_(shards), seed_(seed)
{
    HERACLES_CHECK_MSG(shards >= 1 && shards <= leaves,
                       "sharded topology needs 1 <= shards <= leaves, got "
                           << shards << " shards over " << leaves
                           << " leaves");
}

int
ShardedTopology::Replicas(int shard) const
{
    // Leaf l belongs to shard l % shards.
    return (leaves_ - shard + shards_ - 1) / shards_;
}

void
ShardedTopology::TouchedLeaves(uint64_t tag, std::vector<int>* out) const
{
    out->clear();
    for (int shard = 0; shard < shards_; ++shard) {
        const int replicas = Replicas(shard);
        const uint64_t h =
            Mix64(seed_ ^ (tag * 0x2545f4914f6cdd1dull) ^
                  static_cast<uint64_t>(shard) * 0x9e3779b9ull);
        const int replica = static_cast<int>(h % replicas);
        out->push_back(shard + replica * shards_);
    }
}

HierarchicalTopology::HierarchicalTopology(int leaves, int rack_size,
                                           uint64_t seed)
    : leaves_(leaves),
      rack_size_(std::min(rack_size, leaves)),
      racks_((leaves + rack_size_ - 1) / rack_size_),
      seed_(seed)
{
    HERACLES_CHECK_MSG(leaves >= 1 && rack_size >= 1,
                       "hierarchical topology needs leaves >= 1 and "
                       "rack_size >= 1, got "
                           << leaves << " leaves, racks of " << rack_size);
}

int
HierarchicalTopology::RackMembers(int rack) const
{
    return std::min(rack_size_, leaves_ - rack * rack_size_);
}

void
HierarchicalTopology::TouchedLeaves(uint64_t tag,
                                    std::vector<int>* out) const
{
    out->clear();
    for (int rack = 0; rack < racks_; ++rack) {
        const int members = RackMembers(rack);
        const uint64_t h =
            Mix64(seed_ ^ (tag * 0x2545f4914f6cdd1dull) ^
                  static_cast<uint64_t>(rack) * 0x9e3779b9ull);
        const int member = static_cast<int>(h % members);
        out->push_back(rack * rack_size_ + member);
    }
}

std::unique_ptr<Topology>
MakeTopology(TopologyKind kind, int leaves, int shards, int rack_size,
             uint64_t seed)
{
    switch (kind) {
      case TopologyKind::kFullFanout:
        return std::make_unique<FullFanoutTopology>(leaves);
      case TopologyKind::kSharded:
        return std::make_unique<ShardedTopology>(
            leaves, shards > 0 ? shards : leaves, seed);
      case TopologyKind::kHierarchical:
        return std::make_unique<HierarchicalTopology>(leaves, rack_size,
                                                      seed);
    }
    HERACLES_FATAL("unhandled topology kind");
}

}  // namespace heracles::cluster
