/**
 * @file
 * Interference fingerprints for predictive BE placement.
 *
 * The predictive scheduler tier needs to answer "how badly would BE job
 * b hurt the LC workload on leaf l?" *before* placing b — the question
 * Bubble-Up answers with a bubble score and Paragon/Quasar answer with
 * collaborative filtering over microbenchmark reactions. We distill the
 * same signal from the rig this repo already has: the Section 3.2
 * characterization grid (exp/characterization.h).
 *
 * Offline, per (machine shape × LC workload), a short fixed-seed grid
 * run measures the LC tail fraction alone and against one saturating
 * antagonist per shared resource. The deltas become a five-axis
 * *sensitivity vector* (LLC, DRAM, HyperThread, power, network) — "one
 * unit of pressure on axis a costs this much tail". Each BE profile is
 * scored analytically into a *pressure vector* on the same axes,
 * normalized by the machine's capacity. The predicted tail fraction of
 * a (job, leaf) pair is then
 *
 *     baseline + sum_a sensitivity[a] * pressure[a]
 *
 * — the classic bubble-score dot product. The absolute value is rough
 * (real colocation runs under Heracles' isolation, the grid runs
 * without), but placement only needs the *ranking* of leaves per job,
 * and the ranking is exactly what the axes capture: a DRAM-hungry job
 * belongs on the leaf whose LC tolerates DRAM pressure.
 *
 * Grid runs are deterministic (fixed internal seed, fixed probe loads)
 * and cached process-wide keyed on (machine shape sans seed, canonical
 * LC name), so assembling a hundred scenarios measures each distinct
 * (shape, workload) pair exactly once.
 */
#ifndef HERACLES_CLUSTER_FINGERPRINT_H
#define HERACLES_CLUSTER_FINGERPRINT_H

#include <array>
#include <string>

#include "hw/config.h"
#include "sim/time.h"
#include "workloads/be_task.h"
#include "workloads/lc_app.h"

namespace heracles::cluster {

/** Shared-resource axes of the fingerprint space (fixed order). */
enum class FingerprintAxis {
    kLlc = 0,      ///< Last-level cache capacity (stream-LLC-big bubble).
    kDram,         ///< Memory bandwidth (stream-DRAM bubble).
    kHyperThread,  ///< SMT sibling contention (spinloop bubble).
    kPower,        ///< Socket power / turbo headroom (power-virus bubble).
    kNetwork,      ///< Egress bandwidth (iperf bubble).
};

inline constexpr int kFingerprintAxes = 5;

/** Human-readable axis name ("llc", "dram", ...). */
std::string FingerprintAxisName(FingerprintAxis axis);

/**
 * Measured reaction of one LC workload on one machine shape: solo tail
 * fraction plus the extra tail one full unit of pressure costs on each
 * axis (clamped non-negative — a bubble can't help).
 */
struct LcFingerprint {
    double baseline = 0.0;
    std::array<double, kFingerprintAxes> sensitivity{};
};

/** Analytic per-axis pressure a BE job exerts, each in [0, 1]. */
struct BePressure {
    std::array<double, kFingerprintAxes> pressure{};
};

/**
 * Runs the characterization grid and distills the fingerprint —
 * deterministic for a given (machine shape, lc); the machine's seed is
 * ignored (the rig re-seeds internally). Uncached; the windows are
 * parameters only so unit tests can shrink them — production callers
 * go through FingerprintFor().
 */
LcFingerprint MeasureLcFingerprint(const hw::MachineConfig& machine,
                                   const workloads::LcParams& lc,
                                   sim::Duration warmup = sim::Seconds(10),
                                   sim::Duration measure = sim::Seconds(30));

/**
 * Cached fingerprint lookup. @p lc_name is resolved to the *canonical*
 * workload parameters (workloads::AllLcWorkloads), so leaves that carry
 * per-leaf SLO overrides or scenario-specific seeds still share one
 * cache entry; the key is the machine shape with the seed excluded.
 * Thread-safe; the first caller per key pays the grid run. Aborts on an
 * unknown workload name.
 */
LcFingerprint FingerprintFor(const hw::MachineConfig& machine,
                             const std::string& lc_name);

/**
 * Scores a BE profile's demand into axis pressures, normalized by the
 * machine's per-socket capacity (a "1.0" saturates the axis the way the
 * grid's antagonist does).
 */
BePressure PressureOf(const hw::MachineConfig& machine,
                      const workloads::BeProfile& be);

/** The bubble-score dot product: predicted LC tail fraction if a job
 *  with @p be pressure ran on a leaf with @p fp reactions. */
double PredictTailFrac(const LcFingerprint& fp, const BePressure& be);

}  // namespace heracles::cluster

#endif  // HERACLES_CLUSTER_FINGERPRINT_H
