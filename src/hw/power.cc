#include "hw/power.h"

#include <algorithm>
#include <cmath>

namespace heracles::hw {
namespace {

/** Socket power with frequencies scaled by @p lambda. */
double
PowerAt(const MachineConfig& cfg, const std::vector<CorePowerRequest>& cores,
        double turbo, double lambda, std::vector<double>* freqs)
{
    double total = cfg.uncore_w;
    for (size_t i = 0; i < cores.size(); ++i) {
        const auto& c = cores[i];
        double f = lambda * turbo;
        if (c.dvfs_cap_ghz > 0.0) f = std::min(f, c.dvfs_cap_ghz);
        f = std::max(f, cfg.min_ghz);
        // Round down to the DVFS step grid, like real P-states.
        f = std::floor(f / cfg.dvfs_step_ghz) * cfg.dvfs_step_ghz;
        f = std::max(f, cfg.min_ghz);
        if (freqs) (*freqs)[i] = f;
        total += cfg.core_idle_w +
                 c.busy * CoreDynPowerW(cfg, f, c.intensity);
    }
    return total;
}

}  // namespace

double
MaxTurboGhz(const MachineConfig& cfg, int active_cores)
{
    if (active_cores < 1) active_cores = 1;
    const double f =
        cfg.turbo_1c_ghz - cfg.turbo_slope_ghz * (active_cores - 1);
    return std::max(f, cfg.nominal_ghz);
}

double
CoreDynPowerW(const MachineConfig& cfg, double f_ghz, double intensity)
{
    return cfg.dyn_coeff_w * intensity * std::pow(f_ghz, cfg.dyn_exp);
}

PowerOutcome
ResolvePower(const MachineConfig& cfg,
             const std::vector<CorePowerRequest>& cores)
{
    PowerOutcome out;
    out.freq_ghz.resize(cores.size(), cfg.min_ghz);

    int active = 0;
    for (const auto& c : cores) {
        if (c.busy > 0.05) ++active;
    }
    const double turbo = MaxTurboGhz(cfg, active);

    // Fast path: full speed fits in TDP.
    if (PowerAt(cfg, cores, turbo, 1.0, &out.freq_ghz) <= cfg.tdp_w) {
        out.socket_power_w = PowerAt(cfg, cores, turbo, 1.0, nullptr);
        return out;
    }

    // Bisect the throttle scale. Power is monotone in lambda. Even at the
    // floor the socket may exceed TDP (every core is already at f_min);
    // real RAPL behaves the same way over short windows.
    out.throttled = true;
    double lo = cfg.min_ghz / turbo, hi = 1.0;
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (PowerAt(cfg, cores, turbo, mid, nullptr) > cfg.tdp_w) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    out.socket_power_w = PowerAt(cfg, cores, turbo, lo, &out.freq_ghz);
    return out;
}

}  // namespace heracles::hw
