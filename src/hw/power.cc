#include "hw/power.h"

#include <algorithm>
#include <cmath>

namespace heracles::hw {
namespace {

/**
 * f^dyn_exp with optional memoization. Candidate frequencies are already
 * quantized to the DVFS grid by the caller, so the memo stays tiny and a
 * linear scan beats any map. An exact-key hit returns the exact double
 * std::pow produced, keeping memoized runs bit-identical.
 */
double
PowDyn(const MachineConfig& cfg, double f_ghz, PowerScratch* scratch)
{
    if (scratch) {
        for (const auto& [f, v] : scratch->pow_f) {
            if (f == f_ghz) return v;
        }
    }
    const double v = std::pow(f_ghz, cfg.dyn_exp);
    if (scratch) scratch->pow_f.emplace_back(f_ghz, v);
    return v;
}

/** Socket power with frequencies scaled by @p lambda. */
double
PowerAt(const MachineConfig& cfg, const std::vector<CorePowerRequest>& cores,
        double turbo, double lambda, std::vector<double>* freqs,
        PowerScratch* scratch)
{
    double total = cfg.uncore_w;
    for (size_t i = 0; i < cores.size(); ++i) {
        const auto& c = cores[i];
        double f = lambda * turbo;
        if (c.dvfs_cap_ghz > 0.0) f = std::min(f, c.dvfs_cap_ghz);
        f = std::max(f, cfg.min_ghz);
        // Round down to the DVFS step grid, like real P-states.
        f = std::floor(f / cfg.dvfs_step_ghz) * cfg.dvfs_step_ghz;
        f = std::max(f, cfg.min_ghz);
        if (freqs) (*freqs)[i] = f;
        const double dyn =
            cfg.dyn_coeff_w * c.intensity * PowDyn(cfg, f, scratch);
        total += cfg.core_idle_w + c.busy * dyn;
    }
    return total;
}

}  // namespace

double
MaxTurboGhz(const MachineConfig& cfg, int active_cores)
{
    if (active_cores < 1) active_cores = 1;
    const double f =
        cfg.turbo_1c_ghz - cfg.turbo_slope_ghz * (active_cores - 1);
    return std::max(f, cfg.nominal_ghz);
}

double
CoreDynPowerW(const MachineConfig& cfg, double f_ghz, double intensity)
{
    return cfg.dyn_coeff_w * intensity * std::pow(f_ghz, cfg.dyn_exp);
}

PowerOutcome
ResolvePower(const MachineConfig& cfg,
             const std::vector<CorePowerRequest>& cores)
{
    PowerOutcome out;
    ResolvePower(cfg, cores, nullptr, &out);
    return out;
}

void
ResolvePower(const MachineConfig& cfg,
             const std::vector<CorePowerRequest>& cores,
             PowerScratch* scratch, PowerOutcome* out_buf)
{
    PowerOutcome& out = *out_buf;
    out.freq_ghz.assign(cores.size(), cfg.min_ghz);
    out.socket_power_w = 0.0;
    out.throttled = false;

    int active = 0;
    for (const auto& c : cores) {
        if (c.busy > 0.05) ++active;
    }
    const double turbo = MaxTurboGhz(cfg, active);

    // Fast path: full speed fits in TDP.
    const double full = PowerAt(cfg, cores, turbo, 1.0, &out.freq_ghz,
                                scratch);
    if (full <= cfg.tdp_w) {
        out.socket_power_w = full;
        return;
    }

    // Bisect the throttle scale. Power is monotone in lambda. Even at the
    // floor the socket may exceed TDP (every core is already at f_min);
    // real RAPL behaves the same way over short windows.
    out.throttled = true;
    double lo = cfg.min_ghz / turbo, hi = 1.0;
    for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (PowerAt(cfg, cores, turbo, mid, nullptr, scratch) > cfg.tdp_w) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    out.socket_power_w = PowerAt(cfg, cores, turbo, lo, &out.freq_ghz,
                                 scratch);
}

}  // namespace heracles::hw
