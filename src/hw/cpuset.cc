#include "hw/cpuset.h"

#include <set>
#include <sstream>

namespace heracles::hw {

CpuSet
CpuSet::Of(const std::vector<int>& cpus)
{
    CpuSet s;
    for (int c : cpus) s.Add(c);
    return s;
}

CpuSet
CpuSet::Range(int first, int count)
{
    CpuSet s;
    for (int c = first; c < first + count; ++c) s.Add(c);
    return s;
}

std::vector<int>
CpuSet::Cpus() const
{
    std::vector<int> out;
    out.reserve(bits_.count());
    for (int c = 0; c < kMaxCpus; ++c) {
        if (bits_.test(static_cast<size_t>(c))) out.push_back(c);
    }
    return out;
}

std::string
CpuSet::ToString() const
{
    std::ostringstream oss;
    bool first = true;
    int c = 0;
    while (c < kMaxCpus) {
        if (!Contains(c)) {
            ++c;
            continue;
        }
        int end = c;
        while (end + 1 < kMaxCpus && Contains(end + 1)) ++end;
        if (!first) oss << ",";
        first = false;
        if (end > c) {
            oss << c << "-" << end;
        } else {
            oss << c;
        }
        c = end + 1;
    }
    return oss.str();
}

CpuSet
Topology::PhysicalCores(int first_core, int n) const
{
    CpuSet s;
    for (int core = first_core; core < first_core + n; ++core) {
        for (int t = 0; t < cfg_.threads_per_core; ++t) {
            s.Add(CpuOf(core, t));
        }
    }
    return s;
}

CpuSet
Topology::SpreadCores(int n) const
{
    CpuSet s;
    int added = 0;
    for (int local = 0; local < cfg_.cores_per_socket && added < n;
         ++local) {
        for (int socket = 0; socket < cfg_.sockets && added < n; ++socket) {
            const int core = socket * cfg_.cores_per_socket + local;
            for (int t = 0; t < cfg_.threads_per_core; ++t) {
                s.Add(CpuOf(core, t));
            }
            ++added;
        }
    }
    return s;
}

CpuSet
Topology::AllCpus() const
{
    return CpuSet::Range(0, cfg_.LogicalCpus());
}

CpuSet
Topology::ThreadOfCores(int first_core, int n, int thread) const
{
    CpuSet s;
    for (int core = first_core; core < first_core + n; ++core) {
        s.Add(CpuOf(core, thread));
    }
    return s;
}

int
Topology::PhysicalCoreCount(const CpuSet& set) const
{
    std::set<int> cores;
    for (int cpu : set.Cpus()) cores.insert(CoreOf(cpu));
    return static_cast<int>(cores.size());
}

CpuSet
Topology::OnSocket(const CpuSet& set, int socket) const
{
    CpuSet s;
    for (int cpu : set.Cpus()) {
        if (SocketOf(cpu) == socket) s.Add(cpu);
    }
    return s;
}

}  // namespace heracles::hw
