/**
 * @file
 * Shared last-level cache model with CAT way-partitioning.
 *
 * Two regimes are modeled, matching how Intel CAT behaves in practice:
 *  - Tasks with an explicit way allocation get a hard partition of
 *    ways * MB-per-way (refills are confined to their ways).
 *  - Tasks without an allocation compete for the remaining ways; the
 *    steady-state occupancy of a shared cache under mixed workloads is
 *    approximated as proportional to each task's access pressure
 *    (footprint x access rate), capped at its footprint.
 */
#ifndef HERACLES_HW_LLC_H
#define HERACLES_HW_LLC_H

#include <vector>

#include "hw/config.h"

namespace heracles::hw {

/** One competing task's view of a socket's LLC, input to the model. */
struct LlcRequest {
    double footprint_mb = 0.0;  ///< What the task would like resident.
    double weight = 0.0;        ///< Competition pressure (CAT off).
    int cat_ways = 0;           ///< Explicit CAT ways; 0 = unrestricted.
};

/**
 * Computes each task's effective cache-resident megabytes on one socket.
 *
 * @param cfg machine configuration (capacity, way count).
 * @param reqs one entry per task with cores on this socket.
 * @return effective resident MB per task, parallel to @p reqs.
 */
std::vector<double> ResolveLlc(const MachineConfig& cfg,
                               const std::vector<LlcRequest>& reqs);

/**
 * Buffer-reusing form for per-epoch callers: @p out is resized and
 * overwritten (its capacity survives across resolves, so the hot path
 * allocates nothing in steady state). Results are identical to the
 * returning form.
 */
void ResolveLlc(const MachineConfig& cfg, const std::vector<LlcRequest>& reqs,
                std::vector<double>* out);

}  // namespace heracles::hw

#endif  // HERACLES_HW_LLC_H
