/**
 * @file
 * Server hardware configuration.
 *
 * Defaults model the paper's evaluation platform: a dual-socket Intel Xeon
 * (Haswell-EP class) with a high core count, 2.3 GHz nominal frequency,
 * 2.5 MB of LLC per core, CAT way-partitioning, RAPL power monitoring,
 * per-core DVFS, and a 10 GbE NIC.
 */
#ifndef HERACLES_HW_CONFIG_H
#define HERACLES_HW_CONFIG_H

#include "sim/time.h"

namespace heracles::hw {

/** Static description of one server. All rates are per second. */
struct MachineConfig {
    // --- Topology -------------------------------------------------------
    int sockets = 2;
    int cores_per_socket = 18;
    int threads_per_core = 2;  ///< HyperThreads per physical core.

    // --- Frequency / power ----------------------------------------------
    double nominal_ghz = 2.3;   ///< Guaranteed base frequency.
    double min_ghz = 1.2;       ///< DVFS floor.
    double turbo_1c_ghz = 3.6;  ///< Single-core max turbo.
    /** All-core turbo = turbo_1c - slope * (active_cores - 1). */
    double turbo_slope_ghz = 0.05;
    double dvfs_step_ghz = 0.1;  ///< Per-core DVFS granularity (100 MHz).

    double tdp_w = 145.0;        ///< Thermal design power per socket.
    double uncore_w = 18.0;      ///< Static uncore power per socket.
    double core_idle_w = 1.0;    ///< Per-core leakage/idle power.
    /** Dynamic core power = dyn_coeff_w * intensity * f_ghz^dyn_exp. */
    double dyn_coeff_w = 0.458;
    double dyn_exp = 2.6;

    // --- Last-level cache -------------------------------------------------
    double llc_mb_per_socket = 45.0;  ///< 18 cores x 2.5 MB.
    int llc_ways = 20;                ///< CAT way-partitioning granularity.

    // --- Memory -----------------------------------------------------------
    double dram_gbps_per_socket = 50.0;  ///< Peak streaming bandwidth.
    /** Utilization knee after which DRAM access latency rises sharply. */
    double dram_knee = 0.75;

    // --- Network ------------------------------------------------------------
    double nic_gbps = 10.0;  ///< Egress link rate.

    // --- Simulation ---------------------------------------------------------
    /** Contention is re-resolved at this period of simulated time. */
    sim::Duration epoch = sim::Millis(25);
    /** Relative noise applied to counter readings (RAPL, DRAM BW). */
    double counter_noise = 0.01;
    uint64_t seed = 1;

    // --- Derived helpers ----------------------------------------------------
    int TotalCores() const { return sockets * cores_per_socket; }
    int LogicalCpus() const {
        return TotalCores() * threads_per_core;
    }
    int CpusPerSocket() const {
        return cores_per_socket * threads_per_core;
    }
    double MbPerWay() const {
        return llc_mb_per_socket / llc_ways;
    }
    double TotalDramGbps() const {
        return dram_gbps_per_socket * sockets;
    }
    double TotalTdpW() const { return tdp_w * sockets; }
};

}  // namespace heracles::hw

#endif  // HERACLES_HW_CONFIG_H
