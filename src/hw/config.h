/**
 * @file
 * Server hardware configuration.
 *
 * Defaults model the paper's evaluation platform: a dual-socket Intel Xeon
 * (Haswell-EP class) with a high core count, 2.3 GHz nominal frequency,
 * 2.5 MB of LLC per core, CAT way-partitioning, RAPL power monitoring,
 * per-core DVFS, and a 10 GbE NIC.
 */
#ifndef HERACLES_HW_CONFIG_H
#define HERACLES_HW_CONFIG_H

#include "sim/time.h"

namespace heracles::hw {

/** Static description of one server. All rates are per second. */
struct MachineConfig {
    // --- Topology -------------------------------------------------------
    int sockets = 2;
    int cores_per_socket = 18;
    int threads_per_core = 2;  ///< HyperThreads per physical core.

    // --- Frequency / power ----------------------------------------------
    double nominal_ghz = 2.3;   ///< Guaranteed base frequency.
    double min_ghz = 1.2;       ///< DVFS floor.
    double turbo_1c_ghz = 3.6;  ///< Single-core max turbo.
    /** All-core turbo = turbo_1c - slope * (active_cores - 1). */
    double turbo_slope_ghz = 0.05;
    double dvfs_step_ghz = 0.1;  ///< Per-core DVFS granularity (100 MHz).

    double tdp_w = 145.0;        ///< Thermal design power per socket.
    double uncore_w = 18.0;      ///< Static uncore power per socket.
    double core_idle_w = 1.0;    ///< Per-core leakage/idle power.
    /** Dynamic core power = dyn_coeff_w * intensity * f_ghz^dyn_exp. */
    double dyn_coeff_w = 0.458;
    double dyn_exp = 2.6;

    // --- Last-level cache -------------------------------------------------
    double llc_mb_per_socket = 45.0;  ///< 18 cores x 2.5 MB.
    int llc_ways = 20;                ///< CAT way-partitioning granularity.

    // --- Memory -----------------------------------------------------------
    double dram_gbps_per_socket = 50.0;  ///< Peak streaming bandwidth.
    /** Utilization knee after which DRAM access latency rises sharply. */
    double dram_knee = 0.75;

    // --- Network ------------------------------------------------------------
    double nic_gbps = 10.0;  ///< Egress link rate.

    // --- Simulation ---------------------------------------------------------
    /** Contention is re-resolved at this period of simulated time. */
    sim::Duration epoch = sim::Millis(25);
    /** Relative noise applied to counter readings (RAPL, DRAM BW). */
    double counter_noise = 0.01;
    uint64_t seed = 1;

    // --- Derived helpers ----------------------------------------------------
    /** Field-wise equality (seed included) — keep in sync when adding
     *  fields. Clusters dedupe per-machine baselines through this. */
    bool
    operator==(const MachineConfig& o) const
    {
        return sockets == o.sockets &&
               cores_per_socket == o.cores_per_socket &&
               threads_per_core == o.threads_per_core &&
               nominal_ghz == o.nominal_ghz && min_ghz == o.min_ghz &&
               turbo_1c_ghz == o.turbo_1c_ghz &&
               turbo_slope_ghz == o.turbo_slope_ghz &&
               dvfs_step_ghz == o.dvfs_step_ghz && tdp_w == o.tdp_w &&
               uncore_w == o.uncore_w && core_idle_w == o.core_idle_w &&
               dyn_coeff_w == o.dyn_coeff_w && dyn_exp == o.dyn_exp &&
               llc_mb_per_socket == o.llc_mb_per_socket &&
               llc_ways == o.llc_ways &&
               dram_gbps_per_socket == o.dram_gbps_per_socket &&
               dram_knee == o.dram_knee && nic_gbps == o.nic_gbps &&
               epoch == o.epoch && counter_noise == o.counter_noise &&
               seed == o.seed;
    }
    bool operator!=(const MachineConfig& o) const { return !(*this == o); }

    int TotalCores() const { return sockets * cores_per_socket; }
    int LogicalCpus() const {
        return TotalCores() * threads_per_core;
    }
    int CpusPerSocket() const {
        return cores_per_socket * threads_per_core;
    }
    double MbPerWay() const {
        return llc_mb_per_socket / llc_ways;
    }
    double TotalDramGbps() const {
        return dram_gbps_per_socket * sockets;
    }
    double TotalTdpW() const { return tdp_w * sockets; }
};

}  // namespace heracles::hw

#endif  // HERACLES_HW_CONFIG_H
