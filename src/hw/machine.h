/**
 * @file
 * The server model: topology, task placement, isolation mechanism state,
 * the per-epoch contention resolver, and the hardware counters.
 *
 * A Machine owns the authoritative state of all four isolation mechanisms
 * the paper manages:
 *  - core assignment (cgroup cpusets)          -> AssignCpus()
 *  - LLC way-partitioning (Intel CAT MSRs)     -> SetCatWays()
 *  - per-core DVFS caps                        -> SetFreqCapGhz()
 *  - egress traffic shaping (tc qdisc HTB)     -> SetBeNetCeilGbps()
 *
 * Every `epoch` of simulated time (default 25 ms) the resolver recomputes
 * who gets how much of each saturable shared resource and publishes a
 * TaskView per registered client. Workload models read their TaskView when
 * sampling request service times or accruing batch throughput; the
 * platform layer exposes the counters (DRAM bandwidth, RAPL power, core
 * frequency, link bytes) that the Heracles controller polls.
 *
 * Resolution is incremental. The demand side of a resolve (LLC occupancy,
 * DRAM grants, NIC shares) is a pure function of inputs that change only
 * at discrete, known call sites — the mutators here plus the workloads'
 * once-per-second rate updates — so those phases recompute only when a
 * demand input was marked dirty, while the busy-driven phases (HT
 * penalties, power/frequency, telemetry) run every resolve. Actuators
 * that used to force an eager full resolve per call instead use
 * RequestResolve(), which coalesces every same-timestamp demand change
 * into one deferred resolve at the current instant; EnsureResolved()
 * flushes the pending resolve at every observation point so nothing can
 * read a stale view. Both paths are byte-identical to the historical
 * eager full-scan resolver (pinned by tests/machine_equivalence_test.cc
 * and the golden scenario baselines).
 */
#ifndef HERACLES_HW_MACHINE_H
#define HERACLES_HW_MACHINE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hw/client.h"
#include "hw/config.h"
#include "hw/cpuset.h"
#include "hw/dram.h"
#include "hw/llc.h"
#include "hw/power.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace heracles::hw {

/** Machine-wide telemetry snapshot (for figures and EMU accounting). */
struct MachineTelemetry {
    double dram_gbps = 0.0;        ///< Total granted DRAM bandwidth.
    double dram_frac = 0.0;        ///< ... as a fraction of peak.
    double cpu_utilization = 0.0;  ///< Busy logical cpus / total.
    double power_w = 0.0;          ///< Total socket power.
    double power_frac_tdp = 0.0;   ///< ... as a fraction of total TDP.
    double lc_tx_gbps = 0.0;
    double be_tx_gbps = 0.0;
    double net_frac = 0.0;         ///< Link utilization.
};

/**
 * One simulated server.
 *
 * Not copyable; workloads and controllers hold references. All methods
 * must be called from simulation-event context (single-threaded).
 */
class Machine
{
  public:
    Machine(const MachineConfig& cfg, sim::EventQueue& queue);
    ~Machine();
    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    const MachineConfig& config() const { return cfg_; }
    const Topology& topology() const { return topo_; }
    sim::EventQueue& queue() { return queue_; }

    // --- Task registry ----------------------------------------------------

    /** Registers a colocated task. The machine does not own the pointer. */
    void AddClient(ResourceClient* client);

    /** Unregisters a task (e.g. a BE job killed by the controller). */
    void RemoveClient(ResourceClient* client);

    /**
     * Pins @p client to @p cpus (the cpuset cgroup mechanism). By default
     * logical cpus are exclusive; overlapping assignments abort unless
     * sharing was enabled (used by the OS-only baseline policy).
     */
    void AssignCpus(ResourceClient* client, const CpuSet& cpus);

    /** Allows multiple tasks on the same logical cpu (OS-only baseline). */
    void AllowCpuSharing(bool allow) { allow_sharing_ = allow; }

    const CpuSet& CpusOf(const ResourceClient* client) const;

    // --- Isolation mechanisms ----------------------------------------------

    /**
     * Gives @p client a hard LLC partition of @p ways ways on every socket
     * where it has cpus; 0 restores unrestricted (shared) caching.
     */
    void SetCatWays(ResourceClient* client, int ways);
    int CatWaysOf(const ResourceClient* client) const;

    /** Caps the DVFS frequency of @p client's cores; 0 = uncapped. */
    void SetFreqCapGhz(ResourceClient* client, double ghz);
    double FreqCapOf(const ResourceClient* client) const;

    /** Sets the HTB ceil for all best-effort egress traffic; <0 = off. */
    void SetBeNetCeilGbps(double gbps);
    double BeNetCeilGbps() const { return be_net_ceil_gbps_; }

    // --- Contention resolution ---------------------------------------------

    /**
     * Re-resolves contention immediately, unconditionally recomputing
     * every phase (also marks the demand inputs dirty first, so callers
     * that mutate client demand out-of-band — tests, characterization
     * rigs — always see fresh grants). The epoch timer uses the
     * dirty-honoring internal path instead.
     */
    void ResolveNow();

    /**
     * Requests a resolve for a demand change at the current instant.
     * Multiple requests at the same timestamp coalesce into one deferred
     * resolve (scheduled at time-now); each superseded eager resolve is
     * replaced by a busy-probe pass that reproduces its only lasting
     * side effect — resetting every client's busy-measurement window —
     * so the eventual resolve computes bit-identical grants.
     */
    void RequestResolve();

    /**
     * Flushes a pending (deferred) resolve, if any. Every view/counter
     * reader calls this; workloads also call it before mutating state a
     * pending resolve must still observe pre-mutation (busy counts,
     * demand inputs).
     */
    void EnsureResolved() const;

    /**
     * Marks the demand-side resolver inputs (LLC footprints/weights,
     * DRAM demand, NIC demand) changed, so the next resolve recomputes
     * the LLC/DRAM/NIC phases. Workloads call this from the call sites
     * where those inputs actually change; marking is idempotent and
     * over-marking is always safe (a recompute from unchanged inputs is
     * bitwise identical).
     */
    void MarkDemandDirty() { demand_dirty_ = true; }

    /**
     * Disables every incremental path: RequestResolve() becomes an eager
     * ResolveNow() and each resolve recomputes all phases. The retained
     * naive reference for the equivalence test and the arbitration
     * microbench.
     */
    void SetNaiveArbitration(bool naive);

    /** The latest resolved view for @p client. */
    const TaskView& ViewOf(const ResourceClient* client) const;

    // --- Resolver statistics (microbench / diagnostics) --------------------

    /** Resolves executed (all phases of a lazy resolve count as one). */
    uint64_t resolves() const { return resolve_count_; }

    /** Resolves that recomputed the demand phases (LLC/DRAM/NIC). */
    uint64_t demand_recomputes() const { return demand_recomputes_; }

    /**
     * Monotone generation of the demand-phase outputs: bumps exactly
     * when the LLC/DRAM/NIC grants were recomputed. Workloads key their
     * derived-input caches on this (plus their own load/allocation
     * versions) — see LcApp's service-time factor cache.
     */
    uint64_t demand_generation() const { return demand_recomputes_; }

    // --- Hardware counters (what a controller can measure) ----------------

    /** Noisy measured DRAM bandwidth on @p socket (GB/s), like IMC CAS
     *  counters. */
    double MeasuredDramGbps(int socket) const;

    /** Total measured DRAM bandwidth across sockets (GB/s). */
    double MeasuredTotalDramGbps() const;

    /** Noisy RAPL package power reading for @p socket (W). */
    double MeasuredSocketPowerW(int socket) const;

    /** Mean effective frequency of @p client's cores (GHz, aperf/mperf). */
    double MeasuredFreqGhz(const ResourceClient* client) const;

    /** Egress bandwidth of the LC / BE traffic classes (Gb/s). */
    double LcTxGbps() const;
    double BeTxGbps() const;

    /** Noise-free machine-wide telemetry (for reports, not controllers). */
    MachineTelemetry Telemetry() const;

    /** Time-averaged telemetry accumulated since ResetTelemetryAverages. */
    MachineTelemetry AveragedTelemetry() const;
    void ResetTelemetryAverages();

  private:
    struct ClientState {
        CpuSet cpus;
        int cat_ways = 0;
        double freq_cap_ghz = 0.0;
        TaskView view;
    };

    /** The epoch timer's resolve: honors demand-dirty tracking. */
    void EpochResolve();
    /** One full resolve pass (demand phases gated on the dirty flag). */
    void DoResolve();
    /**
     * Queries every client's CpuBusyFraction once, in registration
     * order, discarding the values. A busy query's only lasting state
     * effect is resetting that client's measurement window at the
     * current tick (repeat same-tick queries are stateless), and a full
     * resolve queries every client at least once — so one probe pass is
     * state-equivalent to the eager resolve it replaces.
     */
    void TouchAllBusy();

    void ResolveLlcAndDram();
    void ResolveHt();
    void ResolvePowerAllSockets();
    void ResolveNetwork();
    void UpdateTelemetry();
    ClientState& StateOf(ResourceClient* client);
    const ClientState& StateOf(const ResourceClient* client) const;

    MachineConfig cfg_;
    Topology topo_;
    sim::EventQueue& queue_;
    mutable sim::Rng noise_rng_;
    sim::EventQueue::EventId epoch_event_;
    sim::EventQueue::EventId finalize_event_{};
    bool finalize_scheduled_ = false;

    /**
     * Registered tasks in registration order. Deliberately NOT keyed by
     * pointer: every resolver phase iterates this container, and
     * pointer-ordered iteration would make resource grants depend on
     * heap addresses — bit-exact reproducibility requires the order to
     * derive from construction order alone.
     */
    std::vector<std::pair<ResourceClient*, ClientState>> clients_;
    bool allow_sharing_ = false;
    double be_net_ceil_gbps_ = -1.0;

    // Incremental-resolution state.
    bool naive_ = false;
    bool demand_dirty_ = true;
    bool resolve_pending_ = false;
    uint64_t resolve_count_ = 0;
    uint64_t demand_recomputes_ = 0;

    // Resolver scratch, reused across resolves (the historical code
    // allocated these per socket per resolve).
    std::vector<LlcRequest> scratch_reqs_;
    std::vector<size_t> scratch_idx_;
    std::vector<double> scratch_frac_;
    std::vector<double> scratch_demand_;
    std::vector<double> scratch_llc_;
    DramOutcome scratch_dram_;
    std::vector<CorePowerRequest> scratch_cores_;
    PowerOutcome scratch_power_;
    PowerScratch power_scratch_;
    std::vector<double> ht_aggr_;  ///< Per-client aggression minus one.
    std::vector<double> ht_busy_;  ///< Per-client hoisted busy values.

    // Resolved machine-level state.
    std::vector<double> dram_granted_;  ///< Per socket.
    std::vector<double> socket_power_;  ///< Per socket.
    double lc_tx_gbps_ = 0.0;
    double be_tx_gbps_ = 0.0;
    double link_util_ = 0.0;
    double cpu_util_ = 0.0;

    // Time-weighted averages for experiment reporting.
    sim::TimeWeightedMean avg_dram_;
    sim::TimeWeightedMean avg_power_;
    sim::TimeWeightedMean avg_cpu_;
    sim::TimeWeightedMean avg_lc_tx_;
    sim::TimeWeightedMean avg_be_tx_;
    sim::SimTime telemetry_reset_time_ = 0;
};

}  // namespace heracles::hw

#endif  // HERACLES_HW_MACHINE_H
