#include "hw/llc.h"

#include <algorithm>

#include "sim/log.h"

namespace heracles::hw {

std::vector<double>
ResolveLlc(const MachineConfig& cfg, const std::vector<LlcRequest>& reqs)
{
    std::vector<double> out;
    ResolveLlc(cfg, reqs, &out);
    return out;
}

void
ResolveLlc(const MachineConfig& cfg, const std::vector<LlcRequest>& reqs,
           std::vector<double>* out_buf)
{
    std::vector<double>& out = *out_buf;
    out.assign(reqs.size(), 0.0);
    const double mb_per_way = cfg.MbPerWay();

    // Pass 1: hard CAT partitions.
    int restricted_ways = 0;
    double shared_pressure = 0.0;
    double shared_footprint = 0.0;
    for (size_t i = 0; i < reqs.size(); ++i) {
        const auto& r = reqs[i];
        if (r.cat_ways > 0) {
            const int ways = std::min(r.cat_ways, cfg.llc_ways);
            restricted_ways += ways;
            out[i] = std::min(r.footprint_mb,
                              static_cast<double>(ways) * mb_per_way);
        } else {
            shared_pressure += r.weight;
            shared_footprint += r.footprint_mb;
        }
    }
    HERACLES_CHECK_MSG(restricted_ways <= cfg.llc_ways,
                       "CAT over-allocated: " << restricted_ways << " ways");

    // Pass 2: unrestricted tasks compete for the remaining capacity.
    const double shared_cap =
        static_cast<double>(cfg.llc_ways - restricted_ways) * mb_per_way;
    if (shared_footprint <= shared_cap || shared_pressure <= 0.0) {
        // Everything fits (or nobody competes): all footprints resident.
        for (size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].cat_ways == 0) {
                out[i] = std::min(reqs[i].footprint_mb, shared_cap);
            }
        }
        return;
    }

    // Oversubscribed: iteratively hand out pressure-proportional shares.
    // Tasks whose share exceeds their footprint are frozen at the footprint
    // and the slack is redistributed (a small fixed number of rounds
    // converges because pressure only ever leaves the pool).
    std::vector<bool> frozen(reqs.size(), false);
    double cap_left = shared_cap;
    double pressure_left = shared_pressure;
    for (int round = 0; round < 4; ++round) {
        bool changed = false;
        for (size_t i = 0; i < reqs.size(); ++i) {
            const auto& r = reqs[i];
            if (r.cat_ways > 0 || frozen[i] || pressure_left <= 0.0) {
                continue;
            }
            const double share = cap_left * r.weight / pressure_left;
            if (share >= r.footprint_mb) {
                out[i] = r.footprint_mb;
                frozen[i] = true;
                cap_left -= r.footprint_mb;
                pressure_left -= r.weight;
                changed = true;
            }
        }
        if (!changed) break;
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
        const auto& r = reqs[i];
        if (r.cat_ways == 0 && !frozen[i]) {
            out[i] = pressure_left > 0.0
                         ? cap_left * r.weight / pressure_left
                         : 0.0;
            out[i] = std::min(out[i], r.footprint_mb);
        }
    }
}

}  // namespace heracles::hw
