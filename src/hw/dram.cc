#include "hw/dram.h"

#include <algorithm>
#include <cmath>

namespace heracles::hw {

double
DramStretch(const MachineConfig& cfg, double rho)
{
    if (rho < 0.0) rho = 0.0;
    // Mild queueing below the knee.
    double m = 1.0 + 0.15 * rho;
    // Cubic knee between cfg.dram_knee and full utilization.
    if (rho > cfg.dram_knee) {
        const double x =
            (std::min(rho, 1.0) - cfg.dram_knee) / (1.0 - cfg.dram_knee);
        m += 1.9 * x * x * x;
    }
    // Overload: every extra unit of demand queues behind the channels.
    if (rho > 1.0) m += 6.0 * (rho - 1.0);
    return m;
}

DramOutcome
ResolveDram(const MachineConfig& cfg, const std::vector<double>& demand_gbps)
{
    DramOutcome out;
    ResolveDram(cfg, demand_gbps, &out);
    return out;
}

void
ResolveDram(const MachineConfig& cfg, const std::vector<double>& demand_gbps,
            DramOutcome* out_buf)
{
    DramOutcome& out = *out_buf;
    out.granted_gbps.assign(demand_gbps.size(), 0.0);
    out.total_demand_gbps = 0.0;
    out.total_granted_gbps = 0.0;
    out.rho = 0.0;
    out.stretch = 1.0;
    for (double d : demand_gbps) out.total_demand_gbps += d;

    const double peak = cfg.dram_gbps_per_socket;
    out.rho = peak > 0.0 ? out.total_demand_gbps / peak : 0.0;
    out.stretch = DramStretch(cfg, out.rho);

    // Grants: everything below capacity, demand-proportional above it.
    const double scale =
        out.total_demand_gbps <= peak || out.total_demand_gbps <= 0.0
            ? 1.0
            : peak / out.total_demand_gbps;
    for (size_t i = 0; i < demand_gbps.size(); ++i) {
        out.granted_gbps[i] = demand_gbps[i] * scale;
        out.total_granted_gbps += out.granted_gbps[i];
    }
}

}  // namespace heracles::hw
