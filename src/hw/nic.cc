#include "hw/nic.h"

#include <algorithm>

namespace heracles::hw {

NicOutcome
ResolveNic(const MachineConfig& cfg, const NicRequest& req)
{
    NicOutcome out;
    const double link = cfg.nic_gbps;

    // How much the BE class may send.
    double be_allowed = req.be_demand_gbps;
    if (req.be_ceil_gbps >= 0.0) {
        // HTB ceil: hard cap enforced by the token bucket.
        be_allowed = std::min(be_allowed, req.be_ceil_gbps);
    } else {
        // Unshaped: the mice-flow swarm captures up to its fair-share
        // bound regardless of the LC task's needs.
        be_allowed = std::min(be_allowed, req.be_unshaped_capture * link);
    }
    out.be_granted_gbps = std::min(be_allowed, link);

    const double avail_lc = std::max(link - out.be_granted_gbps, 1e-3);
    out.lc_granted_gbps = std::min(req.lc_demand_gbps, avail_lc);
    out.lc_overloaded = req.lc_demand_gbps > avail_lc;

    out.link_utilization =
        (out.lc_granted_gbps + out.be_granted_gbps) / link;

    // M/M/1-style transmit queueing on the bandwidth available to LC.
    const double rho =
        std::min(req.lc_demand_gbps / avail_lc, 0.995);
    out.lc_delay_factor = 1.0 / (1.0 - rho);
    // In overload the delay keeps growing with the excess demand: packets
    // queue, retransmit and back off.
    if (out.lc_overloaded) {
        out.lc_delay_factor +=
            150.0 * (req.lc_demand_gbps / avail_lc - 1.0);
    }

    // Unshaped mice-flow swarm: once the residual bandwidth is nearly
    // consumed, LC packets start dropping and eat RTO-scale delays.
    const bool swarm = req.be_ceil_gbps < 0.0 &&
                       out.be_granted_gbps > 0.2 * link;
    const double rho_raw = req.lc_demand_gbps / avail_lc;
    if (swarm && rho_raw > 0.90) {
        out.lc_drop_prob = std::min(0.3, (rho_raw - 0.90) * 2.5);
    }
    return out;
}

}  // namespace heracles::hw
