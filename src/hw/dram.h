/**
 * @file
 * DRAM bandwidth contention model.
 *
 * The model captures the behaviour the paper's controller depends on:
 * memory access time is flat while total bandwidth demand is comfortably
 * below the socket's streaming peak, rises around a knee, and degrades
 * extremely rapidly once the channels saturate (the "inflection point" of
 * Section 4.2). When demand exceeds capacity, grants are proportional to
 * demand — commodity memory controllers provide no isolation, which is
 * exactly the gap Heracles works around with its offline bandwidth model.
 */
#ifndef HERACLES_HW_DRAM_H
#define HERACLES_HW_DRAM_H

#include <vector>

#include "hw/config.h"

namespace heracles::hw {

/** Result of resolving one socket's DRAM contention. */
struct DramOutcome {
    std::vector<double> granted_gbps;  ///< Parallel to the demand vector.
    double total_demand_gbps = 0.0;
    double total_granted_gbps = 0.0;
    double rho = 0.0;      ///< demand / peak (may exceed 1).
    double stretch = 1.0;  ///< Memory-access-time multiplier (>= 1).
};

/**
 * Memory-access-time multiplier for bandwidth utilization @p rho
 * (demand / peak, unclamped). Monotonically non-decreasing; ~1 below the
 * knee, ~3 at rho = 1, and growing linearly in overload.
 */
double DramStretch(const MachineConfig& cfg, double rho);

/** Resolves one socket: fair (demand-proportional) grants + stretch. */
DramOutcome ResolveDram(const MachineConfig& cfg,
                        const std::vector<double>& demand_gbps);

/**
 * Buffer-reusing form for per-epoch callers: @p out is fully reset and
 * overwritten, reusing its grant vector's capacity. Results are identical
 * to the returning form.
 */
void ResolveDram(const MachineConfig& cfg,
                 const std::vector<double>& demand_gbps, DramOutcome* out);

}  // namespace heracles::hw

#endif  // HERACLES_HW_DRAM_H
