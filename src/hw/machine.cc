#include "hw/machine.h"

#include <algorithm>
#include <cmath>

#include "hw/dram.h"
#include "hw/llc.h"
#include "hw/nic.h"
#include "hw/power.h"

namespace heracles::hw {

Machine::Machine(const MachineConfig& cfg, sim::EventQueue& queue)
    : cfg_(cfg),
      topo_(cfg),
      queue_(queue),
      noise_rng_(cfg.seed ^ 0xFEEDFACEull),
      dram_granted_(cfg.sockets, 0.0),
      socket_power_(cfg.sockets, 0.0)
{
    HERACLES_CHECK_MSG(cfg.sockets <= kMaxSockets,
                       "too many sockets: " << cfg.sockets);
    HERACLES_CHECK_MSG(cfg.LogicalCpus() <= kMaxCpus,
                       "too many cpus: " << cfg.LogicalCpus());
    epoch_event_ = queue_.SchedulePeriodic(cfg.epoch, cfg.epoch,
                                           [this] { ResolveNow(); });
}

Machine::~Machine()
{
    queue_.Cancel(epoch_event_);
}

void
Machine::AddClient(ResourceClient* client)
{
    HERACLES_CHECK(client != nullptr);
    for (const auto& [other, st] : clients_) {
        HERACLES_CHECK_MSG(other != client,
                           "client registered twice: " << client->name());
    }
    clients_.emplace_back(client, ClientState{});
}

void
Machine::RemoveClient(ResourceClient* client)
{
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
        if (it->first == client) {
            clients_.erase(it);
            return;
        }
    }
}

Machine::ClientState&
Machine::StateOf(ResourceClient* client)
{
    for (auto& [c, st] : clients_) {
        if (c == client) return st;
    }
    HERACLES_FATAL("unregistered client: " << client->name());
}

const Machine::ClientState&
Machine::StateOf(const ResourceClient* client) const
{
    for (const auto& [c, st] : clients_) {
        if (c == client) return st;
    }
    HERACLES_FATAL("unregistered client: " << client->name());
}

void
Machine::AssignCpus(ResourceClient* client, const CpuSet& cpus)
{
    for (int cpu : cpus.Cpus()) {
        HERACLES_CHECK_MSG(cpu < cfg_.LogicalCpus(),
                           "cpu " << cpu << " out of range");
    }
    if (!allow_sharing_) {
        for (const auto& [other, st] : clients_) {
            if (other != client && st.cpus.Intersects(cpus)) {
                HERACLES_FATAL("cpuset overlap between "
                               << client->name() << " and " << other->name()
                               << " without AllowCpuSharing");
            }
        }
    }
    StateOf(client).cpus = cpus;
}

const CpuSet&
Machine::CpusOf(const ResourceClient* client) const
{
    return StateOf(client).cpus;
}

void
Machine::SetCatWays(ResourceClient* client, int ways)
{
    HERACLES_CHECK_MSG(ways >= 0 && ways <= cfg_.llc_ways,
                       "bad CAT ways: " << ways);
    StateOf(client).cat_ways = ways;
}

int
Machine::CatWaysOf(const ResourceClient* client) const
{
    return StateOf(client).cat_ways;
}

void
Machine::SetFreqCapGhz(ResourceClient* client, double ghz)
{
    HERACLES_CHECK_MSG(ghz == 0.0 ||
                           (ghz >= cfg_.min_ghz && ghz <= cfg_.turbo_1c_ghz),
                       "bad DVFS cap: " << ghz);
    StateOf(client).freq_cap_ghz = ghz;
}

double
Machine::FreqCapOf(const ResourceClient* client) const
{
    return StateOf(client).freq_cap_ghz;
}

void
Machine::ResolveNow()
{
    ResolveLlcAndDram();
    ResolvePowerAllSockets();
    ResolveNetwork();
    UpdateTelemetry();
}

void
Machine::ResolveLlcAndDram()
{
    // Start every resolution from a clean view; later phases fill in the
    // power and network fields.
    for (auto& [c, st] : clients_) {
        st.view = TaskView{};
        st.view.dram_stretch = 0.0;  // accumulated per socket below
    }

    // clients_ iterates in registration order (never pointer order —
    // grants must not depend on the heap); indices below are positions
    // in that container.
    for (int socket = 0; socket < cfg_.sockets; ++socket) {
        // Which clients have cpus here, and with what share of their cpus.
        std::vector<LlcRequest> reqs;
        std::vector<size_t> idx;           // into `clients_`
        std::vector<double> socket_frac;   // client's cpus on this socket
        for (size_t i = 0; i < clients_.size(); ++i) {
            auto& [client, st] = clients_[i];
            if (st.cpus.Empty()) continue;
            const int here = topo_.OnSocket(st.cpus, socket).Count();
            if (here == 0) continue;
            LlcRequest r;
            r.footprint_mb = client->LlcFootprintMb(socket);
            r.weight = client->LlcAccessWeight(socket);
            r.cat_ways = st.cat_ways;
            reqs.push_back(r);
            idx.push_back(i);
            socket_frac.push_back(static_cast<double>(here) /
                                  st.cpus.Count());
        }

        const std::vector<double> llc = ResolveLlc(cfg_, reqs);

        // DRAM demand given the resolved cache shares.
        std::vector<double> demand(reqs.size(), 0.0);
        for (size_t k = 0; k < reqs.size(); ++k) {
            demand[k] =
                clients_[idx[k]].first->DramDemandGbps(socket, llc[k]);
        }
        const DramOutcome dram = ResolveDram(cfg_, demand);
        dram_granted_[socket] = dram.total_granted_gbps;

        for (size_t k = 0; k < reqs.size(); ++k) {
            TaskView& v = clients_[idx[k]].second.view;
            v.llc_mb[socket] = llc[k];
            v.dram_demand_gbps[socket] = demand[k];
            v.dram_granted_gbps[socket] = dram.granted_gbps[k];
            // The stretch is a property of the socket; a task spanning
            // sockets sees the demand-weighted mean (computed below).
        }

        // Record per-socket stretch on each participating client,
        // weighted by the client's cpu fraction on this socket so a
        // client living on one socket sees only that socket's stretch.
        for (size_t k = 0; k < reqs.size(); ++k) {
            TaskView& v = clients_[idx[k]].second.view;
            v.dram_stretch += dram.stretch * socket_frac[k];
        }
    }

    // Clients with no cpus anywhere (or rounding shortfall) keep a
    // neutral stretch.
    for (auto& [c, st] : clients_) {
        if (st.view.dram_stretch < 1.0) st.view.dram_stretch = 1.0;
    }

    // HyperThread penalties: what runs on the sibling of each cpu.
    for (auto& [client, st] : clients_) {
        if (st.cpus.Empty()) continue;
        double total = 0.0;
        int n = 0;
        for (int cpu : st.cpus.Cpus()) {
            double p = 1.0;
            const int sib = topo_.SiblingOf(cpu);
            for (auto& [other, ost] : clients_) {
                if (other == client) continue;
                const double aggr = other->HtAggression() - 1.0;
                if (aggr <= 0.0) continue;
                const double busy = other->CpuBusyFraction();
                if (sib >= 0 && ost.cpus.Contains(sib)) {
                    p += aggr * busy;
                }
                if (ost.cpus.Contains(cpu)) {
                    // Sharing the same logical cpu (OS-only baseline) is
                    // considerably worse than sharing a sibling.
                    p += 1.6 * aggr * busy;
                }
            }
            total += p;
            ++n;
        }
        st.view.ht_penalty = n > 0 ? total / n : 1.0;
    }
}

void
Machine::ResolvePowerAllSockets()
{
    for (int socket = 0; socket < cfg_.sockets; ++socket) {
        std::vector<CorePowerRequest> cores(cfg_.cores_per_socket);
        // Fill per-core busy/intensity/caps from thread ownership.
        for (auto& [client, st] : clients_) {
            if (st.cpus.Empty()) continue;
            const double busy = client->CpuBusyFraction();
            const double intensity = client->PowerIntensity();
            for (int cpu : topo_.OnSocket(st.cpus, socket).Cpus()) {
                const int core_local =
                    topo_.CoreOf(cpu) % cfg_.cores_per_socket;
                auto& c = cores[core_local];
                // Each busy thread contributes its share; two busy
                // threads saturate the physical core.
                const double add = busy / cfg_.threads_per_core;
                const double w_old = c.busy;
                c.busy = std::min(1.0, c.busy + add);
                const double w_new = c.busy - w_old;
                if (c.busy > 0.0) {
                    c.intensity = (c.intensity * w_old + intensity * w_new) /
                                  c.busy;
                }
                if (st.freq_cap_ghz > 0.0) {
                    c.dvfs_cap_ghz =
                        c.dvfs_cap_ghz > 0.0
                            ? std::min(c.dvfs_cap_ghz, st.freq_cap_ghz)
                            : st.freq_cap_ghz;
                }
            }
        }
        const PowerOutcome pw = ResolvePower(cfg_, cores);
        socket_power_[socket] = pw.socket_power_w;

        // Publish mean frequency per client on this socket.
        for (auto& [client, st] : clients_) {
            const CpuSet here = topo_.OnSocket(st.cpus, socket);
            if (here.Empty()) continue;
            double f = 0.0;
            int n = 0;
            for (int cpu : here.Cpus()) {
                const int core_local =
                    topo_.CoreOf(cpu) % cfg_.cores_per_socket;
                f += pw.freq_ghz[core_local];
                ++n;
            }
            // Weighted across sockets by cpu count. The view was zeroed
            // at the start of the resolution pass.
            const double frac =
                static_cast<double>(n) / st.cpus.Count();
            st.view.freq_ghz += frac * (f / n);
        }
    }
    for (auto& [client, st] : clients_) {
        if (!st.cpus.Empty() && st.view.freq_ghz < cfg_.min_ghz) {
            st.view.freq_ghz = cfg_.min_ghz;
        }
    }
}

void
Machine::ResolveNetwork()
{
    NicRequest req;
    req.be_ceil_gbps = be_net_ceil_gbps_;
    for (auto& [client, st] : clients_) {
        if (st.cpus.Empty()) continue;
        if (client->is_lc()) {
            req.lc_demand_gbps += client->NetTxDemandGbps();
        } else {
            req.be_demand_gbps += client->NetTxDemandGbps();
        }
    }
    const NicOutcome out = ResolveNic(cfg_, req);
    lc_tx_gbps_ = out.lc_granted_gbps;
    be_tx_gbps_ = out.be_granted_gbps;
    link_util_ = out.link_utilization;

    for (auto& [client, st] : clients_) {
        if (client->is_lc()) {
            st.view.net_granted_gbps = out.lc_granted_gbps;
            st.view.net_delay_factor = out.lc_delay_factor;
            st.view.net_overloaded = out.lc_overloaded;
            st.view.net_drop_prob = out.lc_drop_prob;
        } else {
            // BE tasks split the BE grant in proportion to demand.
            const double d = client->NetTxDemandGbps();
            st.view.net_granted_gbps =
                req.be_demand_gbps > 0.0
                    ? out.be_granted_gbps * d / req.be_demand_gbps
                    : 0.0;
            st.view.net_delay_factor = 1.0;
            st.view.net_overloaded =
                d > st.view.net_granted_gbps + 1e-9;
        }
    }
}

void
Machine::UpdateTelemetry()
{
    double busy = 0.0;
    for (auto& [client, st] : clients_) {
        busy += client->CpuBusyFraction() * st.cpus.Count();
    }
    cpu_util_ = std::min(1.0, busy / cfg_.LogicalCpus());

    const sim::SimTime now = queue_.Now();
    double dram = 0.0, power = 0.0;
    for (int s = 0; s < cfg_.sockets; ++s) {
        dram += dram_granted_[s];
        power += socket_power_[s];
    }
    avg_dram_.Set(now, dram);
    avg_power_.Set(now, power);
    avg_cpu_.Set(now, cpu_util_);
    avg_lc_tx_.Set(now, lc_tx_gbps_);
    avg_be_tx_.Set(now, be_tx_gbps_);
}

const TaskView&
Machine::ViewOf(const ResourceClient* client) const
{
    return StateOf(client).view;
}

double
Machine::MeasuredDramGbps(int socket) const
{
    HERACLES_CHECK(socket >= 0 && socket < cfg_.sockets);
    const double noise =
        1.0 + noise_rng_.Uniform(-cfg_.counter_noise, cfg_.counter_noise);
    return dram_granted_[socket] * noise;
}

double
Machine::MeasuredTotalDramGbps() const
{
    double total = 0.0;
    for (int s = 0; s < cfg_.sockets; ++s) total += MeasuredDramGbps(s);
    return total;
}

double
Machine::MeasuredSocketPowerW(int socket) const
{
    HERACLES_CHECK(socket >= 0 && socket < cfg_.sockets);
    const double noise =
        1.0 + noise_rng_.Uniform(-cfg_.counter_noise, cfg_.counter_noise);
    return socket_power_[socket] * noise;
}

double
Machine::MeasuredFreqGhz(const ResourceClient* client) const
{
    return StateOf(client).view.freq_ghz;
}

MachineTelemetry
Machine::Telemetry() const
{
    MachineTelemetry t;
    for (int s = 0; s < cfg_.sockets; ++s) {
        t.dram_gbps += dram_granted_[s];
        t.power_w += socket_power_[s];
    }
    t.dram_frac = t.dram_gbps / cfg_.TotalDramGbps();
    t.cpu_utilization = cpu_util_;
    t.power_frac_tdp = t.power_w / cfg_.TotalTdpW();
    t.lc_tx_gbps = lc_tx_gbps_;
    t.be_tx_gbps = be_tx_gbps_;
    t.net_frac = link_util_;
    return t;
}

MachineTelemetry
Machine::AveragedTelemetry() const
{
    const sim::SimTime now = queue_.Now();
    MachineTelemetry t;
    t.dram_gbps = avg_dram_.Mean(now);
    t.dram_frac = t.dram_gbps / cfg_.TotalDramGbps();
    t.cpu_utilization = avg_cpu_.Mean(now);
    t.power_w = avg_power_.Mean(now);
    t.power_frac_tdp = t.power_w / cfg_.TotalTdpW();
    t.lc_tx_gbps = avg_lc_tx_.Mean(now);
    t.be_tx_gbps = avg_be_tx_.Mean(now);
    t.net_frac = (t.lc_tx_gbps + t.be_tx_gbps) / cfg_.nic_gbps;
    return t;
}

void
Machine::ResetTelemetryAverages()
{
    const sim::SimTime now = queue_.Now();
    avg_dram_ = sim::TimeWeightedMean();
    avg_power_ = sim::TimeWeightedMean();
    avg_cpu_ = sim::TimeWeightedMean();
    avg_lc_tx_ = sim::TimeWeightedMean();
    avg_be_tx_ = sim::TimeWeightedMean();
    telemetry_reset_time_ = now;
    // Seed the averages with the current levels.
    const_cast<Machine*>(this)->UpdateTelemetry();
}

}  // namespace heracles::hw
