#include "hw/machine.h"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "hw/dram.h"
#include "hw/llc.h"
#include "hw/nic.h"
#include "hw/power.h"

namespace heracles::hw {

Machine::Machine(const MachineConfig& cfg, sim::EventQueue& queue)
    : cfg_(cfg),
      topo_(cfg),
      queue_(queue),
      noise_rng_(cfg.seed ^ 0xFEEDFACEull),
      dram_granted_(cfg.sockets, 0.0),
      socket_power_(cfg.sockets, 0.0)
{
    HERACLES_CHECK_MSG(cfg.sockets <= kMaxSockets,
                       "too many sockets: " << cfg.sockets);
    HERACLES_CHECK_MSG(cfg.LogicalCpus() <= kMaxCpus,
                       "too many cpus: " << cfg.LogicalCpus());
    epoch_event_ = queue_.SchedulePeriodic(cfg.epoch, cfg.epoch,
                                           [this] { EpochResolve(); });
}

Machine::~Machine()
{
    queue_.Cancel(epoch_event_);
    if (finalize_scheduled_) queue_.Cancel(finalize_event_);
}

void
Machine::AddClient(ResourceClient* client)
{
    EnsureResolved();
    HERACLES_CHECK(client != nullptr);
    for (const auto& [other, st] : clients_) {
        HERACLES_CHECK_MSG(other != client,
                           "client registered twice: " << client->name());
    }
    clients_.emplace_back(client, ClientState{});
    demand_dirty_ = true;
}

void
Machine::RemoveClient(ResourceClient* client)
{
    EnsureResolved();
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
        if (it->first == client) {
            clients_.erase(it);
            demand_dirty_ = true;
            return;
        }
    }
}

Machine::ClientState&
Machine::StateOf(ResourceClient* client)
{
    for (auto& [c, st] : clients_) {
        if (c == client) return st;
    }
    HERACLES_FATAL("unregistered client: " << client->name());
}

const Machine::ClientState&
Machine::StateOf(const ResourceClient* client) const
{
    for (const auto& [c, st] : clients_) {
        if (c == client) return st;
    }
    HERACLES_FATAL("unregistered client: " << client->name());
}

void
Machine::AssignCpus(ResourceClient* client, const CpuSet& cpus)
{
    // Flush before mutating: a resolve requested earlier this instant
    // must still see the pre-change assignment.
    EnsureResolved();
    for (int cpu : cpus.Cpus()) {
        HERACLES_CHECK_MSG(cpu < cfg_.LogicalCpus(),
                           "cpu " << cpu << " out of range");
    }
    if (!allow_sharing_) {
        for (const auto& [other, st] : clients_) {
            if (other != client && st.cpus.Intersects(cpus)) {
                HERACLES_FATAL("cpuset overlap between "
                               << client->name() << " and " << other->name()
                               << " without AllowCpuSharing");
            }
        }
    }
    StateOf(client).cpus = cpus;
    demand_dirty_ = true;
}

const CpuSet&
Machine::CpusOf(const ResourceClient* client) const
{
    return StateOf(client).cpus;
}

void
Machine::SetCatWays(ResourceClient* client, int ways)
{
    EnsureResolved();
    HERACLES_CHECK_MSG(ways >= 0 && ways <= cfg_.llc_ways,
                       "bad CAT ways: " << ways);
    StateOf(client).cat_ways = ways;
    demand_dirty_ = true;
}

int
Machine::CatWaysOf(const ResourceClient* client) const
{
    return StateOf(client).cat_ways;
}

void
Machine::SetFreqCapGhz(ResourceClient* client, double ghz)
{
    EnsureResolved();
    HERACLES_CHECK_MSG(ghz == 0.0 ||
                           (ghz >= cfg_.min_ghz && ghz <= cfg_.turbo_1c_ghz),
                       "bad DVFS cap: " << ghz);
    StateOf(client).freq_cap_ghz = ghz;
    // The power phase runs on every resolve, so a cap change needs no
    // demand-dirty mark.
}

double
Machine::FreqCapOf(const ResourceClient* client) const
{
    return StateOf(client).freq_cap_ghz;
}

void
Machine::SetBeNetCeilGbps(double gbps)
{
    EnsureResolved();
    be_net_ceil_gbps_ = gbps;
    demand_dirty_ = true;
}

void
Machine::ResolveNow()
{
    if (resolve_pending_) {
        resolve_pending_ = false;
        TouchAllBusy();
    }
    // Unconditional: callers of this entry point (tests, benches,
    // characterization rigs) may have mutated client demand without going
    // through a marked channel.
    demand_dirty_ = true;
    DoResolve();
}

void
Machine::RequestResolve()
{
    if (naive_) {
        ResolveNow();
        return;
    }
    if (resolve_pending_) {
        // A resolve is already owed at this instant; the eager resolve
        // this request would have run is superseded, but its busy-window
        // resets must still happen at this position.
        TouchAllBusy();
        return;
    }
    resolve_pending_ = true;
    if (!finalize_scheduled_) {
        // Backstop so a pending resolve can never survive past the
        // current instant: if nothing observes the machine first, this
        // event (still at time-now) finalizes the resolve.
        finalize_scheduled_ = true;
        finalize_event_ = queue_.ScheduleAt(queue_.Now(), [this] {
            finalize_scheduled_ = false;
            if (resolve_pending_) {
                resolve_pending_ = false;
                DoResolve();
            }
        });
    }
}

void
Machine::EnsureResolved() const
{
    if (!resolve_pending_) return;
    auto* self = const_cast<Machine*>(this);
    self->resolve_pending_ = false;
    self->DoResolve();
}

void
Machine::SetNaiveArbitration(bool naive)
{
    EnsureResolved();
    naive_ = naive;
    demand_dirty_ = true;
}

void
Machine::EpochResolve()
{
    if (resolve_pending_) {
        resolve_pending_ = false;
        TouchAllBusy();
    }
    DoResolve();
}

void
Machine::TouchAllBusy()
{
    for (auto& [client, st] : clients_) {
        (void)client->CpuBusyFraction();
    }
}

void
Machine::DoResolve()
{
    // The demand phases (LLC occupancy, DRAM grants, NIC shares) are pure
    // functions of inputs that only change through marked channels; the
    // busy-driven phases (HT, power, telemetry) must run every resolve,
    // both for freshness and because their busy queries reset each
    // client's measurement window.
    const bool recompute = demand_dirty_ || naive_;
    demand_dirty_ = false;
    if (recompute) {
        ResolveLlcAndDram();
        ++demand_recomputes_;
    }
    ResolveHt();
    ResolvePowerAllSockets();
    if (recompute) ResolveNetwork();
    UpdateTelemetry();
    ++resolve_count_;
}

void
Machine::ResolveLlcAndDram()
{
    // Reset only the fields this phase owns. The HT phase assigns every
    // client's ht_penalty, the power phase re-zeroes freq_ghz, and the
    // network phase overwrites every net field whenever it reruns — so
    // skipping a phase leaves exactly the values it would recompute.
    for (auto& [c, st] : clients_) {
        std::fill(std::begin(st.view.llc_mb), std::end(st.view.llc_mb), 0.0);
        std::fill(std::begin(st.view.dram_demand_gbps),
                  std::end(st.view.dram_demand_gbps), 0.0);
        std::fill(std::begin(st.view.dram_granted_gbps),
                  std::end(st.view.dram_granted_gbps), 0.0);
        st.view.dram_stretch = 0.0;  // accumulated per socket below
    }

    // clients_ iterates in registration order (never pointer order —
    // grants must not depend on the heap); indices below are positions
    // in that container.
    for (int socket = 0; socket < cfg_.sockets; ++socket) {
        // Which clients have cpus here, and with what share of their cpus.
        std::vector<LlcRequest>& reqs = scratch_reqs_;
        std::vector<size_t>& idx = scratch_idx_;          // into `clients_`
        std::vector<double>& socket_frac = scratch_frac_; // cpus share here
        reqs.clear();
        idx.clear();
        socket_frac.clear();
        for (size_t i = 0; i < clients_.size(); ++i) {
            auto& [client, st] = clients_[i];
            if (st.cpus.Empty()) continue;
            const int here = topo_.OnSocket(st.cpus, socket).Count();
            if (here == 0) continue;
            LlcRequest r;
            r.footprint_mb = client->LlcFootprintMb(socket);
            r.weight = client->LlcAccessWeight(socket);
            r.cat_ways = st.cat_ways;
            reqs.push_back(r);
            idx.push_back(i);
            socket_frac.push_back(static_cast<double>(here) /
                                  st.cpus.Count());
        }

        ResolveLlc(cfg_, reqs, &scratch_llc_);
        const std::vector<double>& llc = scratch_llc_;

        // DRAM demand given the resolved cache shares.
        std::vector<double>& demand = scratch_demand_;
        demand.assign(reqs.size(), 0.0);
        for (size_t k = 0; k < reqs.size(); ++k) {
            demand[k] =
                clients_[idx[k]].first->DramDemandGbps(socket, llc[k]);
        }
        ResolveDram(cfg_, demand, &scratch_dram_);
        const DramOutcome& dram = scratch_dram_;
        dram_granted_[socket] = dram.total_granted_gbps;

        for (size_t k = 0; k < reqs.size(); ++k) {
            TaskView& v = clients_[idx[k]].second.view;
            v.llc_mb[socket] = llc[k];
            v.dram_demand_gbps[socket] = demand[k];
            v.dram_granted_gbps[socket] = dram.granted_gbps[k];
            // The stretch is a property of the socket; a task spanning
            // sockets sees the demand-weighted mean (computed below).
        }

        // Record per-socket stretch on each participating client,
        // weighted by the client's cpu fraction on this socket so a
        // client living on one socket sees only that socket's stretch.
        for (size_t k = 0; k < reqs.size(); ++k) {
            TaskView& v = clients_[idx[k]].second.view;
            v.dram_stretch += dram.stretch * socket_frac[k];
        }
    }

    // Clients with no cpus anywhere (or rounding shortfall) keep a
    // neutral stretch.
    for (auto& [c, st] : clients_) {
        if (st.view.dram_stretch < 1.0) st.view.dram_stretch = 1.0;
    }
}

void
Machine::ResolveHt()
{
    // HyperThread penalties: what runs on the sibling of each cpu.
    const size_t n = clients_.size();
    ht_aggr_.resize(n);
    ht_busy_.assign(n, 0.0);
    for (size_t o = 0; o < n; ++o) {
        ht_aggr_[o] = clients_[o].first->HtAggression() - 1.0;
    }
    for (auto& [client, st] : clients_) {
        if (st.cpus.Empty()) {
            st.view.ht_penalty = 1.0;
            continue;
        }
        double total = 0.0;
        int n_cpus = 0;
        for (int cpu : st.cpus.Cpus()) {
            double p = 1.0;
            const int sib = topo_.SiblingOf(cpu);
            for (size_t o = 0; o < n; ++o) {
                auto& [other, ost] = clients_[o];
                if (other == client) continue;
                if (ht_aggr_[o] <= 0.0) continue;
                // Same-instant busy queries are stable from the second
                // one on (the first resets the client's measurement
                // window, the second reads the post-reset instantaneous
                // level, and nothing can change busy counts inside a
                // resolve) — so cpus past the second reuse the second
                // query's value, the exact number a per-cpu query would
                // return.
                const double busy =
                    n_cpus < 2 ? (ht_busy_[o] = other->CpuBusyFraction())
                               : ht_busy_[o];
                if (sib >= 0 && ost.cpus.Contains(sib)) {
                    p += ht_aggr_[o] * busy;
                }
                if (ost.cpus.Contains(cpu)) {
                    // Sharing the same logical cpu (OS-only baseline) is
                    // considerably worse than sharing a sibling.
                    p += 1.6 * ht_aggr_[o] * busy;
                }
            }
            total += p;
            ++n_cpus;
        }
        st.view.ht_penalty = n_cpus > 0 ? total / n_cpus : 1.0;
    }
}

void
Machine::ResolvePowerAllSockets()
{
    // This phase owns view.freq_ghz: zero it, accumulate the per-socket
    // weighted means, then apply the floor.
    for (auto& [c, st] : clients_) st.view.freq_ghz = 0.0;

    for (int socket = 0; socket < cfg_.sockets; ++socket) {
        std::vector<CorePowerRequest>& cores = scratch_cores_;
        cores.assign(cfg_.cores_per_socket, CorePowerRequest{});
        // Fill per-core busy/intensity/caps from thread ownership.
        for (auto& [client, st] : clients_) {
            if (st.cpus.Empty()) continue;
            const double busy = client->CpuBusyFraction();
            const double intensity = client->PowerIntensity();
            for (int cpu : topo_.OnSocket(st.cpus, socket).Cpus()) {
                const int core_local =
                    topo_.CoreOf(cpu) % cfg_.cores_per_socket;
                auto& c = cores[core_local];
                // Each busy thread contributes its share; two busy
                // threads saturate the physical core.
                const double add = busy / cfg_.threads_per_core;
                const double w_old = c.busy;
                c.busy = std::min(1.0, c.busy + add);
                const double w_new = c.busy - w_old;
                if (c.busy > 0.0) {
                    c.intensity = (c.intensity * w_old + intensity * w_new) /
                                  c.busy;
                }
                if (st.freq_cap_ghz > 0.0) {
                    c.dvfs_cap_ghz =
                        c.dvfs_cap_ghz > 0.0
                            ? std::min(c.dvfs_cap_ghz, st.freq_cap_ghz)
                            : st.freq_cap_ghz;
                }
            }
        }
        ResolvePower(cfg_, cores, &power_scratch_, &scratch_power_);
        const PowerOutcome& pw = scratch_power_;
        socket_power_[socket] = pw.socket_power_w;

        // Publish mean frequency per client on this socket.
        for (auto& [client, st] : clients_) {
            const CpuSet here = topo_.OnSocket(st.cpus, socket);
            if (here.Empty()) continue;
            double f = 0.0;
            int n = 0;
            for (int cpu : here.Cpus()) {
                const int core_local =
                    topo_.CoreOf(cpu) % cfg_.cores_per_socket;
                f += pw.freq_ghz[core_local];
                ++n;
            }
            // Weighted across sockets by cpu count. The view's frequency
            // was zeroed at the start of this phase.
            const double frac =
                static_cast<double>(n) / st.cpus.Count();
            st.view.freq_ghz += frac * (f / n);
        }
    }
    for (auto& [client, st] : clients_) {
        if (!st.cpus.Empty() && st.view.freq_ghz < cfg_.min_ghz) {
            st.view.freq_ghz = cfg_.min_ghz;
        }
    }
}

void
Machine::ResolveNetwork()
{
    NicRequest req;
    req.be_ceil_gbps = be_net_ceil_gbps_;
    for (auto& [client, st] : clients_) {
        if (st.cpus.Empty()) continue;
        if (client->is_lc()) {
            req.lc_demand_gbps += client->NetTxDemandGbps();
        } else {
            req.be_demand_gbps += client->NetTxDemandGbps();
        }
    }
    const NicOutcome out = ResolveNic(cfg_, req);
    lc_tx_gbps_ = out.lc_granted_gbps;
    be_tx_gbps_ = out.be_granted_gbps;
    link_util_ = out.link_utilization;

    for (auto& [client, st] : clients_) {
        if (client->is_lc()) {
            st.view.net_granted_gbps = out.lc_granted_gbps;
            st.view.net_delay_factor = out.lc_delay_factor;
            st.view.net_overloaded = out.lc_overloaded;
            st.view.net_drop_prob = out.lc_drop_prob;
        } else {
            // BE tasks split the BE grant in proportion to demand.
            const double d = client->NetTxDemandGbps();
            st.view.net_granted_gbps =
                req.be_demand_gbps > 0.0
                    ? out.be_granted_gbps * d / req.be_demand_gbps
                    : 0.0;
            st.view.net_delay_factor = 1.0;
            st.view.net_overloaded =
                d > st.view.net_granted_gbps + 1e-9;
        }
    }
}

void
Machine::UpdateTelemetry()
{
    double busy = 0.0;
    for (auto& [client, st] : clients_) {
        busy += client->CpuBusyFraction() * st.cpus.Count();
    }
    cpu_util_ = std::min(1.0, busy / cfg_.LogicalCpus());

    const sim::SimTime now = queue_.Now();
    double dram = 0.0, power = 0.0;
    for (int s = 0; s < cfg_.sockets; ++s) {
        dram += dram_granted_[s];
        power += socket_power_[s];
    }
    avg_dram_.Set(now, dram);
    avg_power_.Set(now, power);
    avg_cpu_.Set(now, cpu_util_);
    avg_lc_tx_.Set(now, lc_tx_gbps_);
    avg_be_tx_.Set(now, be_tx_gbps_);
}

const TaskView&
Machine::ViewOf(const ResourceClient* client) const
{
    EnsureResolved();
    return StateOf(client).view;
}

double
Machine::MeasuredDramGbps(int socket) const
{
    EnsureResolved();
    HERACLES_CHECK(socket >= 0 && socket < cfg_.sockets);
    const double noise =
        1.0 + noise_rng_.Uniform(-cfg_.counter_noise, cfg_.counter_noise);
    return dram_granted_[socket] * noise;
}

double
Machine::MeasuredTotalDramGbps() const
{
    double total = 0.0;
    for (int s = 0; s < cfg_.sockets; ++s) total += MeasuredDramGbps(s);
    return total;
}

double
Machine::MeasuredSocketPowerW(int socket) const
{
    EnsureResolved();
    HERACLES_CHECK(socket >= 0 && socket < cfg_.sockets);
    const double noise =
        1.0 + noise_rng_.Uniform(-cfg_.counter_noise, cfg_.counter_noise);
    return socket_power_[socket] * noise;
}

double
Machine::MeasuredFreqGhz(const ResourceClient* client) const
{
    EnsureResolved();
    return StateOf(client).view.freq_ghz;
}

double
Machine::LcTxGbps() const
{
    EnsureResolved();
    return lc_tx_gbps_;
}

double
Machine::BeTxGbps() const
{
    EnsureResolved();
    return be_tx_gbps_;
}

MachineTelemetry
Machine::Telemetry() const
{
    EnsureResolved();
    MachineTelemetry t;
    for (int s = 0; s < cfg_.sockets; ++s) {
        t.dram_gbps += dram_granted_[s];
        t.power_w += socket_power_[s];
    }
    t.dram_frac = t.dram_gbps / cfg_.TotalDramGbps();
    t.cpu_utilization = cpu_util_;
    t.power_frac_tdp = t.power_w / cfg_.TotalTdpW();
    t.lc_tx_gbps = lc_tx_gbps_;
    t.be_tx_gbps = be_tx_gbps_;
    t.net_frac = link_util_;
    return t;
}

MachineTelemetry
Machine::AveragedTelemetry() const
{
    EnsureResolved();
    const sim::SimTime now = queue_.Now();
    MachineTelemetry t;
    t.dram_gbps = avg_dram_.Mean(now);
    t.dram_frac = t.dram_gbps / cfg_.TotalDramGbps();
    t.cpu_utilization = avg_cpu_.Mean(now);
    t.power_w = avg_power_.Mean(now);
    t.power_frac_tdp = t.power_w / cfg_.TotalTdpW();
    t.lc_tx_gbps = avg_lc_tx_.Mean(now);
    t.be_tx_gbps = avg_be_tx_.Mean(now);
    t.net_frac = (t.lc_tx_gbps + t.be_tx_gbps) / cfg_.nic_gbps;
    return t;
}

void
Machine::ResetTelemetryAverages()
{
    EnsureResolved();
    const sim::SimTime now = queue_.Now();
    avg_dram_ = sim::TimeWeightedMean();
    avg_power_ = sim::TimeWeightedMean();
    avg_cpu_ = sim::TimeWeightedMean();
    avg_lc_tx_ = sim::TimeWeightedMean();
    avg_be_tx_ = sim::TimeWeightedMean();
    telemetry_reset_time_ = now;
    // Seed the averages with the current levels.
    const_cast<Machine*>(this)->UpdateTelemetry();
}

}  // namespace heracles::hw
