/**
 * @file
 * Egress network link model with HTB-style traffic shaping.
 *
 * Without shaping, a best-effort task generating many low-bandwidth "mice"
 * flows grabs most of the link: TCP's per-flow fairness gives N flows a
 * combined N/(N+M) share, and congestion control cannot throttle a swarm
 * of short flows (Section 3.2 of the paper). With a hierarchical token
 * bucket (Linux tc qdisc), the BE class is capped at a ceil and the LC
 * class is never limited. The LC task's transmit latency scales with the
 * utilization of whatever bandwidth is left to it.
 */
#ifndef HERACLES_HW_NIC_H
#define HERACLES_HW_NIC_H

#include "hw/config.h"

namespace heracles::hw {

/** Input demands for one resolution of the egress link. */
struct NicRequest {
    double lc_demand_gbps = 0.0;
    double be_demand_gbps = 0.0;
    /** HTB ceil for the BE class; <0 = shaping disabled (no qdisc). */
    double be_ceil_gbps = -1.0;
    /**
     * How aggressively unshaped BE traffic competes: the maximum link
     * fraction its flow swarm can capture (default 65%, i.e. many mice
     * flows versus the LC task's fewer flows).
     */
    double be_unshaped_capture = 0.65;
};

/** Result of resolving the egress link. */
struct NicOutcome {
    double lc_granted_gbps = 0.0;
    double be_granted_gbps = 0.0;
    double link_utilization = 0.0;  ///< (lc + be granted) / link rate.
    /**
     * Multiplier on the LC task's per-response transmit time from
     * queueing behind other traffic (>= 1).
     */
    double lc_delay_factor = 1.0;
    bool lc_overloaded = false;  ///< LC demand exceeded available bandwidth.
    /**
     * Probability that an LC response loses a packet and eats a TCP
     * retransmission timeout. Non-zero only when an *unshaped* mice-flow
     * swarm congests the link: TCP congestion control cannot throttle
     * many short flows, so LC packets are dropped at the NIC queue. HTB
     * shaping eliminates this entirely — which is exactly why Heracles'
     * network subcontroller exists.
     */
    double lc_drop_prob = 0.0;
};

/** Resolves the shared egress link for one epoch. */
NicOutcome ResolveNic(const MachineConfig& cfg, const NicRequest& req);

}  // namespace heracles::hw

#endif  // HERACLES_HW_NIC_H
