/**
 * @file
 * The interface between workloads and the shared-resource models.
 *
 * Every colocated task (the LC service, each antagonist, each BE batch job)
 * registers a ResourceClient with the Machine. Each contention epoch the
 * resolver queries the client's demand on every shared resource, resolves
 * competition, and publishes a TaskView describing what the task actually
 * received. Workload models read their TaskView when computing service
 * times or accruing throughput.
 */
#ifndef HERACLES_HW_CLIENT_H
#define HERACLES_HW_CLIENT_H

#include <string>

#include "hw/cpuset.h"

namespace heracles::hw {

/** Maximum sockets supported in per-socket arrays. */
constexpr int kMaxSockets = 4;

/** A task's demand on the server's shared resources. */
class ResourceClient
{
  public:
    virtual ~ResourceClient() = default;

    /** Task name (for reports and debugging). */
    virtual const std::string& name() const = 0;

    /** True for the latency-critical task; false for antagonists/BE. */
    virtual bool is_lc() const = 0;

    /** Fraction of the task's allocated cpus that are busy, in [0, 1]. */
    virtual double CpuBusyFraction() const = 0;

    /** Cache footprint the task would like resident on @p socket (MB). */
    virtual double LlcFootprintMb(int socket) const = 0;

    /**
     * Relative intensity of the task's cache accesses on @p socket, used
     * as its weight in shared-cache competition when CAT is off. Roughly
     * "footprint * accesses per second", arbitrary common unit.
     */
    virtual double LlcAccessWeight(int socket) const = 0;

    /**
     * DRAM bandwidth the task would consume on @p socket given that
     * @p effective_llc_mb of its footprint is cache-resident (GB/s).
     */
    virtual double DramDemandGbps(int socket,
                                  double effective_llc_mb) const = 0;

    /** Per-busy-core power intensity; 1.0 = typical, ~2 = power virus. */
    virtual double PowerIntensity() const = 0;

    /** Desired egress network bandwidth (Gb/s). */
    virtual double NetTxDemandGbps() const = 0;

    /**
     * Slowdown this task inflicts on a *different* task sharing a physical
     * core via HyperThreading (multiplier >= 1; 1 = no interference).
     */
    virtual double HtAggression() const = 0;
};

/** What a task actually received this epoch, per shared resource. */
struct TaskView {
    /** Cache-resident MB on each socket (post-CAT / post-competition). */
    double llc_mb[kMaxSockets] = {0, 0, 0, 0};

    /** DRAM bandwidth demanded / granted on each socket (GB/s). */
    double dram_demand_gbps[kMaxSockets] = {0, 0, 0, 0};
    double dram_granted_gbps[kMaxSockets] = {0, 0, 0, 0};

    /**
     * Memory-access-time multiplier from DRAM contention (>= 1), the
     * demand-weighted mean over the task's sockets.
     */
    double dram_stretch = 1.0;

    /** Mean effective core frequency over the task's cpus (GHz). */
    double freq_ghz = 0.0;

    /**
     * Mean service-time multiplier from foreign HyperThread siblings
     * (>= 1; 1 when no other task shares the task's physical cores).
     */
    double ht_penalty = 1.0;

    /** Egress bandwidth granted (Gb/s) and queueing delay multiplier. */
    double net_granted_gbps = 0.0;
    double net_delay_factor = 1.0;
    /** Probability a response loses a packet to congestion (RTO). */
    double net_drop_prob = 0.0;
    /** True when the task wanted more egress bandwidth than it received. */
    bool net_overloaded = false;

    /** Total granted DRAM bandwidth across sockets. */
    double
    TotalDramGrantedGbps() const
    {
        double s = 0;
        for (double g : dram_granted_gbps) s += g;
        return s;
    }

    /** Total effective cache across sockets. */
    double
    TotalLlcMb() const
    {
        double s = 0;
        for (double m : llc_mb) s += m;
        return s;
    }
};

}  // namespace heracles::hw

#endif  // HERACLES_HW_CLIENT_H
