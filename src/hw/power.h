/**
 * @file
 * Socket power and frequency model: turbo, TDP throttling, per-core DVFS.
 *
 * Modern Xeons opportunistically raise frequency above nominal when there
 * is power headroom (Turbo Boost) and throttle the whole socket when the
 * running-average power would exceed TDP. Per-core DVFS caps let software
 * (Heracles' power subcontroller) keep BE cores slow so LC cores retain
 * their guaranteed frequency. This model solves for the per-core
 * frequencies each epoch:
 *
 *   f_i = clamp(min(dvfs_cap_i, lambda * turbo(active)), f_min, ...)
 *
 * where lambda in (0, 1] is the largest scale for which socket power stays
 * within TDP. Socket power is
 *
 *   P = uncore + sum_i [ idle + busy_i * intensity_i * k * f_i^e ].
 */
#ifndef HERACLES_HW_POWER_H
#define HERACLES_HW_POWER_H

#include <utility>
#include <vector>

#include "hw/config.h"

namespace heracles::hw {

/** Per-core inputs to the frequency solver (one socket). */
struct CorePowerRequest {
    double busy = 0.0;       ///< Busy fraction of the physical core [0,1].
    double intensity = 1.0;  ///< Workload power intensity (virus ~2).
    double dvfs_cap_ghz = 0.0;  ///< 0 = uncapped.
};

/** Solver output for one socket. */
struct PowerOutcome {
    std::vector<double> freq_ghz;  ///< Per-core effective frequency.
    double socket_power_w = 0.0;
    bool throttled = false;  ///< True if TDP limited frequencies.
};

/**
 * Reusable solver scratch. Candidate frequencies are quantized to the
 * DVFS step grid, so only a handful of distinct f^dyn_exp values ever
 * occur; this memoizes them (keyed by the exact quantized frequency,
 * making memoized and unmemoized results bit-identical) across
 * ResolvePower calls. The exponent comes from the config, so a scratch
 * must not be shared between machines with different `dyn_exp`.
 */
struct PowerScratch {
    std::vector<std::pair<double, double>> pow_f;  ///< (f_ghz, f^dyn_exp).
};

/** All-core-aware max turbo frequency for @p active_cores busy cores. */
double MaxTurboGhz(const MachineConfig& cfg, int active_cores);

/** Dynamic power of one fully-busy core at @p f_ghz and @p intensity. */
double CoreDynPowerW(const MachineConfig& cfg, double f_ghz,
                     double intensity);

/** Solves per-core frequencies and socket power for one socket. */
PowerOutcome ResolvePower(const MachineConfig& cfg,
                          const std::vector<CorePowerRequest>& cores);

/**
 * Buffer-reusing form for per-epoch callers: recycles @p out's frequency
 * vector and (when @p scratch is non-null) the pow() memo. Identical
 * results to the returning form.
 */
void ResolvePower(const MachineConfig& cfg,
                  const std::vector<CorePowerRequest>& cores,
                  PowerScratch* scratch, PowerOutcome* out);

}  // namespace heracles::hw

#endif  // HERACLES_HW_POWER_H
