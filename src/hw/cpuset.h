/**
 * @file
 * Logical-CPU sets and the machine topology mapping.
 *
 * Logical CPU ids are laid out socket-major, then physical core, then
 * hardware thread: cpu = socket * cpus_per_socket + core * threads + thread.
 * This mirrors how the library's cpuset "cgroup" actuator pins tasks.
 */
#ifndef HERACLES_HW_CPUSET_H
#define HERACLES_HW_CPUSET_H

#include <bitset>
#include <string>
#include <vector>

#include "hw/config.h"
#include "sim/log.h"

namespace heracles::hw {

/** Maximum logical CPUs supported by CpuSet. */
constexpr int kMaxCpus = 256;

/** A set of logical CPUs (like a cgroup cpuset mask). */
class CpuSet
{
  public:
    CpuSet() = default;

    /** Builds a set from explicit cpu ids. */
    static CpuSet Of(const std::vector<int>& cpus);

    /** Builds the contiguous range [first, first + count). */
    static CpuSet Range(int first, int count);

    void
    Add(int cpu)
    {
        HERACLES_CHECK(cpu >= 0 && cpu < kMaxCpus);
        bits_.set(static_cast<size_t>(cpu));
    }
    void
    Remove(int cpu)
    {
        HERACLES_CHECK(cpu >= 0 && cpu < kMaxCpus);
        bits_.reset(static_cast<size_t>(cpu));
    }
    bool
    Contains(int cpu) const
    {
        return cpu >= 0 && cpu < kMaxCpus &&
               bits_.test(static_cast<size_t>(cpu));
    }

    int Count() const { return static_cast<int>(bits_.count()); }
    bool Empty() const { return bits_.none(); }

    /** All cpu ids in the set, ascending. */
    std::vector<int> Cpus() const;

    CpuSet
    Union(const CpuSet& o) const
    {
        CpuSet r;
        r.bits_ = bits_ | o.bits_;
        return r;
    }
    CpuSet
    Intersect(const CpuSet& o) const
    {
        CpuSet r;
        r.bits_ = bits_ & o.bits_;
        return r;
    }
    CpuSet
    Minus(const CpuSet& o) const
    {
        CpuSet r;
        r.bits_ = bits_ & ~o.bits_;
        return r;
    }
    bool Intersects(const CpuSet& o) const { return (bits_ & o.bits_).any(); }
    bool operator==(const CpuSet& o) const { return bits_ == o.bits_; }

    /** Compact human-readable form, e.g. "0-3,8,10-11". */
    std::string ToString() const;

  private:
    std::bitset<kMaxCpus> bits_;
};

/** Maps logical cpu ids to (socket, physical core, thread) and back. */
class Topology
{
  public:
    explicit Topology(const MachineConfig& cfg) : cfg_(cfg) {}

    int SocketOf(int cpu) const { return cpu / cfg_.CpusPerSocket(); }

    /** Physical core id (machine-global) of a logical cpu. */
    int
    CoreOf(int cpu) const
    {
        const int local = cpu % cfg_.CpusPerSocket();
        return SocketOf(cpu) * cfg_.cores_per_socket +
               local / cfg_.threads_per_core;
    }

    int ThreadOf(int cpu) const {
        return (cpu % cfg_.CpusPerSocket()) % cfg_.threads_per_core;
    }

    /** Logical cpu for (socket-global core id, hardware thread). */
    int
    CpuOf(int core, int thread) const
    {
        const int socket = core / cfg_.cores_per_socket;
        const int local_core = core % cfg_.cores_per_socket;
        return socket * cfg_.CpusPerSocket() +
               local_core * cfg_.threads_per_core + thread;
    }

    /** The other hardware thread on the same physical core (or -1). */
    int
    SiblingOf(int cpu) const
    {
        if (cfg_.threads_per_core < 2) return -1;
        const int t = ThreadOf(cpu);
        return CpuOf(CoreOf(cpu), t == 0 ? 1 : 0);
    }

    /** Both hyperthreads of @p n physical cores starting at @p first_core. */
    CpuSet PhysicalCores(int first_core, int n) const;

    /**
     * Both hyperthreads of @p n physical cores spread evenly across
     * sockets (socket 0 core 0, socket 1 core 0, socket 0 core 1, ...),
     * the way a NUMA-interleaved latency-critical service is pinned.
     */
    CpuSet SpreadCores(int n) const;

    /** Every logical cpu of the machine. */
    CpuSet AllCpus() const;

    /** Thread @p thread of each of @p n cores starting at @p first_core. */
    CpuSet ThreadOfCores(int first_core, int n, int thread) const;

    /** Number of distinct physical cores covered by @p set. */
    int PhysicalCoreCount(const CpuSet& set) const;

    /** Cpus of @p set that live on @p socket. */
    CpuSet OnSocket(const CpuSet& set, int socket) const;

    const MachineConfig& config() const { return cfg_; }

  private:
    MachineConfig cfg_;
};

}  // namespace heracles::hw

#endif  // HERACLES_HW_CPUSET_H
