/**
 * @file
 * Scenario catalog types: self-describing end-to-end colocation
 * scenarios and the canonical metrics record every scenario emits.
 *
 * A ScenarioSpec names one point of the evaluation matrix — an LC
 * workload × a BE/antagonist mix × a load shape × a topology × an
 * isolation policy — with everything needed to reproduce it from its
 * name and a seed. Scenarios are the unit of regression: the golden
 * harness (tests/golden_test.cc) runs reduced-scale variants of every
 * registered scenario and pins the resulting ScenarioMetrics against
 * checked-in baselines with per-metric tolerances.
 */
#ifndef HERACLES_SCENARIOS_SCENARIO_H
#define HERACLES_SCENARIOS_SCENARIO_H

#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_plan.h"
#include "cluster/scheduler.h"
#include "exp/server_sim.h"
#include "heracles/config.h"
#include "hw/config.h"
#include "sim/time.h"

namespace heracles::scenarios {

/** Where the scenario runs. */
enum class Topology {
    kSingleServer,  ///< One server, one LC app, optional BE job.
    kCluster,       ///< Root/leaf fan-out cluster (Section 5.3).
};

/** Load shape driving the LC workload. */
enum class TraceKind {
    kConstant,    ///< Fixed load forever.
    kStep,        ///< Base load, then a step to the peak mid-measurement.
    kDiurnal,     ///< Valley-to-peak swing (the paper's 12 h trace).
    kFlashCrowd,  ///< Sudden burst: steep ramp, plateau, decay.
};

/** Human-readable topology name ("single-server" / "cluster"). */
std::string TopologyName(Topology t);

/** Human-readable trace-kind name ("constant", "step", ...). */
std::string TraceKindName(TraceKind k);

/**
 * Named machine shapes for heterogeneous clusters: "default" is the
 * paper's dual-socket Haswell-EP class server, "small" a half-width
 * edge box, "big" a wider high-memory server. Aborts on unknown names.
 */
hw::MachineConfig MachineVariant(const std::string& name);

/**
 * One slot of a cluster's leaf mix: LC workload × machine shape ×
 * tail-target scale. A scenario's leaf_mix is cycled over its leaf
 * count, so the same mix composes clusters of any size.
 */
struct ClusterLeafTemplate {
    std::string lc = "websearch";
    std::string machine = "default";  ///< MachineVariant() name.
    /** Multiplier on the leaf's derived tail target (headroom policy). */
    double tail_scale = 1.0;
};

/**
 * Blueprint of one end-to-end scenario. Everything, including the
 * machine and the controller tunables, is part of the spec so two runs
 * of the same (spec, seed, scale) are bit-identical.
 */
struct ScenarioSpec {
    std::string name;         ///< Unique catalog key (CLI `--scenario`).
    std::string description;  ///< One-line summary for `--list-scenarios`.

    Topology topology = Topology::kSingleServer;
    /** Server shape; every leaf of a cluster scenario uses the same. */
    hw::MachineConfig machine;

    /** LC workload name resolved via workloads::AllLcWorkloads(). */
    std::string lc = "websearch";
    /** BE job name via workloads::BeProfileByName(); "none" = no BE. */
    std::string be = "brain";
    /** Isolation policy (Heracles, baseline, OS-only, static). */
    exp::PolicyKind policy = exp::PolicyKind::kHeracles;
    /** Controller tunables; paper defaults unless the scenario ablates. */
    ctl::HeraclesConfig heracles;

    TraceKind trace = TraceKind::kConstant;
    /** Constant level, or the base of a step/diurnal/flash trace. */
    double load = 0.5;
    /** Peak load of step/diurnal/flash traces (unused for constant). */
    double load_high = 0.8;

    // --- Single-server phases (scaled by RunOptions::time_scale) ---------
    sim::Duration warmup = sim::Seconds(90);
    sim::Duration measure = sim::Seconds(120);

    // --- Cluster shape ---------------------------------------------------
    int leaves = 6;          ///< Fan-out width (kCluster only).
    bool colocate = true;    ///< Run BE jobs on the leaves.
    /** Enable the centralized root controller (paper's future work). */
    bool central_controller = false;
    sim::Duration cluster_duration = sim::Minutes(10);

    /**
     * Heterogeneous leaf composition, cycled over `leaves`. Empty =
     * the paper's uniform cluster (every leaf runs `lc` on `machine`,
     * brain/streetview pinned alternately).
     */
    std::vector<ClusterLeafTemplate> leaf_mix;
    /** Shard count (> 0 switches the root to the sharded topology). */
    int shards = 0;
    /** Leaves per rack (> 0 switches the root to the hierarchical
     *  leaf → rack → pod-root topology; takes precedence over shards). */
    int rack_size = 0;
    /** Cluster-level BE scheduling policy. */
    cluster::SchedulerPolicy scheduler =
        cluster::SchedulerPolicy::kStaticSplit;
    /** kPredictive's CPI2-style monitoring ablation: act greedy, count
     *  predictive disagreements (SchedulerConfig::predict_only). */
    bool predict_only = false;
    /**
     * Cluster-wide BE job queue by name. With the static split, job j
     * is pinned to leaf j (today's behavior); greedy/round-robin place
     * and migrate these at runtime. Empty = the uniform cluster's
     * alternating brain/streetview pinning.
     */
    std::vector<std::string> be_jobs;
    /** Derive tail targets per leaf (required for mixed-LC leaves). */
    bool per_leaf_targets = false;
    /**
     * Keep the spec's exact leaf count even under
     * RunOptions::cluster_leaves — set on scenarios whose leaf mix or
     * shard shape the override would distort.
     */
    bool fixed_leaves = false;

    /**
     * True for scenarios whose *point* is an SLO violation (e.g. the
     * os-only ablation). The CLI exit code flags only unexpected
     * violations; the golden baseline still pins the violating record.
     */
    bool expect_slo_violation = false;

    /**
     * Time scale at/above which a *transient* SLO violation is expected
     * (0 = never). Abrupt step/flash scenarios violate only when the
     * trace runs long enough for the controller to grow BE to its full
     * allocation before the surge lands: from there the 15 s top-level
     * poll plus the staged core return cannot drain the arrival backlog
     * before a window tail explodes — inherent to the paper's reactive
     * design, and the regime the predictive tier exists for. Below the
     * threshold (golden and smoke scales) any violation is still a
     * regression; use ViolationExpected() for the verdict.
     */
    double expect_violation_at_scale = 0.0;

    /**
     * Deterministic fault-injection plan (the chaos_* family; also the
     * CLI's --faults). Windows are fractions of the run, so the same
     * plan degrades a full-scale run and its golden-scale regression
     * variant at the same relative times. Empty = clean weather.
     */
    chaos::FaultPlan faults;

    /** Default RNG seed; RunOptions::seed overrides from the CLI. */
    uint64_t seed = 1;
};

/**
 * True when an SLO violation by this spec counts as expected at
 * @p time_scale — either unconditionally (expect_slo_violation) or
 * because the run is at/above the spec's transient-violation scale
 * threshold. The shared verdict of every reporting surface
 * (heracles_sim --json, bench_record), so "unexpected" means unexpected
 * at *every* scale.
 */
bool ViolationExpected(const ScenarioSpec& spec, double time_scale);

/**
 * The canonical structured metrics record of one scenario run. Every
 * field is a double so the record round-trips through JSON exactly and
 * compares field-by-field; counts are stored as exact integers in
 * double (all are far below 2^53).
 *
 * Single-server and cluster scenarios populate different subsets (a
 * cluster run has no single-server telemetry, a single-server run has
 * no root target); unused fields stay zero and still participate in
 * golden comparison, pinning them at zero.
 */
struct ScenarioMetrics {
    std::string scenario;  ///< Catalog name of the scenario that ran.

    // --- SLO / latency ---------------------------------------------------
    double slo_attained = 0.0;   ///< 1.0 when no SLO violation.
    double tail_frac_slo = 0.0;  ///< Worst tail / target (root for cluster).
    double worst_tail_ms = 0.0;
    double p95_ms = 0.0;  ///< Overall p95 across measurement (single-server).
    double p99_ms = 0.0;

    // --- Throughput / utilization ---------------------------------------
    double lc_throughput = 0.0;  ///< Served fraction of LC peak.
    double be_throughput = 0.0;  ///< Normalized to the BE job running alone.
    double emu = 0.0;            ///< Effective Machine Utilization (mean).
    double min_emu = 0.0;        ///< Worst window (cluster only).
    double dram_frac = 0.0;
    double cpu_util = 0.0;
    double power_frac_tdp = 0.0;

    // --- Controller activity ---------------------------------------------
    double polls = 0.0;
    double be_enables = 0.0;
    double be_disables = 0.0;
    double core_shrinks = 0.0;
    double act_set_cores = 0.0;
    double act_set_ways = 0.0;
    double act_set_freq_cap = 0.0;
    double act_set_net_ceil = 0.0;

    // --- Final state -------------------------------------------------------
    double be_cores = 0.0;
    double be_ways = 0.0;

    // --- Cluster-level scheduler activity ---------------------------------
    // Zero for single-server scenarios and the static split; optional
    // in baselines written before these metrics existed (parsed as 0).
    double be_placements = 0.0;
    double be_migrations = 0.0;
    // CPI2-style monitoring-only ablation: decisions where the
    // predictive ranking disagreed with the acting policy's choice.
    // Structurally zero outside predict_only runs; same omit-when-zero /
    // optional-parse rule as the other scheduler counters.
    double be_would_placements = 0.0;
    double be_would_migrations = 0.0;

    // --- Chaos / safety harness --------------------------------------------
    // invariant_violations is the safety verdict of the invariant
    // checker that rides along on every Heracles run: its golden
    // tolerance is exact and the harness asserts it stays zero.
    // faulted_ops counts dropped actuations + degraded telemetry reads,
    // pinning that a chaos scenario's plan actually fired. Both are
    // structurally zero outside the chaos family and omitted from JSON
    // when zero (parsed as 0), so pre-chaos baselines never churn.
    double invariant_violations = 0.0;
    double faulted_ops = 0.0;

    // --- Cluster targets ---------------------------------------------------
    double root_target_ms = 0.0;
    double leaf_target_ms = 0.0;

    /** All metrics as ordered (key, value) pairs — the JSON layout. */
    std::vector<std::pair<std::string, double>> Kv() const;

    /** Bit-exact equality of every field (the jobs-invariance check). */
    bool ExactlyEquals(const ScenarioMetrics& other) const;
};

/** Serializes a metrics record as pretty-printed JSON (round-trips). */
std::string MetricsToJson(const ScenarioMetrics& m);

/**
 * Parses JSON produced by MetricsToJson. Returns false when the text is
 * malformed or any expected metric key is missing (e.g. a baseline from
 * before a new metric was added — regenerate with --update-golden).
 */
bool MetricsFromJson(const std::string& json, ScenarioMetrics* out);

/** Per-metric comparison tolerance: pass when
 *  |got - golden| <= max(abs, rel * |golden|). */
struct Tolerance {
    double rel = 0.0;
    double abs = 0.0;
};

/** The tolerance assigned to a metric key (counts are looser than
 *  latencies; slo_attained is exact). */
Tolerance ToleranceFor(const std::string& key);

/**
 * Compares a run against its golden baseline using per-metric
 * tolerances. Returns true when every metric passes; otherwise appends
 * one human-readable line per failing metric to @p mismatches.
 */
bool WithinTolerance(const ScenarioMetrics& got,
                     const ScenarioMetrics& golden,
                     std::vector<std::string>* mismatches = nullptr);

}  // namespace heracles::scenarios

#endif  // HERACLES_SCENARIOS_SCENARIO_H
