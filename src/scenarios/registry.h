/**
 * @file
 * The scenario catalog: every named scenario in the library.
 *
 * The catalog spans the evaluation matrix — each LC workload
 * (websearch, ml_cluster, memkeyval) × BE/antagonist mixes × load
 * shapes (constant, step, diurnal, flash-crowd) × single-server and
 * cluster topologies × policy ablations. Benches, examples, the
 * heracles_sim CLI (--list-scenarios / --scenario NAME) and the golden
 * regression harness all compose from this one registry instead of
 * assembling servers by hand.
 */
#ifndef HERACLES_SCENARIOS_REGISTRY_H
#define HERACLES_SCENARIOS_REGISTRY_H

#include "scenarios/scenario.h"

namespace heracles::scenarios {

/** Every registered scenario, in catalog order. */
const std::vector<ScenarioSpec>& AllScenarios();

/** Looks a scenario up by name; nullptr when unknown. */
const ScenarioSpec* FindScenario(const std::string& name);

/** FindScenario that aborts with a named diagnostic when unknown — for
 *  benches/examples hard-wired to a cataloged scenario. */
const ScenarioSpec& MustFindScenario(const std::string& name);

}  // namespace heracles::scenarios

#endif  // HERACLES_SCENARIOS_REGISTRY_H
