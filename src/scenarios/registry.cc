#include "scenarios/registry.h"

#include "sim/log.h"

namespace heracles::scenarios {
namespace {

ScenarioSpec
Single(std::string name, std::string description, std::string lc,
       std::string be, exp::PolicyKind policy, TraceKind trace,
       double load, double load_high, uint64_t seed)
{
    ScenarioSpec s;
    s.name = std::move(name);
    s.description = std::move(description);
    s.topology = Topology::kSingleServer;
    s.lc = std::move(lc);
    s.be = std::move(be);
    s.policy = policy;
    s.trace = trace;
    s.load = load;
    s.load_high = load_high;
    s.seed = seed;
    return s;
}

ScenarioSpec
Cluster(std::string name, std::string description, bool colocate,
        bool central, uint64_t seed)
{
    ScenarioSpec s;
    s.name = std::move(name);
    s.description = std::move(description);
    s.topology = Topology::kCluster;
    s.lc = "websearch";
    s.be = colocate ? "brain+streetview" : "none";
    s.policy = colocate ? exp::PolicyKind::kHeracles
                        : exp::PolicyKind::kNoColocation;
    s.trace = TraceKind::kDiurnal;
    s.load = 0.20;
    s.load_high = 0.90;
    s.leaves = 6;
    s.colocate = colocate;
    s.central_controller = central;
    s.cluster_duration = sim::Minutes(10);
    s.seed = seed;
    return s;
}

std::vector<ScenarioSpec>
BuildCatalog()
{
    using PK = exp::PolicyKind;
    using TK = TraceKind;
    std::vector<ScenarioSpec> all;

    // --- websearch colocations: the four policies on one mix -----------
    all.push_back(Single(
        "websearch_brain_heracles",
        "websearch + brain at 50% load under the full controller", "websearch",
        "brain", PK::kHeracles, TK::kConstant, 0.5, 0.5, 11));
    all.push_back(Single(
        "websearch_brain_static",
        "same mix under a fixed half/half core+LLC split", "websearch",
        "brain", PK::kStaticPartition, TK::kConstant, 0.5, 0.5, 12));
    {
        // The paper's Figure 1 "brain" row: OS-only isolation cannot
        // protect the tail, so the violation *is* the expected outcome.
        ScenarioSpec s = Single(
            "websearch_brain_os_only",
            "same mix with Linux-only isolation (shared cpus, CFS shares)",
            "websearch", "brain", PK::kOsOnly, TK::kConstant, 0.5, 0.5,
            13);
        s.expect_slo_violation = true;
        all.push_back(s);
    }
    all.push_back(Single(
        "websearch_baseline",
        "websearch alone at 70% load (no colocation reference)",
        "websearch", "none", PK::kNoColocation, TK::kConstant, 0.7, 0.7,
        14));

    // --- websearch versus antagonists and load shapes --------------------
    all.push_back(Single(
        "websearch_streamllc_heracles",
        "websearch vs the stream-LLC cache antagonist", "websearch",
        "stream-llc", PK::kHeracles, TK::kConstant, 0.5, 0.5, 15));
    {
        // At time scales >= ~0.5 the step lands after ~10 top-level
        // polls, when brain holds most of the machine; 80% load does
        // not trip the 85% safeguard, so the controller only reacts to
        // negative slack — 15 s late, returning cores a few per 2 s
        // tick — while the LC queue explodes. A transient violation is
        // the faithful reactive-controller outcome there (and the
        // motivation for the predictive tier); below the threshold the
        // step arrives before BE has grown and the run must stay clean.
        ScenarioSpec s = Single(
            "websearch_brain_step",
            "load step 30%->80% mid-measurement: the load safeguard path",
            "websearch", "brain", PK::kHeracles, TK::kStep, 0.3, 0.8, 16);
        s.expect_violation_at_scale = 0.45;
        all.push_back(s);
    }
    all.push_back(Single(
        "websearch_brain_diurnal",
        "websearch + brain across a 25%-75% diurnal swing", "websearch",
        "brain", PK::kHeracles, TK::kDiurnal, 0.25, 0.75, 17));
    {
        // Same transient regime as the step scenario: the crowd's ramp
        // outruns the reactive unwind once BE is fully grown.
        ScenarioSpec s = Single(
            "websearch_brain_flashcrowd",
            "flash crowd to 90%: BE must be evicted within one period",
            "websearch", "brain", PK::kHeracles, TK::kFlashCrowd, 0.35,
            0.90, 18);
        s.expect_violation_at_scale = 0.45;
        all.push_back(s);
    }

    // --- ml_cluster: DRAM-heavy LC with super-linear footprint ---------
    all.push_back(Single(
        "mlcluster_streetview_heracles",
        "ml_cluster + DRAM-bound streetview at 60% load", "ml_cluster",
        "streetview", PK::kHeracles, TK::kConstant, 0.6, 0.6, 19));
    all.push_back(Single(
        "mlcluster_streamdram_heracles",
        "ml_cluster vs the stream-DRAM bandwidth antagonist",
        "ml_cluster", "stream-dram", PK::kHeracles, TK::kConstant, 0.4,
        0.4, 20));
    all.push_back(Single(
        "mlcluster_brain_diurnal",
        "ml_cluster + brain across a 20%-80% diurnal swing", "ml_cluster",
        "brain", PK::kHeracles, TK::kDiurnal, 0.20, 0.80, 21));

    // --- memkeyval: microsecond SLO, network-limited -------------------
    all.push_back(Single(
        "memkeyval_iperf_heracles",
        "memkeyval + iperf: egress shaping defends a us-scale SLO",
        "memkeyval", "iperf", PK::kHeracles, TK::kConstant, 0.5, 0.5, 22));
    {
        // Violates only at full scale (the us-scale SLO holds further
        // up the ramp than websearch's); same reactive-unwind transient.
        ScenarioSpec s = Single(
            "memkeyval_cpupwr_flashcrowd",
            "memkeyval + power virus through a flash crowd to 85%",
            "memkeyval", "cpu_pwr", PK::kHeracles, TK::kFlashCrowd, 0.30,
            0.85, 23);
        s.expect_violation_at_scale = 0.9;
        all.push_back(s);
    }

    // --- controller ablation -------------------------------------------
    {
        ScenarioSpec s = Single(
            "websearch_brain_no_bw_model",
            "ablation A2: controller without the offline LC bw model",
            "websearch", "brain", PK::kHeracles, TK::kConstant, 0.5, 0.5,
            24);
        s.heracles.use_bw_model = false;
        all.push_back(s);
    }

    // --- cluster topology ------------------------------------------------
    all.push_back(Cluster(
        "cluster_websearch_heracles",
        "fan-out websearch cluster, brain/streetview on the leaves",
        /*colocate=*/true, /*central=*/false, 31));
    all.push_back(Cluster(
        "cluster_websearch_baseline",
        "the same cluster without colocation (EMU floor reference)",
        /*colocate=*/false, /*central=*/false, 32));
    all.push_back(Cluster(
        "cluster_websearch_central",
        "centralized controller converts root slack into leaf targets",
        /*colocate=*/true, /*central=*/true, 33));

    // --- composable clusters: heterogeneous leaves, sharding, the
    // --- cluster-level BE scheduler --------------------------------------
    // The heterogeneous mix shared by the scheduler scenarios: two
    // paper-class leaves and two wide high-memory leaves granted extra
    // tail headroom, serving websearch and ml_cluster side by side.
    // ml_cluster's lower peak_qps makes its leaves systematically
    // tighter under the shared root query stream — exactly the
    // asymmetry a slack-aware scheduler can exploit and a static
    // pinning cannot.
    const std::vector<ClusterLeafTemplate> hetero_mix = {
        {"websearch", "default", 1.0},
        {"ml_cluster", "default", 1.0},
        {"websearch", "big", 1.2},
        {"ml_cluster", "big", 1.2},
    };
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_static",
            "heterogeneous leaf mix, BE jobs pinned static-split",
            /*colocate=*/true, /*central=*/false, 34);
        s.leaf_mix = hetero_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_greedy_diurnal",
            "same mix, greedy most-slack-first scheduler placing the jobs",
            /*colocate=*/true, /*central=*/false, 34);
        s.leaf_mix = hetero_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        all.push_back(s);
    }
    // The predictive pair shares the greedy scenario's seed, mix and
    // trace exactly, so any golden/EMU difference is the policy alone.
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_pred_diurnal",
            "same mix, fingerprint-predictive placement (slack as veto)",
            /*colocate=*/true, /*central=*/false, 34);
        s.leaf_mix = hetero_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kPredictive;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_pred_monitor",
            "CPI2-style ablation: act greedy, count predictive dissent",
            /*colocate=*/true, /*central=*/false, 34);
        s.leaf_mix = hetero_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kPredictive;
        s.predict_only = true;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "cluster_websearch_sharded",
            "2-shard/2-replica root: each query touches half the leaves",
            /*colocate=*/true, /*central=*/false, 35);
        s.shards = 2;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        // Partial fan-out halves each leaf's load, and the root maximum
        // runs over two leaves instead of four — so the operator grants
        // every leaf extra tail headroom over the (already low-load)
        // derived target, which is what lets BE colocate at all on
        // leaves whose windowed tail barely moves with load.
        s.leaf_mix = {{"websearch", "default", 1.15}};
        s.be_jobs = {"brain", "streetview", "brain", "streetview"};
        all.push_back(s);
    }
    // The flash-crowd ablation pair runs the same machines/workloads
    // without the extra tail headroom of the diurnal pair: during a
    // burst the loosely-defended big leaves would exceed the root
    // budget, and the ablation's subject is the scheduler's reaction,
    // not the headroom policy.
    const std::vector<ClusterLeafTemplate> flash_mix = {
        {"websearch", "default", 1.0},
        {"ml_cluster", "default", 1.0},
        {"websearch", "big", 1.0},
        {"ml_cluster", "big", 1.0},
    };
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_greedy_flashcrowd",
            "scheduler ablation A: greedy rides out a flash crowd",
            /*colocate=*/true, /*central=*/false, 36);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.88;
        s.leaf_mix = flash_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(6);
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_rr_flashcrowd",
            "scheduler ablation B: slack-blind round-robin, same crowd",
            /*colocate=*/true, /*central=*/false, 36);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.88;
        s.leaf_mix = flash_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kRoundRobin;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(6);
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "cluster_hetero_pred_flashcrowd",
            "scheduler ablation C: predictive placement, same crowd",
            /*colocate=*/true, /*central=*/false, 36);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.88;
        s.leaf_mix = flash_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kPredictive;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(6);
        all.push_back(s);
    }

    // --- cluster scale: the epoch engine's reason to exist ---------------
    // Thousand-leaf pods under the hierarchical leaf → rack → pod-root
    // topology. At golden scale these shrink to the usual 3 leaves (one
    // rack) and regress like any other scenario; at full scale they are
    // the BENCH_cluster.json workloads, where per-epoch leaf fan-out
    // actually has thousands of independent queues to spread.
    {
        ScenarioSpec s = Cluster(
            "cluster_scale_rack_sharded",
            "1024 uniform leaves in 16 racks behind a two-level root",
            /*colocate=*/true, /*central=*/false, 51);
        s.leaves = 1024;
        s.rack_size = 64;
        s.load_high = 0.60;  // a pod this wide never runs near peak
        s.cluster_duration = sim::Minutes(3);
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "cluster_scale_hetero_greedy",
            "1040 mixed leaves, 16 racks, greedy scheduler placing 3 jobs",
            /*colocate=*/true, /*central=*/false, 52);
        s.leaves = 1040;
        s.rack_size = 65;
        s.load_high = 0.60;
        s.leaf_mix = hetero_mix;
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview", "brain"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.per_leaf_targets = true;
        s.cluster_duration = sim::Minutes(3);
        all.push_back(s);
    }

    // --- chaos family: degraded telemetry, stuck actuators, abrupt
    // --- interference, crashing leaves --------------------------------------
    // Every scenario here runs the same controller under a seeded
    // FaultPlan; the golden baseline pins the degraded outcome and the
    // invariant harness asserts the controller stays *safe* throughout
    // (the interesting regime per CPI2 / Bubble-Flux). SLO attainment
    // under faults is an outcome, not a promise — scenarios whose
    // degradation can plausibly cost the SLO mark the violation
    // expected.
    {
        ScenarioSpec s = Single(
            "chaos_cores_stuck",
            "cpuset+CAT actuators stuck for 40% of the run mid-load",
            "websearch", "brain", PK::kHeracles, TK::kConstant, 0.55,
            0.55, 41);
        s.faults.faults = {
            chaos::ActuatorDrop(chaos::Actuator::kCores, 0.35, 0.75),
            chaos::ActuatorDrop(chaos::Actuator::kWays, 0.35, 0.75),
        };
        s.expect_slo_violation = true;
        all.push_back(s);
    }
    {
        ScenarioSpec s = Single(
            "chaos_blind_tail",
            "latency telemetry frozen while a diurnal swing rises",
            "websearch", "brain", PK::kHeracles, TK::kDiurnal, 0.25, 0.75,
            42);
        s.faults.faults = {
            chaos::Freeze(chaos::Monitor::kTail, 0.40, 0.65),
            chaos::Freeze(chaos::Monitor::kFastTail, 0.40, 0.65),
        };
        s.expect_slo_violation = true;
        all.push_back(s);
    }
    {
        ScenarioSpec s = Single(
            "chaos_noisy_telemetry",
            "noisy tail/power/DRAM counters through most of the run",
            "ml_cluster", "streetview", PK::kHeracles, TK::kConstant, 0.6,
            0.6, 43);
        s.faults.faults = {
            chaos::Noise(chaos::Monitor::kTail, 0.15, 0.10, 0.90),
            chaos::Noise(chaos::Monitor::kPower, 0.08, 0.10, 0.90),
            chaos::Noise(chaos::Monitor::kDram, 0.15, 0.10, 0.90),
        };
        s.expect_slo_violation = true;
        all.push_back(s);
    }
    {
        ScenarioSpec s = Single(
            "chaos_be_burst",
            "BE job's demand abruptly triples mid-run (antagonist burst)",
            "websearch", "brain", PK::kHeracles, TK::kConstant, 0.5, 0.5,
            44);
        s.faults.faults = {chaos::Burst(3.0, 0.45, 0.70)};
        s.expect_slo_violation = true;
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "chaos_cluster_leaf_crash",
            "greedy-scheduled cluster rides out a leaf crash + recovery",
            /*colocate=*/true, /*central=*/false, 45);
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        // Late window: the diurnal trace starts near its peak, so the
        // scheduler only places jobs once slack opens mid-run — the
        // crash must land while its leaf actually hosts one, proving
        // the evict → requeue → re-place path in the golden record.
        s.faults.faults = {chaos::LeafCrash(1, 0.55, 0.85)};
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "chaos_cluster_blind_sched",
            "greedy scheduler fed frozen slack exports from two leaves",
            /*colocate=*/true, /*central=*/false, 46);
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(8);
        s.faults.faults = {
            chaos::SlackFreeze(0, 0.25, 0.75),
            chaos::SlackFreeze(2, 0.25, 0.75),
        };
        all.push_back(s);
    }
    // Predictive-vs-greedy chaos pairs on a *heterogeneous* flash mix:
    // within each pair the seed, fault plan, trace and leaves are
    // identical — only the policy differs. The heterogeneity matters:
    // on a uniform cluster every leaf fingerprints identically and the
    // predictive ranking degenerates to index order, so these pairs are
    // where the policies can genuinely diverge. The mix swaps the
    // ml_cluster/big slot for a second ml_cluster/default leaf — the
    // shape whose controller collapses hardest once the crowd ramps —
    // and the fault plan corrupts exactly the signal greedy ranks by:
    // at the flash valley the ml/default leaf posts the second-roomiest
    // slack on the board, so greedy parks a BE job there, and a
    // SlackFreeze then wedges that leaf's export at its happy valley
    // snapshot (roomy slack, BE enabled). When the crowd crushes the
    // leaf for real, the frozen export keeps reporting the job healthy,
    // so greedy never evicts it and the job starves invisibly for the
    // rest of the run. The fingerprint ranking never liked that machine
    // for either job, so the predictive twins put both jobs on the
    // websearch leaves and ride out the crowd with better EMU and no
    // extra root violations.
    const std::vector<ClusterLeafTemplate> chaos_mix = {
        {"websearch", "default", 1.0},
        {"ml_cluster", "default", 1.0},
        {"websearch", "big", 1.0},
        {"ml_cluster", "default", 1.0},
    };
    {
        ScenarioSpec s = Cluster(
            "chaos_hetero_crash_greedy",
            "flash mix: hosting leaf crashes while a frozen decoy lies",
            /*colocate=*/true, /*central=*/false, 47);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.80;
        s.leaf_mix = chaos_mix;
        // A snappier post-violation cooldown than the paper default
        // (which outlasts the entire reduced-scale run): the pairs
        // compare *placement* quality through the crowd's aftermath,
        // and a leaf-poisoning cooldown longer than the run would
        // reduce that to a race for whichever leaf was left idle.
        s.heracles.cooldown = sim::Seconds(60);
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(12);
        // The crash forces an emergency re-placement mid-crowd on top
        // of the frozen-host pin, exercising the evict → requeue →
        // re-place path under both policies.
        s.faults.faults = {
            chaos::SlackFreeze(1, 0.15, 1.0),
            chaos::LeafCrash(0, 0.35, 0.70),
        };
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "chaos_hetero_crash_pred",
            "same crash, predictive placement shuns the frozen decoy",
            /*colocate=*/true, /*central=*/false, 47);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.80;
        s.leaf_mix = chaos_mix;
        // A snappier post-violation cooldown than the paper default
        // (which outlasts the entire reduced-scale run): the pairs
        // compare *placement* quality through the crowd's aftermath,
        // and a leaf-poisoning cooldown longer than the run would
        // reduce that to a race for whichever leaf was left idle.
        s.heracles.cooldown = sim::Seconds(60);
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kPredictive;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(12);
        s.faults.faults = {
            chaos::SlackFreeze(1, 0.15, 1.0),
            chaos::LeafCrash(0, 0.35, 0.70),
        };
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "chaos_hetero_blind_greedy",
            "greedy parks a job on a leaf whose export then freezes happy",
            /*colocate=*/true, /*central=*/false, 48);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.80;
        s.leaf_mix = chaos_mix;
        // A snappier post-violation cooldown than the paper default
        // (which outlasts the entire reduced-scale run): the pairs
        // compare *placement* quality through the crowd's aftermath,
        // and a leaf-poisoning cooldown longer than the run would
        // reduce that to a race for whichever leaf was left idle.
        s.heracles.cooldown = sim::Seconds(60);
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kGreedySlack;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(12);
        s.faults.faults = {chaos::SlackFreeze(1, 0.15, 1.0)};
        all.push_back(s);
    }
    {
        ScenarioSpec s = Cluster(
            "chaos_hetero_blind_pred",
            "same frozen export, predictive ranking never trusted it",
            /*colocate=*/true, /*central=*/false, 48);
        s.trace = TraceKind::kFlashCrowd;
        s.load = 0.30;
        s.load_high = 0.80;
        s.leaf_mix = chaos_mix;
        // A snappier post-violation cooldown than the paper default
        // (which outlasts the entire reduced-scale run): the pairs
        // compare *placement* quality through the crowd's aftermath,
        // and a leaf-poisoning cooldown longer than the run would
        // reduce that to a race for whichever leaf was left idle.
        s.heracles.cooldown = sim::Seconds(60);
        s.be = "brain+streetview";
        s.be_jobs = {"brain", "streetview"};
        s.scheduler = cluster::SchedulerPolicy::kPredictive;
        s.per_leaf_targets = true;
        s.leaves = 4;
        s.fixed_leaves = true;
        s.cluster_duration = sim::Minutes(12);
        s.faults.faults = {chaos::SlackFreeze(1, 0.15, 1.0)};
        all.push_back(s);
    }

    return all;
}

}  // namespace

const std::vector<ScenarioSpec>&
AllScenarios()
{
    static const std::vector<ScenarioSpec>* catalog =
        new std::vector<ScenarioSpec>(BuildCatalog());
    return *catalog;
}

const ScenarioSpec*
FindScenario(const std::string& name)
{
    for (const ScenarioSpec& s : AllScenarios()) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

const ScenarioSpec&
MustFindScenario(const std::string& name)
{
    const ScenarioSpec* s = FindScenario(name);
    if (s == nullptr) {
        std::string names;
        for (const ScenarioSpec& spec : AllScenarios()) {
            names += "\n  ";
            names += spec.name;
        }
        HERACLES_FATAL("unknown scenario: " << name
                                            << "; available:" << names);
    }
    return *s;
}

}  // namespace heracles::scenarios
