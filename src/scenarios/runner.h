/**
 * @file
 * Scenario execution: one ScenarioSpec in, one canonical ScenarioMetrics
 * record out, bit-identical for a fixed (spec, options) regardless of
 * how many worker threads fan the catalog out.
 *
 * Every scenario run is a self-contained single-threaded simulation
 * (its own event queue, machine and RNG streams), so a catalog sweep is
 * embarrassingly parallel over runner::Pool — the same guarantee the
 * sweep benches rely on, extended to whole end-to-end scenarios.
 */
#ifndef HERACLES_SCENARIOS_RUNNER_H
#define HERACLES_SCENARIOS_RUNNER_H

#include <optional>

#include "cluster/cluster.h"
#include "exp/experiment.h"
#include "scenarios/scenario.h"

namespace heracles::scenarios {

/** Knobs shared by every scenario run. */
struct RunOptions {
    /**
     * Multiplies the spec's phase durations. 1.0 reproduces the
     * full-scale scenario; the golden harness uses Golden() so the whole
     * catalog regresses in minutes. Floors keep scaled phases long
     * enough to contain at least one controller poll and SLO window.
     */
    double time_scale = 1.0;
    /** Overrides the spec's seed when set (the --seed flag; any value
     *  including 0 is a valid seed). */
    std::optional<uint64_t> seed;
    /** Overrides the spec's cluster leaf count when positive. */
    int cluster_leaves = 0;
    /**
     * Worker threads for the cluster epoch engine (and assembly-time
     * profiling) of each cluster scenario — the --cluster-jobs flag.
     * Metrics are bit-identical across values; 1 keeps a catalog sweep's
     * per-scenario work serial so RunScenarios' own fan-out composes
     * without oversubscription.
     */
    int cluster_jobs = 1;
    /**
     * Leaves per epoch-engine task for cluster scenarios (the
     * --cluster-leaf-batch flag; cluster::ClusterConfig::leaf_batch).
     * Metrics are bit-identical across values. 0 = auto.
     */
    int cluster_leaf_batch = 0;

    /** Reduced-scale preset used by the golden regression harness. */
    static RunOptions Golden();
};

/**
 * Runs one scenario to completion and reports its metrics record.
 * @param spec a cataloged (or hand-built) scenario blueprint.
 * @param opts time scale / seed / leaf-count overrides.
 * @return the canonical metrics record; bit-identical for equal
 *         (spec, opts) on every platform.
 */
ScenarioMetrics RunScenario(const ScenarioSpec& spec,
                            const RunOptions& opts = {});

/**
 * Runs many scenarios, fanning them across @p jobs worker threads.
 * Results are merged in catalog order and bit-identical to jobs == 1.
 */
std::vector<ScenarioMetrics> RunScenarios(
    const std::vector<ScenarioSpec>& specs, const RunOptions& opts = {},
    int jobs = 1);

/**
 * Composition helpers: the assembly a spec describes, as the config of
 * the corresponding experiment layer. Benches and examples use these to
 * build on a cataloged scenario (e.g. sweeping extra load points or
 * printing a full time series) instead of duplicating assembly.
 */
exp::ExperimentConfig ExperimentConfigFor(const ScenarioSpec& spec,
                                          const RunOptions& opts = {});
cluster::ClusterConfig ClusterConfigFor(const ScenarioSpec& spec,
                                        const RunOptions& opts = {});

}  // namespace heracles::scenarios

#endif  // HERACLES_SCENARIOS_RUNNER_H
