#include "scenarios/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/log.h"

namespace heracles::scenarios {

hw::MachineConfig
MachineVariant(const std::string& name)
{
    hw::MachineConfig m;  // "default": the paper's evaluation server.
    if (name == "default") return m;
    if (name == "small") {
        // Half-width edge box: fewer, slightly faster-clocked cores,
        // less cache and memory bandwidth behind them.
        m.cores_per_socket = 12;
        m.llc_mb_per_socket = 30.0;
        m.dram_gbps_per_socket = 40.0;
        m.tdp_w = 110.0;
        return m;
    }
    if (name == "big") {
        // High-memory wide server: more cores, cache and bandwidth.
        m.cores_per_socket = 24;
        m.llc_mb_per_socket = 60.0;
        m.dram_gbps_per_socket = 66.0;
        m.tdp_w = 180.0;
        return m;
    }
    HERACLES_FATAL("unknown machine variant: " << name
                                               << " (default|small|big)");
}

bool
ViolationExpected(const ScenarioSpec& spec, double time_scale)
{
    if (spec.expect_slo_violation) return true;
    return spec.expect_violation_at_scale > 0.0 &&
           time_scale >= spec.expect_violation_at_scale;
}

std::string
TopologyName(Topology t)
{
    switch (t) {
      case Topology::kSingleServer: return "single-server";
      case Topology::kCluster: return "cluster";
    }
    return "?";
}

std::string
TraceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::kConstant: return "constant";
      case TraceKind::kStep: return "step";
      case TraceKind::kDiurnal: return "diurnal";
      case TraceKind::kFlashCrowd: return "flash-crowd";
    }
    return "?";
}

std::vector<std::pair<std::string, double>>
ScenarioMetrics::Kv() const
{
    return {
        {"slo_attained", slo_attained},
        {"tail_frac_slo", tail_frac_slo},
        {"worst_tail_ms", worst_tail_ms},
        {"p95_ms", p95_ms},
        {"p99_ms", p99_ms},
        {"lc_throughput", lc_throughput},
        {"be_throughput", be_throughput},
        {"emu", emu},
        {"min_emu", min_emu},
        {"dram_frac", dram_frac},
        {"cpu_util", cpu_util},
        {"power_frac_tdp", power_frac_tdp},
        {"polls", polls},
        {"be_enables", be_enables},
        {"be_disables", be_disables},
        {"core_shrinks", core_shrinks},
        {"act_set_cores", act_set_cores},
        {"act_set_ways", act_set_ways},
        {"act_set_freq_cap", act_set_freq_cap},
        {"act_set_net_ceil", act_set_net_ceil},
        {"be_cores", be_cores},
        {"be_ways", be_ways},
        {"be_placements", be_placements},
        {"be_migrations", be_migrations},
        {"be_would_placements", be_would_placements},
        {"be_would_migrations", be_would_migrations},
        {"invariant_violations", invariant_violations},
        {"faulted_ops", faulted_ops},
        {"root_target_ms", root_target_ms},
        {"leaf_target_ms", leaf_target_ms},
    };
}

bool
ScenarioMetrics::ExactlyEquals(const ScenarioMetrics& other) const
{
    return scenario == other.scenario && Kv() == other.Kv();
}

namespace {

/** Shortest decimal form that parses back to exactly the same double. */
std::string
FormatExact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer the compact form when it round-trips (keeps files legible).
    char compact[64];
    std::snprintf(compact, sizeof compact, "%.9g", v);
    if (std::strtod(compact, nullptr) == v) return compact;
    return buf;
}

/** Writes @p value into the field matching @p key; false if unknown. */
bool
AssignMetric(ScenarioMetrics* m, const std::string& key, double value)
{
    struct Field {
        const char* key;
        double ScenarioMetrics::* member;
    };
    static const Field kFields[] = {
        {"slo_attained", &ScenarioMetrics::slo_attained},
        {"tail_frac_slo", &ScenarioMetrics::tail_frac_slo},
        {"worst_tail_ms", &ScenarioMetrics::worst_tail_ms},
        {"p95_ms", &ScenarioMetrics::p95_ms},
        {"p99_ms", &ScenarioMetrics::p99_ms},
        {"lc_throughput", &ScenarioMetrics::lc_throughput},
        {"be_throughput", &ScenarioMetrics::be_throughput},
        {"emu", &ScenarioMetrics::emu},
        {"min_emu", &ScenarioMetrics::min_emu},
        {"dram_frac", &ScenarioMetrics::dram_frac},
        {"cpu_util", &ScenarioMetrics::cpu_util},
        {"power_frac_tdp", &ScenarioMetrics::power_frac_tdp},
        {"polls", &ScenarioMetrics::polls},
        {"be_enables", &ScenarioMetrics::be_enables},
        {"be_disables", &ScenarioMetrics::be_disables},
        {"core_shrinks", &ScenarioMetrics::core_shrinks},
        {"act_set_cores", &ScenarioMetrics::act_set_cores},
        {"act_set_ways", &ScenarioMetrics::act_set_ways},
        {"act_set_freq_cap", &ScenarioMetrics::act_set_freq_cap},
        {"act_set_net_ceil", &ScenarioMetrics::act_set_net_ceil},
        {"be_cores", &ScenarioMetrics::be_cores},
        {"be_ways", &ScenarioMetrics::be_ways},
        {"be_placements", &ScenarioMetrics::be_placements},
        {"be_migrations", &ScenarioMetrics::be_migrations},
        {"be_would_placements", &ScenarioMetrics::be_would_placements},
        {"be_would_migrations", &ScenarioMetrics::be_would_migrations},
        {"invariant_violations", &ScenarioMetrics::invariant_violations},
        {"faulted_ops", &ScenarioMetrics::faulted_ops},
        {"root_target_ms", &ScenarioMetrics::root_target_ms},
        {"leaf_target_ms", &ScenarioMetrics::leaf_target_ms},
    };
    for (const Field& f : kFields) {
        if (key == f.key) {
            m->*(f.member) = value;
            return true;
        }
    }
    return false;
}

/** Extracts the string value of `"key": "..."`; empty when missing. */
std::string
FindStringValue(const std::string& json, const std::string& key)
{
    const std::string needle = "\"" + key + "\"";
    size_t pos = json.find(needle);
    if (pos == std::string::npos) return "";
    pos = json.find(':', pos + needle.size());
    if (pos == std::string::npos) return "";
    pos = json.find('"', pos);
    if (pos == std::string::npos) return "";
    const size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) return "";
    return json.substr(pos + 1, end - pos - 1);
}

/** Extracts the numeric value of `"key": <number>`; false when absent. */
bool
FindNumberValue(const std::string& json, const std::string& key,
                double* out)
{
    const std::string needle = "\"" + key + "\"";
    size_t pos = json.find(needle);
    if (pos == std::string::npos) return false;
    pos = json.find(':', pos + needle.size());
    if (pos == std::string::npos) return false;
    const char* start = json.c_str() + pos + 1;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    *out = v;
    return true;
}

}  // namespace

std::string
MetricsToJson(const ScenarioMetrics& m)
{
    // The scheduler counters postdate the first 17 frozen baselines and
    // are structurally zero outside dynamic-scheduler cluster runs, so
    // they are emitted only when active: the frozen files stay
    // byte-identical under --update-golden, and a zero parses back
    // exactly (MetricsFromJson treats the keys as optional). The chaos
    // keys (postdating all 22 pre-chaos baselines) follow the same
    // rule.
    auto kv = m.Kv();
    if (m.be_placements == 0.0 && m.be_migrations == 0.0) {
        kv.erase(std::remove_if(kv.begin(), kv.end(),
                                [](const auto& e) {
                                    return e.first == "be_placements" ||
                                           e.first == "be_migrations";
                                }),
                 kv.end());
    }
    if (m.be_would_placements == 0.0 && m.be_would_migrations == 0.0) {
        kv.erase(std::remove_if(
                     kv.begin(), kv.end(),
                     [](const auto& e) {
                         return e.first == "be_would_placements" ||
                                e.first == "be_would_migrations";
                     }),
                 kv.end());
    }
    if (m.invariant_violations == 0.0 && m.faulted_ops == 0.0) {
        kv.erase(std::remove_if(
                     kv.begin(), kv.end(),
                     [](const auto& e) {
                         return e.first == "invariant_violations" ||
                                e.first == "faulted_ops";
                     }),
                 kv.end());
    }
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": 1,\n";
    os << "  \"scenario\": \"" << m.scenario << "\",\n";
    os << "  \"metrics\": {\n";
    for (size_t i = 0; i < kv.size(); ++i) {
        os << "    \"" << kv[i].first << "\": " << FormatExact(kv[i].second)
           << (i + 1 < kv.size() ? "," : "") << "\n";
    }
    os << "  }\n";
    os << "}\n";
    return os.str();
}

bool
MetricsFromJson(const std::string& json, ScenarioMetrics* out)
{
    ScenarioMetrics m;
    m.scenario = FindStringValue(json, "scenario");
    if (m.scenario.empty()) return false;
    // Metric keys are unique across the whole document, so a flat scan
    // is unambiguous for the subset MetricsToJson emits. Every schema-1
    // key must be present: a baseline predating one of them is stale
    // and must be regenerated, not silently zero-filled. The scheduler
    // counters are the exception: they were introduced after the first
    // 17 baselines were frozen, and those scenarios' counters are
    // structurally zero (single-server or static split), so a missing
    // key reads as the exact value the run reproduces.
    for (const auto& [key, unused] : m.Kv()) {
        (void)unused;
        const bool optional =
            key == "be_placements" || key == "be_migrations" ||
            key == "be_would_placements" ||
            key == "be_would_migrations" ||
            key == "invariant_violations" || key == "faulted_ops";
        double v = 0.0;
        if (!FindNumberValue(json, key, &v)) {
            if (optional) continue;
            return false;
        }
        if (!AssignMetric(&m, key, v)) return false;
    }
    *out = m;
    return true;
}

Tolerance
ToleranceFor(const std::string& key)
{
    // slo_attained is a verdict, not a measurement: exact. So is the
    // invariant checker's: any violation anywhere is a regression.
    if (key == "slo_attained" || key == "invariant_violations") {
        return {0.0, 0.0};
    }
    // Degraded-ops counts track controller poll counts; same looseness
    // as the other activity counters.
    if (key == "faulted_ops") return {0.15, 5.0};
    // Controller activity counts: deterministic on one machine, but a
    // couple of control decisions may flip across compilers/libms.
    if (key == "polls" || key == "be_enables" || key == "be_disables" ||
        key == "core_shrinks" || key == "be_placements" ||
        key == "be_migrations" || key == "be_would_placements" ||
        key == "be_would_migrations" || key.rfind("act_", 0) == 0) {
        return {0.15, 3.0};
    }
    // Final allocations move in whole cores/ways.
    if (key == "be_cores" || key == "be_ways") return {0.0, 2.0};
    // Continuous measurements (latency, throughput, telemetry).
    return {0.10, 0.02};
}

bool
WithinTolerance(const ScenarioMetrics& got, const ScenarioMetrics& golden,
                std::vector<std::string>* mismatches)
{
    bool ok = true;
    const auto gkv = got.Kv();
    const auto bkv = golden.Kv();
    for (size_t i = 0; i < gkv.size(); ++i) {
        const auto& [key, have] = gkv[i];
        const double want = bkv[i].second;
        const Tolerance tol = ToleranceFor(key);
        const double allowed =
            std::max(tol.abs, tol.rel * std::fabs(want));
        if (std::fabs(have - want) <= allowed) continue;
        ok = false;
        if (mismatches != nullptr) {
            char line[160];
            std::snprintf(line, sizeof line,
                          "%s.%s: got %.6g, golden %.6g (allowed +/-%.4g)",
                          got.scenario.c_str(), key.c_str(), have, want,
                          allowed);
            mismatches->push_back(line);
        }
    }
    return ok;
}

}  // namespace heracles::scenarios
