#include "scenarios/runner.h"

#include <algorithm>
#include <memory>

#include "runner/pool.h"
#include "sim/log.h"
#include "sim/trace.h"
#include "workloads/antagonists.h"

namespace heracles::scenarios {
namespace {

workloads::LcParams
LcByName(const std::string& name)
{
    for (const auto& p : workloads::AllLcWorkloads()) {
        if (p.name == name) return p;
    }
    HERACLES_FATAL("unknown LC workload in scenario: " << name);
}

bool
HasBe(const ScenarioSpec& spec)
{
    return !spec.be.empty() && spec.be != "none" &&
           spec.topology == Topology::kSingleServer;
}

sim::Duration
Scale(sim::Duration d, double factor, sim::Duration floor)
{
    return std::max(
        static_cast<sim::Duration>(static_cast<double>(d) * factor),
        floor);
}

/** The load trace a single-server scenario drives its LC app with. */
std::unique_ptr<sim::LoadTrace>
MakeTrace(const ScenarioSpec& spec, sim::Duration warmup,
          sim::Duration measure, uint64_t seed)
{
    const sim::Duration total = warmup + measure;
    switch (spec.trace) {
      case TraceKind::kConstant:
        return std::make_unique<sim::ConstantTrace>(spec.load);
      case TraceKind::kStep:
        // Warm up and establish colocation at the base load, then step
        // to the peak halfway through the measurement.
        return std::make_unique<sim::StepTrace>(
            std::vector<sim::StepTrace::Step>{
                {0, spec.load},
                {warmup + measure / 2, spec.load_high}});
      case TraceKind::kDiurnal:
        return std::make_unique<sim::DiurnalTrace>(
            total, spec.load, spec.load_high, 0.02, seed ^ 0xD1);
      case TraceKind::kFlashCrowd:
        // The crowd arrives a quarter into the measurement so both the
        // eviction and (at full scale) the recovery are observed.
        return std::make_unique<sim::FlashCrowdTrace>(
            total, spec.load, spec.load_high,
            /*onset=*/warmup + measure / 4, /*ramp=*/sim::Seconds(5),
            /*hold=*/sim::Seconds(25), /*decay=*/sim::Seconds(45),
            /*jitter=*/0.02, seed ^ 0xF1);
    }
    HERACLES_FATAL("unhandled trace kind");
}

ScenarioMetrics
RunSingleServer(const ScenarioSpec& spec, const RunOptions& opts)
{
    const uint64_t seed = opts.seed.value_or(spec.seed);
    const sim::Duration warmup =
        Scale(spec.warmup, opts.time_scale, sim::Seconds(20));
    const sim::Duration measure =
        Scale(spec.measure, opts.time_scale, sim::Seconds(30));

    exp::ServerSpec srv;
    srv.machine = spec.machine;
    srv.lc = LcByName(spec.lc);
    srv.SeedFrom(seed, /*salt=*/97);
    if (HasBe(spec)) {
        srv.be = workloads::BeProfileByName(spec.machine, spec.be);
    }
    srv.policy = spec.policy;
    srv.heracles = spec.heracles;
    srv.faults =
        chaos::ResolvedFaultPlan::For(spec.faults, warmup + measure);

    // Alone-rate normalization mirrors exp::Experiment: derived from the
    // spec's machine so EMU is comparable across seeds of one scenario.
    double be_alone = 1.0;
    if (srv.be.has_value() &&
        spec.policy != exp::PolicyKind::kNoColocation) {
        be_alone = workloads::MeasureAloneRate(spec.machine, *srv.be);
    }

    sim::EventQueue queue;
    exp::ServerSim server(srv, queue);
    workloads::LcApp& lc = server.lc();
    workloads::BeTask* be = server.be();

    const auto trace = MakeTrace(spec, warmup, measure, seed);
    lc.SetTrace(trace.get());
    lc.Start();
    server.machine().ResolveNow();

    const uint64_t completed = server.RunMeasured(warmup, measure);

    ScenarioMetrics m;
    m.scenario = spec.name;

    const sim::Duration worst = lc.WorstReportTail();
    const double slo = static_cast<double>(srv.lc.slo_latency);
    m.worst_tail_ms = sim::ToMillis(worst);
    m.tail_frac_slo = static_cast<double>(worst) / slo;
    m.slo_attained = m.tail_frac_slo <= 1.0 ? 1.0 : 0.0;
    m.p95_ms = sim::ToMillis(lc.OverallPercentile(0.95));
    m.p99_ms = sim::ToMillis(lc.OverallPercentile(0.99));

    const double measure_s = sim::ToSeconds(measure);
    m.lc_throughput =
        static_cast<double>(completed) / measure_s / srv.lc.peak_qps;
    m.be_throughput = be != nullptr ? be->AvgRate() / be_alone : 0.0;
    m.emu = m.lc_throughput + m.be_throughput;

    const hw::MachineTelemetry t = server.machine().AveragedTelemetry();
    m.dram_frac = t.dram_frac;
    m.cpu_util = t.cpu_utilization;
    m.power_frac_tdp = t.power_frac_tdp;

    if (const ctl::HeraclesController* c = server.controller()) {
        const ctl::ControllerStats& s = c->stats();
        m.polls = static_cast<double>(s.polls);
        m.be_enables = static_cast<double>(s.be_enables);
        m.be_disables =
            static_cast<double>(s.be_disables_slack + s.be_disables_load);
        m.core_shrinks = static_cast<double>(s.core_shrinks);
    }
    const platform::ActuationCounts& a = server.platform().actuations();
    m.act_set_cores = static_cast<double>(a.set_cores);
    m.act_set_ways = static_cast<double>(a.set_ways);
    m.act_set_freq_cap = static_cast<double>(a.set_freq_cap);
    m.act_set_net_ceil = static_cast<double>(a.set_net_ceil);

    if (const chaos::InvariantChecker* c = server.checker()) {
        m.invariant_violations = static_cast<double>(c->count());
    }
    if (const chaos::FaultyPlatform* f = server.faulty()) {
        m.faulted_ops = static_cast<double>(f->faulted_ops());
    }

    m.be_cores = server.platform().BeCores();
    m.be_ways = server.platform().BeWays();

    server.StopController();
    return m;
}

ScenarioMetrics
RunCluster(const ScenarioSpec& spec, const RunOptions& opts)
{
    cluster::ClusterExperiment experiment(ClusterConfigFor(spec, opts));
    const cluster::ClusterResult r = experiment.Run();

    ScenarioMetrics m;
    m.scenario = spec.name;
    m.slo_attained = r.slo_violated ? 0.0 : 1.0;
    m.tail_frac_slo = r.worst_latency_frac;
    m.worst_tail_ms =
        r.worst_latency_frac * sim::ToMillis(r.target);
    m.emu = r.avg_emu;
    m.min_emu = r.min_emu;

    m.polls = static_cast<double>(r.polls);
    m.be_enables = static_cast<double>(r.be_enables);
    m.be_disables = static_cast<double>(r.be_disables);
    m.core_shrinks = static_cast<double>(r.core_shrinks);
    m.act_set_cores = static_cast<double>(r.actuations.set_cores);
    m.act_set_ways = static_cast<double>(r.actuations.set_ways);
    m.act_set_freq_cap = static_cast<double>(r.actuations.set_freq_cap);
    m.act_set_net_ceil = static_cast<double>(r.actuations.set_net_ceil);
    m.be_placements = static_cast<double>(r.be_placements);
    m.be_migrations = static_cast<double>(r.be_migrations);
    m.be_would_placements = static_cast<double>(r.be_would_placements);
    m.be_would_migrations = static_cast<double>(r.be_would_migrations);
    m.invariant_violations =
        static_cast<double>(r.invariant_violations);
    m.faulted_ops = static_cast<double>(r.faulted_ops);

    m.root_target_ms = sim::ToMillis(r.target);
    m.leaf_target_ms = sim::ToMillis(r.leaf_target);
    return m;
}

}  // namespace

RunOptions
RunOptions::Golden()
{
    RunOptions o;
    o.time_scale = 1.0 / 3.0;
    o.cluster_leaves = 3;
    return o;
}

ScenarioMetrics
RunScenario(const ScenarioSpec& spec, const RunOptions& opts)
{
    return spec.topology == Topology::kCluster
               ? RunCluster(spec, opts)
               : RunSingleServer(spec, opts);
}

std::vector<ScenarioMetrics>
RunScenarios(const std::vector<ScenarioSpec>& specs, const RunOptions& opts,
             int jobs)
{
    // Each scenario is a fully self-contained simulation whose seeds
    // derive only from (spec, opts), so fanning the catalog across
    // threads cannot change any record.
    return runner::ParallelMap(jobs, specs.size(), [&](size_t i) {
        return RunScenario(specs[i], opts);
    });
}

exp::ExperimentConfig
ExperimentConfigFor(const ScenarioSpec& spec, const RunOptions& opts)
{
    HERACLES_CHECK_MSG(spec.topology == Topology::kSingleServer,
                       "not a single-server scenario: " << spec.name);
    // ExperimentConfig has no trace: composing a shaped-load scenario
    // here would silently run constant load instead of the cataloged
    // shape. Run those via RunScenario (or add trace support) instead.
    HERACLES_CHECK_MSG(spec.trace == TraceKind::kConstant,
                       "scenario " << spec.name << " uses a "
                                   << TraceKindName(spec.trace)
                                   << " trace, which Experiment cannot "
                                      "reproduce");
    exp::ExperimentConfig cfg;
    cfg.machine = spec.machine;
    cfg.lc = LcByName(spec.lc);
    if (HasBe(spec)) {
        cfg.be = workloads::BeProfileByName(spec.machine, spec.be);
    }
    cfg.policy = spec.policy;
    cfg.heracles = spec.heracles;
    cfg.warmup = Scale(spec.warmup, opts.time_scale, sim::Seconds(20));
    cfg.measure = Scale(spec.measure, opts.time_scale, sim::Seconds(30));
    cfg.seed = opts.seed.value_or(spec.seed);
    return cfg;
}

cluster::ClusterConfig
ClusterConfigFor(const ScenarioSpec& spec, const RunOptions& opts)
{
    HERACLES_CHECK_MSG(spec.topology == Topology::kCluster,
                       "not a cluster scenario: " << spec.name);
    // The cluster experiment drives a load_low..load_high diurnal swing
    // or a flash-crowd burst; any other declared shape would silently
    // not match the scenario's self-description.
    HERACLES_CHECK_MSG(spec.trace == TraceKind::kDiurnal ||
                           spec.trace == TraceKind::kFlashCrowd,
                       "cluster scenario "
                           << spec.name
                           << " must use a diurnal or flash-crowd trace");
    cluster::ClusterConfig cfg;
    cfg.leaves = opts.cluster_leaves > 0 && !spec.fixed_leaves
                     ? opts.cluster_leaves
                     : spec.leaves;
    cfg.machine = spec.machine;
    cfg.lc = LcByName(spec.lc);
    cfg.heracles = spec.heracles;
    cfg.colocate = spec.colocate;
    cfg.flash_crowd = spec.trace == TraceKind::kFlashCrowd;
    cfg.load_low = spec.load;
    cfg.load_high = spec.load_high;

    // Heterogeneous composition: cycle the leaf mix over the leaf
    // count, resolving workload and machine-variant names. An empty
    // mix leaves cfg.leaf_specs empty and the cluster synthesizes the
    // paper's uniform brain/streetview leaves.
    for (int i = 0; i < cfg.leaves && !spec.leaf_mix.empty(); ++i) {
        const ClusterLeafTemplate& t =
            spec.leaf_mix[i % spec.leaf_mix.size()];
        cluster::LeafSpec leaf;
        leaf.machine = MachineVariant(t.machine);
        leaf.lc = LcByName(t.lc);
        leaf.tail_scale = t.tail_scale;
        cfg.leaf_specs.push_back(std::move(leaf));
    }
    if (spec.rack_size > 0) {
        cfg.topology = cluster::TopologyKind::kHierarchical;
        cfg.rack_size = spec.rack_size;
    } else if (spec.shards > 0) {
        cfg.topology = cluster::TopologyKind::kSharded;
        cfg.shards = spec.shards;
    }
    cfg.scheduler.policy = spec.scheduler;
    cfg.scheduler.predict_only = spec.predict_only;
    cfg.per_leaf_targets = spec.per_leaf_targets;
    cfg.faults = spec.faults;
    if (!spec.be_jobs.empty()) {
        // Cluster-wide jobs are sized against the scenario's root
        // machine in *both* scheduler arms: a pinned job and a queued
        // job with the same name must be the same job, or a scheduler
        // ablation would silently compare different workloads
        // (machine-dependent profiles like stream-llc size their
        // footprint from the machine they are resolved against).
        std::vector<workloads::BeProfile> jobs;
        for (const std::string& name : spec.be_jobs) {
            jobs.push_back(workloads::BeProfileByName(spec.machine, name));
        }
        if (spec.scheduler == cluster::SchedulerPolicy::kStaticSplit) {
            // Static split ≡ today's behavior: job j pinned to leaf j.
            HERACLES_CHECK_MSG(
                !cfg.leaf_specs.empty(),
                "scenario " << spec.name
                            << ": static-split be_jobs need a leaf_mix");
            HERACLES_CHECK_MSG(
                jobs.size() <= cfg.leaf_specs.size(),
                "scenario " << spec.name << ": more BE jobs than leaves");
            for (size_t j = 0; j < jobs.size(); ++j) {
                cfg.leaf_specs[j].be = std::move(jobs[j]);
            }
        } else {
            cfg.be_jobs = std::move(jobs);
        }
    }
    cfg.duration =
        Scale(spec.cluster_duration, opts.time_scale, sim::Seconds(150));
    cfg.target_run =
        Scale(cfg.target_run, opts.time_scale, sim::Seconds(75));
    cfg.run_warmup =
        Scale(cfg.run_warmup, opts.time_scale, sim::Seconds(40));
    cfg.central_controller = spec.central_controller;
    cfg.seed = opts.seed.value_or(spec.seed);
    // The epoch engine makes cluster runs thread-count-invariant, so
    // this only sets how wide one scenario fans its leaves (and its
    // assembly profiling). The default of 1 keeps nested catalog
    // sweeps from stacking pools.
    cfg.jobs = std::max(opts.cluster_jobs, 1);
    cfg.leaf_batch = std::max(opts.cluster_leaf_batch, 0);
    return cfg;
}

}  // namespace heracles::scenarios
