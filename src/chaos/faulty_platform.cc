#include "chaos/faulty_platform.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace heracles::chaos {

namespace {
constexpr double kUncaptured = std::numeric_limits<double>::quiet_NaN();
}

FaultyPlatform::FaultyPlatform(platform::Platform& inner,
                               ResolvedFaultPlan plan)
    : inner_(inner),
      plan_(std::move(plan)),
      noise_(plan_.seed ^ 0xFA517ull),
      frozen_(plan_.faults.size(), kUncaptured)
{
}

int
FaultyPlatform::ActiveFault(FaultKind kind, int channel)
{
    const sim::SimTime now = inner_.queue().Now();
    for (size_t i = 0; i < plan_.faults.size(); ++i) {
        const TimedFault& f = plan_.faults[i];
        if (f.kind != kind || !f.ActiveAt(now)) continue;
        const int ch = kind == FaultKind::kActuatorDrop
                           ? static_cast<int>(f.actuator)
                           : static_cast<int>(f.monitor);
        if (ch == channel) return static_cast<int>(i);
    }
    return -1;
}

bool
FaultyPlatform::Dropped(Actuator a)
{
    if (ActiveFault(FaultKind::kActuatorDrop, static_cast<int>(a)) < 0) {
        return false;
    }
    ++faulted_ops_;
    return true;
}

template <typename ReadFn>
double
FaultyPlatform::Degrade(Monitor mon, ReadFn read)
{
    const int channel = static_cast<int>(mon);
    if (const int i = ActiveFault(FaultKind::kFreeze, channel); i >= 0) {
        ++faulted_ops_;
        // Capture on the first in-window read; the plant is not read
        // again while frozen, so a wedged noisy counter (DRAM, power)
        // also stops drawing measurement noise — exactly what a stuck
        // IMC/RAPL read path does.
        if (std::isnan(frozen_[static_cast<size_t>(i)])) {
            frozen_[static_cast<size_t>(i)] = read();
        }
        return frozen_[static_cast<size_t>(i)];
    }
    const double raw = read();
    if (const int i = ActiveFault(FaultKind::kNoise, channel); i >= 0) {
        ++faulted_ops_;
        const double sigma =
            plan_.faults[static_cast<size_t>(i)].magnitude;
        return std::max(0.0, raw * (1.0 + noise_.Normal(0.0, sigma)));
    }
    return raw;
}

sim::Duration
FaultyPlatform::LcTailLatency()
{
    if (plan_.empty()) return inner_.LcTailLatency();
    return static_cast<sim::Duration>(Degrade(Monitor::kTail, [this] {
        return static_cast<double>(inner_.LcTailLatency());
    }));
}

sim::Duration
FaultyPlatform::LcFastTailLatency()
{
    if (plan_.empty()) return inner_.LcFastTailLatency();
    return static_cast<sim::Duration>(
        Degrade(Monitor::kFastTail, [this] {
            return static_cast<double>(inner_.LcFastTailLatency());
        }));
}

double
FaultyPlatform::LcLoad()
{
    if (plan_.empty()) return inner_.LcLoad();
    return Degrade(Monitor::kLoad, [this] { return inner_.LcLoad(); });
}

double
FaultyPlatform::MeasuredDramGbps()
{
    if (plan_.empty()) return inner_.MeasuredDramGbps();
    return Degrade(Monitor::kDram,
                   [this] { return inner_.MeasuredDramGbps(); });
}

double
FaultyPlatform::SocketPowerW(int socket)
{
    if (plan_.empty()) return inner_.SocketPowerW(socket);
    return Degrade(Monitor::kPower, [this, socket] {
        return inner_.SocketPowerW(socket);
    });
}

void
FaultyPlatform::SetBeCores(int cores)
{
    commanded_cores_ = cores;
    if (Dropped(Actuator::kCores)) return;
    inner_.SetBeCores(cores);
}

void
FaultyPlatform::SetBeWays(int ways)
{
    commanded_ways_ = ways;
    if (Dropped(Actuator::kWays)) return;
    inner_.SetBeWays(ways);
}

void
FaultyPlatform::SetBeFreqCapGhz(double ghz)
{
    commanded_cap_ = ghz;
    if (Dropped(Actuator::kFreqCap)) return;
    inner_.SetBeFreqCapGhz(ghz);
}

void
FaultyPlatform::SetBeNetCeilGbps(double gbps)
{
    commanded_ceil_ = gbps;
    if (Dropped(Actuator::kNetCeil)) return;
    inner_.SetBeNetCeilGbps(gbps);
}

}  // namespace heracles::chaos
