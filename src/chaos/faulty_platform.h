/**
 * @file
 * Fault-injecting Platform decorator.
 *
 * Sits between the Heracles controller and the real (simulated)
 * platform and applies a ResolvedFaultPlan: actuator calls inside a
 * drop window are recorded but never reach the plant, monitor reads
 * inside a freeze window hold the first in-window value, and reads
 * inside a noise window gain multiplicative noise from a chaos-private
 * RNG — the simulation's own random streams are never touched, so a
 * plan with no active window is byte-identical to no decorator at all.
 *
 * The decorator also tracks the *commanded* state of every actuator
 * (what the controller last asked for, whether or not the plant heard
 * it). The invariant harness judges the controller by its commands and
 * its observations: a stuck cgroup write is the platform's fault, a
 * grow command issued while the observed tail exceeds the SLO is the
 * controller's.
 */
#ifndef HERACLES_CHAOS_FAULTY_PLATFORM_H
#define HERACLES_CHAOS_FAULTY_PLATFORM_H

#include "chaos/fault_plan.h"
#include "platform/iface.h"
#include "sim/random.h"

namespace heracles::chaos {

/** Platform decorator applying a resolved fault plan. */
class FaultyPlatform : public platform::Platform
{
  public:
    FaultyPlatform(platform::Platform& inner, ResolvedFaultPlan plan);

    /** Dropped actuator calls + degraded monitor reads so far. */
    uint64_t faulted_ops() const { return faulted_ops_; }

    /** @name Commanded actuator state (controller's last request)
     *  @{ */
    int CommandedBeCores() const { return commanded_cores_; }
    int CommandedBeWays() const { return commanded_ways_; }
    double CommandedBeFreqCapGhz() const { return commanded_cap_; }
    double CommandedBeNetCeilGbps() const { return commanded_ceil_; }
    /** @} */

    // --- Platform ----------------------------------------------------------
    sim::EventQueue& queue() override { return inner_.queue(); }

    sim::Duration LcTailLatency() override;
    sim::Duration LcFastTailLatency() override;
    sim::Duration LcSlo() override { return inner_.LcSlo(); }
    double LcLoad() override;
    double LcCpuUtilization() override { return inner_.LcCpuUtilization(); }

    double MeasuredDramGbps() override;
    double DramPeakGbps() override { return inner_.DramPeakGbps(); }
    double BeDramEstimateGbps() override {
        return inner_.BeDramEstimateGbps();
    }

    int Sockets() override { return inner_.Sockets(); }
    double SocketPowerW(int socket) override;
    double TdpW() override { return inner_.TdpW(); }
    double LcFreqGhz() override { return inner_.LcFreqGhz(); }
    double GuaranteedLcFreqGhz() override {
        return inner_.GuaranteedLcFreqGhz();
    }
    double MinGhz() override { return inner_.MinGhz(); }
    double MaxGhz() override { return inner_.MaxGhz(); }
    double FreqStepGhz() override { return inner_.FreqStepGhz(); }
    double BeFreqCapGhz() override { return inner_.BeFreqCapGhz(); }
    void SetBeFreqCapGhz(double ghz) override;

    double LcTxGbps() override { return inner_.LcTxGbps(); }
    double LinkRateGbps() override { return inner_.LinkRateGbps(); }
    void SetBeNetCeilGbps(double gbps) override;

    int TotalPhysCores() override { return inner_.TotalPhysCores(); }
    int BeCores() override { return inner_.BeCores(); }
    void SetBeCores(int cores) override;
    int TotalLlcWays() override { return inner_.TotalLlcWays(); }
    int BeWays() override { return inner_.BeWays(); }
    void SetBeWays(int ways) override;

    bool HasBeJob() override { return inner_.HasBeJob(); }
    double BeRate() override { return inner_.BeRate(); }

  private:
    /** Active fault of @p kind on @p channel now, or -1. The channel is
     *  the Monitor or Actuator enum value, matched per kind. */
    int ActiveFault(FaultKind kind, int channel);

    /** True when an actuator-drop window covers @p a right now. */
    bool Dropped(Actuator a);

    /**
     * Applies freeze/noise faults on @p mon around the lazy plant
     * reading @p read. Laziness is the point: while frozen, the plant
     * is not read at all — a wedged counter also stops its
     * measurement-noise RNG draws. Instantiated only in the .cc.
     */
    template <typename ReadFn>
    double Degrade(Monitor mon, ReadFn read);

    platform::Platform& inner_;
    ResolvedFaultPlan plan_;
    sim::Rng noise_;  ///< Chaos-private; never a simulation stream.

    /** Per-fault captured value for freeze windows (index-aligned with
     *  plan_.faults; NaN = not captured yet / window over). */
    std::vector<double> frozen_;

    int commanded_cores_ = 0;
    int commanded_ways_ = 0;
    double commanded_cap_ = 0.0;
    double commanded_ceil_ = -1.0;
    uint64_t faulted_ops_ = 0;
};

}  // namespace heracles::chaos

#endif  // HERACLES_CHAOS_FAULTY_PLATFORM_H
