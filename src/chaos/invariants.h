/**
 * @file
 * Machine-checkable controller safety invariants.
 *
 * The InvariantChecker is a purely-passive Platform decorator placed
 * between the Heracles controller and the (possibly fault-injected)
 * platform. It forwards every call verbatim — no events, no RNG, no
 * behavioral change, so wiring it into every run keeps all metrics
 * byte-identical — while recording the controller's observations and
 * commands and judging them against the paper's safety contract:
 *
 *  1. safeguard-disable — after a top-level poll observes tail latency
 *     above the SLO, the commanded BE core count must reach zero within
 *     one control interval (Algorithm 1 disables BE immediately).
 *  2. no-grow-under-danger — the commanded BE core count never grows
 *     while a fresh (at most one control interval old) latency
 *     observation exceeds the SLO.
 *  3. power-cap-respected — the commanded BE DVFS cap stays within the
 *     machine's DVFS range, and is never raised while BE cores are
 *     commanded and the freshly-observed package power already exceeds
 *     the TDP threshold (Algorithm 3 only shifts power towards BE with
 *     headroom).
 *  4. net-ceil-bounded — the commanded BE egress ceiling stays within
 *     [0, link rate] (Algorithm 4 never over-subscribes the NIC).
 *  5. alloc-bounded — commanded cores/ways always leave the LC task at
 *     least one core and one LLC way.
 *
 * Everything is judged on *observed* telemetry and *commanded*
 * actuations: under degraded telemetry the controller is held to what
 * it could see, and under stuck actuators to what it asked for. The
 * cluster-layer invariant (the BE scheduler never places a job onto a
 * crashed leaf) is checked by ClusterExperiment, which owns that state.
 */
#ifndef HERACLES_CHAOS_INVARIANTS_H
#define HERACLES_CHAOS_INVARIANTS_H

#include <string>
#include <vector>

#include "platform/iface.h"

namespace heracles::chaos {

/** One recorded safety violation. */
struct Violation {
    sim::SimTime when = 0;
    std::string invariant;  ///< e.g. "safeguard-disable".
    std::string detail;     ///< Human-readable evidence.
};

/** Passive Platform decorator evaluating the safety invariants. */
class InvariantChecker : public platform::Platform
{
  public:
    struct Options {
        /** Top-level control interval (grace for invariants 1 and 2). */
        sim::Duration top_period = sim::Seconds(15);
        /** TDP fraction above which raising the BE cap is unsafe. */
        double tdp_frac_limit = 0.90;
    };

    InvariantChecker(platform::Platform& inner, Options opt);

    const std::vector<Violation>& violations() const {
        return violations_;
    }
    uint64_t count() const { return violations_.size(); }

    // --- Platform (monitors: forward + observe) ---------------------------
    sim::EventQueue& queue() override { return inner_.queue(); }

    sim::Duration LcTailLatency() override;
    sim::Duration LcFastTailLatency() override;
    sim::Duration LcSlo() override { return inner_.LcSlo(); }
    double LcLoad() override { return inner_.LcLoad(); }
    double LcCpuUtilization() override { return inner_.LcCpuUtilization(); }

    double MeasuredDramGbps() override { return inner_.MeasuredDramGbps(); }
    double DramPeakGbps() override { return inner_.DramPeakGbps(); }
    double BeDramEstimateGbps() override {
        return inner_.BeDramEstimateGbps();
    }

    int Sockets() override { return inner_.Sockets(); }
    double SocketPowerW(int socket) override;
    double TdpW() override { return inner_.TdpW(); }
    double LcFreqGhz() override { return inner_.LcFreqGhz(); }
    double GuaranteedLcFreqGhz() override {
        return inner_.GuaranteedLcFreqGhz();
    }
    double MinGhz() override { return inner_.MinGhz(); }
    double MaxGhz() override { return inner_.MaxGhz(); }
    double FreqStepGhz() override { return inner_.FreqStepGhz(); }
    double BeFreqCapGhz() override { return inner_.BeFreqCapGhz(); }
    void SetBeFreqCapGhz(double ghz) override;

    double LcTxGbps() override { return inner_.LcTxGbps(); }
    double LinkRateGbps() override { return inner_.LinkRateGbps(); }
    void SetBeNetCeilGbps(double gbps) override;

    int TotalPhysCores() override { return inner_.TotalPhysCores(); }
    int BeCores() override { return inner_.BeCores(); }
    void SetBeCores(int cores) override;
    int TotalLlcWays() override { return inner_.TotalLlcWays(); }
    int BeWays() override { return inner_.BeWays(); }
    void SetBeWays(int ways) override;

    bool HasBeJob() override { return inner_.HasBeJob(); }
    double BeRate() override { return inner_.BeRate(); }

  private:
    void Record(const char* invariant, const std::string& detail);

    /** True when the given observation is fresh enough to count. */
    bool Fresh(sim::SimTime read_at) const;

    /** Fires the safeguard-disable deadline if it has lapsed. */
    void CheckDeadline();

    platform::Platform& inner_;
    Options opt_;

    // Latest observations (what the controller saw, when).
    sim::SimTime tail_read_at_ = -1;
    bool tail_over_ = false;
    sim::SimTime fast_read_at_ = -1;
    bool fast_over_ = false;
    sim::SimTime power_read_at_ = -1;
    double power_frac_ = 0.0;  ///< Worst socket at power_read_at_.

    // Commanded actuator state.
    int commanded_cores_ = 0;
    double commanded_cap_ = 0.0;  ///< 0 = uncapped.

    // Armed safeguard deadline (-1 = none).
    sim::SimTime disable_deadline_ = -1;

    std::vector<Violation> violations_;
};

}  // namespace heracles::chaos

#endif  // HERACLES_CHAOS_INVARIANTS_H
