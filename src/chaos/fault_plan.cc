#include "chaos/fault_plan.h"

#include <cstdlib>

#include "sim/log.h"

namespace heracles::chaos {

std::string
FaultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::kActuatorDrop: return "drop";
      case FaultKind::kFreeze: return "freeze";
      case FaultKind::kNoise: return "noise";
      case FaultKind::kBurst: return "burst";
      case FaultKind::kLeafCrash: return "crash";
      case FaultKind::kSlackFreeze: return "slackfreeze";
    }
    return "?";
}

std::string
ActuatorName(Actuator a)
{
    switch (a) {
      case Actuator::kCores: return "cores";
      case Actuator::kWays: return "ways";
      case Actuator::kFreqCap: return "freq";
      case Actuator::kNetCeil: return "net";
    }
    return "?";
}

std::string
MonitorName(Monitor m)
{
    switch (m) {
      case Monitor::kTail: return "tail";
      case Monitor::kFastTail: return "fast";
      case Monitor::kLoad: return "load";
      case Monitor::kDram: return "dram";
      case Monitor::kPower: return "power";
    }
    return "?";
}

namespace {

FaultSpec
Windowed(FaultKind kind, double begin, double end, int leaf)
{
    HERACLES_CHECK_MSG(begin >= 0.0 && end <= 1.0 && begin <= end,
                       "bad fault window [" << begin << ", " << end
                                            << ")");
    FaultSpec f;
    f.kind = kind;
    f.begin = begin;
    f.end = end;
    f.leaf = leaf;
    return f;
}

}  // namespace

FaultSpec
ActuatorDrop(Actuator a, double begin, double end, int leaf)
{
    FaultSpec f = Windowed(FaultKind::kActuatorDrop, begin, end, leaf);
    f.actuator = a;
    return f;
}

FaultSpec
Freeze(Monitor m, double begin, double end, int leaf)
{
    FaultSpec f = Windowed(FaultKind::kFreeze, begin, end, leaf);
    f.monitor = m;
    return f;
}

FaultSpec
Noise(Monitor m, double sigma, double begin, double end, int leaf)
{
    FaultSpec f = Windowed(FaultKind::kNoise, begin, end, leaf);
    f.monitor = m;
    f.magnitude = sigma;
    return f;
}

FaultSpec
Burst(double scale, double begin, double end, int leaf)
{
    FaultSpec f = Windowed(FaultKind::kBurst, begin, end, leaf);
    f.magnitude = scale;
    return f;
}

FaultSpec
LeafCrash(int leaf, double begin, double end)
{
    HERACLES_CHECK_MSG(leaf >= 0, "crash needs a leaf index");
    return Windowed(FaultKind::kLeafCrash, begin, end, leaf);
}

FaultSpec
SlackFreeze(int leaf, double begin, double end)
{
    HERACLES_CHECK_MSG(leaf >= 0, "slackfreeze needs a leaf index");
    return Windowed(FaultKind::kSlackFreeze, begin, end, leaf);
}

namespace {

bool
ParseMonitor(const std::string& name, Monitor* out)
{
    for (Monitor m : {Monitor::kTail, Monitor::kFastTail, Monitor::kLoad,
                      Monitor::kDram, Monitor::kPower}) {
        if (MonitorName(m) == name) {
            *out = m;
            return true;
        }
    }
    return false;
}

bool
ParseActuator(const std::string& name, Actuator* out)
{
    for (Actuator a : {Actuator::kCores, Actuator::kWays,
                       Actuator::kFreqCap, Actuator::kNetCeil}) {
        if (ActuatorName(a) == name) {
            *out = a;
            return true;
        }
    }
    return false;
}

/** Parses a strictly-formed double; false on trailing garbage. */
bool
ParseDouble(const std::string& text, double* out)
{
    if (text.empty()) return false;
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

/** Parses one `kind:channel[*mag]@B-E` clause into @p out. */
bool
ParseClause(const std::string& clause, FaultSpec* out, std::string* error)
{
    const size_t at = clause.rfind('@');
    if (at == std::string::npos) {
        *error = "missing '@window' in '" + clause + "'";
        return false;
    }
    const std::string window = clause.substr(at + 1);
    const size_t dash = window.find('-');
    double begin = 0.0, end = 0.0;
    if (dash == std::string::npos ||
        !ParseDouble(window.substr(0, dash), &begin) ||
        !ParseDouble(window.substr(dash + 1), &end) || begin < 0.0 ||
        end > 1.0 || begin > end) {
        *error = "bad window '" + window +
                 "' in '" + clause + "' (want B-E fractions in [0,1])";
        return false;
    }

    std::string head = clause.substr(0, at);
    double magnitude = 0.0;
    bool has_magnitude = false;
    if (const size_t star = head.rfind('*'); star != std::string::npos) {
        if (!ParseDouble(head.substr(star + 1), &magnitude) ||
            magnitude <= 0.0) {
            *error = "bad magnitude in '" + clause + "'";
            return false;
        }
        has_magnitude = true;
        head = head.substr(0, star);
    }

    std::string kind = head, channel;
    if (const size_t colon = head.find(':'); colon != std::string::npos) {
        kind = head.substr(0, colon);
        channel = head.substr(colon + 1);
    }

    auto leaf_of = [&](int* leaf) {
        // Strict digits only: "leaf1.9" or "leaf1e1" must be rejected,
        // not silently truncated onto a different leaf.
        if (channel.rfind("leaf", 0) != 0 || channel.size() <= 4 ||
            channel.size() > 9) {
            return false;
        }
        int idx = 0;
        for (size_t i = 4; i < channel.size(); ++i) {
            if (channel[i] < '0' || channel[i] > '9') return false;
            idx = idx * 10 + (channel[i] - '0');
        }
        *leaf = idx;
        return true;
    };

    if (kind == "drop") {
        Actuator a;
        if (!ParseActuator(channel, &a)) {
            *error = "unknown actuator '" + channel +
                     "' (cores|ways|freq|net)";
            return false;
        }
        *out = ActuatorDrop(a, begin, end);
        return true;
    }
    if (kind == "freeze" || kind == "noise") {
        Monitor m;
        if (!ParseMonitor(channel, &m)) {
            *error = "unknown monitor '" + channel +
                     "' (tail|fast|load|dram|power)";
            return false;
        }
        if (kind == "noise") {
            if (!has_magnitude) {
                *error = "noise needs '*SIGMA' in '" + clause + "'";
                return false;
            }
            *out = Noise(m, magnitude, begin, end);
        } else {
            *out = Freeze(m, begin, end);
        }
        return true;
    }
    if (kind == "burst") {
        if (!has_magnitude) {
            *error = "burst needs '*SCALE' in '" + clause + "'";
            return false;
        }
        *out = Burst(magnitude, begin, end);
        return true;
    }
    if (kind == "crash" || kind == "slackfreeze") {
        int leaf = -1;
        if (!leaf_of(&leaf)) {
            *error = kind + " needs a 'leafN' target in '" + clause + "'";
            return false;
        }
        *out = kind == "crash" ? LeafCrash(leaf, begin, end)
                               : SlackFreeze(leaf, begin, end);
        return true;
    }
    *error = "unknown fault kind '" + kind +
             "' (drop|freeze|noise|burst|crash|slackfreeze)";
    return false;
}

}  // namespace

bool
ParseFaultPlan(const std::string& text, FaultPlan* out, std::string* error)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t next = text.find(',', pos);
        if (next == std::string::npos) next = text.size();
        const std::string clause = text.substr(pos, next - pos);
        if (clause.empty()) {
            *error = "empty fault clause";
            return false;
        }
        FaultSpec f;
        if (!ParseClause(clause, &f, error)) return false;
        plan.faults.push_back(f);
        pos = next + 1;
        if (next == text.size()) break;
    }
    if (plan.empty()) {
        *error = "empty fault plan";
        return false;
    }
    *out = plan;
    return true;
}

TimedFault
ResolveWindow(const FaultSpec& spec, sim::Duration total)
{
    TimedFault t;
    t.kind = spec.kind;
    t.actuator = spec.actuator;
    t.monitor = spec.monitor;
    t.begin = static_cast<sim::SimTime>(
        spec.begin * static_cast<double>(total));
    t.end =
        static_cast<sim::SimTime>(spec.end * static_cast<double>(total));
    t.magnitude = spec.magnitude;
    t.leaf = spec.leaf;
    return t;
}

ResolvedFaultPlan
ResolvedFaultPlan::For(const FaultPlan& plan, sim::Duration total, int leaf)
{
    ResolvedFaultPlan r;
    r.seed = plan.seed;
    for (const FaultSpec& f : plan.faults) {
        if (f.kind == FaultKind::kLeafCrash ||
            f.kind == FaultKind::kSlackFreeze) {
            continue;  // resolved by the cluster experiment, not here
        }
        // Leaf-scoped platform faults bind to one leaf; unscoped ones
        // apply to the single server and to every cluster leaf alike.
        if (f.leaf >= 0 && f.leaf != leaf) continue;
        const TimedFault t = ResolveWindow(f, total);
        if (t.end > t.begin) r.faults.push_back(t);
    }
    return r;
}

bool
ResolvedFaultPlan::HasBurst() const
{
    for (const TimedFault& f : faults) {
        if (f.kind == FaultKind::kBurst) return true;
    }
    return false;
}

}  // namespace heracles::chaos
