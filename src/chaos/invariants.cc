#include "chaos/invariants.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace heracles::chaos {

InvariantChecker::InvariantChecker(platform::Platform& inner, Options opt)
    : inner_(inner), opt_(opt)
{
}

void
InvariantChecker::Record(const char* invariant, const std::string& detail)
{
    Violation v;
    v.when = inner_.queue().Now();
    v.invariant = invariant;
    v.detail = detail;
    if (violations_.size() < 8) {
        std::fprintf(stderr, "[invariant] %s violated at t=%.1fs: %s\n",
                     invariant, sim::ToSeconds(v.when), detail.c_str());
    }
    violations_.push_back(std::move(v));
}

bool
InvariantChecker::Fresh(sim::SimTime read_at) const
{
    if (read_at < 0) return false;
    return inner_.queue().Now() - read_at < opt_.top_period;
}

void
InvariantChecker::CheckDeadline()
{
    if (disable_deadline_ < 0) return;
    if (inner_.queue().Now() <= disable_deadline_) return;
    if (commanded_cores_ > 0) {
        std::ostringstream os;
        os << "tail over SLO observed at t="
           << sim::ToSeconds(disable_deadline_ -
                             opt_.top_period)
           << "s but " << commanded_cores_
           << " BE cores still commanded one control interval later";
        Record("safeguard-disable", os.str());
    }
    // Disarm either way; a still-dangerous poll re-arms it.
    disable_deadline_ = -1;
}

sim::Duration
InvariantChecker::LcTailLatency()
{
    CheckDeadline();
    const sim::Duration v = inner_.LcTailLatency();
    if (v > 0) {
        tail_read_at_ = inner_.queue().Now();
        tail_over_ = v > inner_.LcSlo();
        if (tail_over_ && commanded_cores_ > 0 && disable_deadline_ < 0) {
            disable_deadline_ = tail_read_at_ + opt_.top_period;
        }
    }
    return v;
}

sim::Duration
InvariantChecker::LcFastTailLatency()
{
    CheckDeadline();
    const sim::Duration v = inner_.LcFastTailLatency();
    if (v > 0) {
        fast_read_at_ = inner_.queue().Now();
        fast_over_ = v > inner_.LcSlo();
    }
    return v;
}

double
InvariantChecker::SocketPowerW(int socket)
{
    CheckDeadline();
    const double v = inner_.SocketPowerW(socket);
    const double tdp = inner_.TdpW();
    const double frac = tdp > 0.0 ? v / tdp : 0.0;
    const sim::SimTime now = inner_.queue().Now();
    // The power subcontroller reads every socket within one tick and
    // acts on the worst; track the same worst-of-this-timestamp view.
    if (now != power_read_at_) {
        power_read_at_ = now;
        power_frac_ = frac;
    } else {
        power_frac_ = std::max(power_frac_, frac);
    }
    return v;
}

void
InvariantChecker::SetBeCores(int cores)
{
    CheckDeadline();
    if (cores < 0 || cores > inner_.TotalPhysCores() - 1) {
        std::ostringstream os;
        os << "commanded " << cores << " BE cores of "
           << inner_.TotalPhysCores()
           << " total (LC must keep at least one)";
        Record("alloc-bounded", os.str());
    }
    if (cores > commanded_cores_) {
        const bool danger = (tail_over_ && Fresh(tail_read_at_)) ||
                            (fast_over_ && Fresh(fast_read_at_));
        if (danger) {
            std::ostringstream os;
            os << "BE cores grown " << commanded_cores_ << " -> " << cores
               << " while a fresh latency observation exceeds the SLO";
            Record("no-grow-under-danger", os.str());
        }
    }
    commanded_cores_ = cores;
    if (commanded_cores_ == 0) disable_deadline_ = -1;
    inner_.SetBeCores(cores);
}

void
InvariantChecker::SetBeWays(int ways)
{
    CheckDeadline();
    if (ways < 0 || ways > inner_.TotalLlcWays() - 1) {
        std::ostringstream os;
        os << "commanded " << ways << " BE ways of "
           << inner_.TotalLlcWays()
           << " total (LC must keep at least one)";
        Record("alloc-bounded", os.str());
    }
    inner_.SetBeWays(ways);
}

void
InvariantChecker::SetBeFreqCapGhz(double ghz)
{
    CheckDeadline();
    if (ghz != 0.0 && (ghz < inner_.MinGhz() - 1e-6 ||
                       ghz > inner_.MaxGhz() + 1e-6)) {
        std::ostringstream os;
        os << "commanded BE DVFS cap " << ghz << " GHz outside ["
           << inner_.MinGhz() << ", " << inner_.MaxGhz() << "]";
        Record("power-cap-respected", os.str());
    }
    // 0 = uncapped, i.e. the highest possible effective cap.
    const double effective = ghz == 0.0 ? inner_.MaxGhz() : ghz;
    const double prev =
        commanded_cap_ == 0.0 ? inner_.MaxGhz() : commanded_cap_;
    const bool raise = effective > prev + 1e-9;
    if (raise && commanded_cores_ > 0 && Fresh(power_read_at_) &&
        power_frac_ > opt_.tdp_frac_limit + 1e-9) {
        std::ostringstream os;
        os << "BE frequency cap raised " << prev << " -> " << effective
           << " GHz while observed package power is at "
           << power_frac_ * 100.0 << "% of TDP";
        Record("power-cap-respected", os.str());
    }
    commanded_cap_ = ghz;
    inner_.SetBeFreqCapGhz(ghz);
}

void
InvariantChecker::SetBeNetCeilGbps(double gbps)
{
    CheckDeadline();
    if (gbps < -1e-9 || gbps > inner_.LinkRateGbps() + 1e-9) {
        std::ostringstream os;
        os << "commanded BE egress ceiling " << gbps
           << " Gb/s outside [0, " << inner_.LinkRateGbps() << "]";
        Record("net-ceil-bounded", os.str());
    }
    inner_.SetBeNetCeilGbps(gbps);
}

}  // namespace heracles::chaos
