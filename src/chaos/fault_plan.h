/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan is a seeded list of timed injections describing how a run
 * degrades: actuator calls silently dropped (a stuck cgroup/MSR/qdisc
 * write path), telemetry frozen or noised (a wedged metrics endpoint, a
 * flaky counter), the colocated BE job abruptly turning into a much
 * heavier antagonist (the CPI2 / Bubble-Flux "abrupt interference"
 * regime), and — at the cluster layer — leaves crashing and recovering
 * or exporting frozen slack to the cluster scheduler.
 *
 * Fault windows are expressed as *fractions* of the run they attach to,
 * so one plan means the same thing at full scale and at the golden
 * harness's reduced scale; Resolve() turns a plan into absolute
 * simulated times for one server (or one cluster leaf). A plan is pure
 * data: applying it never consumes a simulation RNG stream, and an
 * empty (or never-active) plan is byte-identical to no plan at all.
 */
#ifndef HERACLES_CHAOS_FAULT_PLAN_H
#define HERACLES_CHAOS_FAULT_PLAN_H

#include <string>
#include <vector>

#include "sim/time.h"

namespace heracles::chaos {

/** Actuator channels a fault can disable. */
enum class Actuator { kCores, kWays, kFreqCap, kNetCeil };

/** Monitor channels a fault can degrade. */
enum class Monitor { kTail, kFastTail, kLoad, kDram, kPower };

/** What a fault does while its window is active. */
enum class FaultKind {
    kActuatorDrop,  ///< Set* calls on the channel are silently dropped.
    kFreeze,        ///< Monitor reads hold the first in-window value.
    kNoise,         ///< Monitor reads gain multiplicative noise.
    kBurst,         ///< BE job's demand profile scales by `magnitude`.
    kLeafCrash,     ///< Cluster: leaf drains and goes dark, BE evicted.
    kSlackFreeze,   ///< Cluster: scheduler sees the leaf's SlackExport
                    ///< as captured at window start.
};

/** Human-readable names (for error messages and docs). */
std::string FaultKindName(FaultKind k);
std::string ActuatorName(Actuator a);
std::string MonitorName(Monitor m);

/** One timed injection. Windows are [begin, end) fractions of the run. */
struct FaultSpec {
    FaultKind kind = FaultKind::kActuatorDrop;
    double begin = 0.0;
    double end = 1.0;
    Actuator actuator = Actuator::kCores;
    Monitor monitor = Monitor::kTail;
    /** Noise sigma (kNoise) or demand multiplier (kBurst). */
    double magnitude = 0.0;
    /** Cluster faults: leaf index. For platform faults, < 0 = every
     *  leaf (or the single server); >= 0 = only that leaf. */
    int leaf = -1;
};

/** @name FaultSpec builders (the registry / test vocabulary)
 *  @{ */
FaultSpec ActuatorDrop(Actuator a, double begin, double end, int leaf = -1);
FaultSpec Freeze(Monitor m, double begin, double end, int leaf = -1);
FaultSpec Noise(Monitor m, double sigma, double begin, double end,
                int leaf = -1);
FaultSpec Burst(double scale, double begin, double end, int leaf = -1);
FaultSpec LeafCrash(int leaf, double begin, double end);
FaultSpec SlackFreeze(int leaf, double begin, double end);
/** @} */

/** A full run's worth of injections plus the seed of the noise stream. */
struct FaultPlan {
    std::vector<FaultSpec> faults;
    /** Seeds the (chaos-private) noise RNG; independent of the
     *  simulation's own streams. */
    uint64_t seed = 0xC7A05;

    bool empty() const { return faults.empty(); }
};

/**
 * Parses the `--faults` mini-language: comma-separated clauses
 *
 *   drop:{cores|ways|freq|net}@B-E
 *   freeze:{tail|fast|load|dram|power}@B-E
 *   noise:{tail|fast|load|dram|power}*SIGMA@B-E
 *   burst*SCALE@B-E
 *   crash:leafN@B-E
 *   slackfreeze:leafN@B-E
 *
 * with B and E fractions of the run in [0, 1]. Returns false and fills
 * @p error on malformed input.
 */
bool ParseFaultPlan(const std::string& text, FaultPlan* out,
                    std::string* error);

/** One injection with its window resolved to absolute simulated time. */
struct TimedFault {
    FaultKind kind;
    Actuator actuator;
    Monitor monitor;
    sim::SimTime begin;
    sim::SimTime end;
    double magnitude;
    int leaf;

    bool ActiveAt(sim::SimTime t) const { return t >= begin && t < end; }
};

/**
 * Resolves one spec's fractional window against a run of @p total —
 * the single definition of window semantics, shared by the per-server
 * slice below and the cluster layer's crash/slack-freeze resolution.
 * A resolved zero-length window (returned begin == end) never fires.
 */
TimedFault ResolveWindow(const FaultSpec& spec, sim::Duration total);

/**
 * The slice of a plan that applies to one server's platform, with
 * windows resolved against that server's total run length. Cluster
 * faults (kLeafCrash / kSlackFreeze) are excluded — they act above the
 * platform and are resolved by the cluster experiment itself.
 */
struct ResolvedFaultPlan {
    std::vector<TimedFault> faults;
    uint64_t seed = 0;

    /**
     * @param plan the scenario's fault plan.
     * @param total the server's full run length (phase floors applied).
     * @param leaf leaf index to slice for, or -1 for a single server
     *        (which takes only leaf-unscoped platform faults).
     */
    static ResolvedFaultPlan For(const FaultPlan& plan, sim::Duration total,
                                 int leaf = -1);

    bool empty() const { return faults.empty(); }
    bool HasBurst() const;
};

}  // namespace heracles::chaos

#endif  // HERACLES_CHAOS_FAULT_PLAN_H
